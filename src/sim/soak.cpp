#include "sim/soak.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "runtime/checkpoint.h"

namespace freerider::sim {
namespace {

// ------------------------------------------------------------ helpers

std::string Fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list measure;
  va_copy(measure, args);
  const int size = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  std::string out(size > 0 ? static_cast<std::size_t>(size) : 0, '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args);
  va_end(args);
  return out;
}

// ---------------------------------------------------------- run state

/// Per-tag sequence-space tracker. `position` counts every sequence
/// the application stream has consumed (delivered or explicitly
/// skipped) since round 0 — its low 8 bits are the next expected
/// on-air sequence number, and unlike the mod-256 value it can never
/// alias after a wrap.
struct TagTrack {
  std::uint64_t position = 0;
  std::uint64_t delivered = 0;
  std::uint64_t skipped = 0;
};

}  // namespace

SoakResult RunSoak(const SoakConfig& config) {
  FullStackConfig sim_cfg;
  sim_cfg.num_tags = config.num_tags;
  sim_cfg.rounds = config.rounds + config.drain_rounds;
  sim_cfg.transport = config.transport;
  sim_cfg.transport.enabled = true;
  sim_cfg.reserve_impairment_stream = true;
  sim_cfg.trace = config.trace;
  sim_cfg.offered_per_round = 0;  // the harness schedules offers itself

  Rng rng(config.seed);
  FullStackSim sim(sim_cfg, rng);
  SoakResult result;
  std::vector<TagTrack> track(config.num_tags);

  auto violate = [&](std::size_t round, const char* kind,
                     std::string detail) {
    result.violations.push_back({round, kind, std::move(detail)});
  };

  std::size_t next_segment = 0;
  std::size_t prev_expired = 0;
  std::size_t prev_rejected = 0;
  const std::size_t total_rounds = config.rounds + config.drain_rounds;
  for (std::size_t round = 0; round < total_rounds; ++round) {
    while (next_segment < config.schedule.size() &&
           config.schedule[next_segment].start_round <= round) {
      sim.SetImpairments(config.schedule[next_segment].impairments);
      ++next_segment;
    }
    const bool offering = round < config.rounds &&
                          config.offer_every != 0 &&
                          round % config.offer_every == 0;
    sim.SetOfferedPerRound(offering ? 1 : 0);

    const RoundReport report = sim.StepRound();

    // Index this round's hole-skips per tag (at most one per tag per
    // round). A skip advances the application stream exactly like a
    // delivery, and the post-skip flush in report.delivered lands
    // *after* the skip in sequence space.
    std::vector<std::optional<std::uint8_t>> skip(config.num_tags);
    for (const RoundReport::Delivery& s : report.skipped) {
      skip[s.tag_id - 1] = s.seq;
    }
    auto consume_skip = [&](std::size_t t) {
      TagTrack& tk = track[t];
      if (skip[t].has_value() &&
          *skip[t] == static_cast<std::uint8_t>(tk.position)) {
        skip[t].reset();
        ++tk.position;
        ++tk.skipped;
        return true;
      }
      return false;
    };

    for (const RoundReport::Delivery& d : report.delivered) {
      const std::size_t t = d.tag_id - 1;
      TagTrack& tk = track[t];
      if (d.seq != static_cast<std::uint8_t>(tk.position)) {
        // The expected sequence may have been skipped this round; the
        // post-skip flush is then in order again.
        consume_skip(t);
      }
      const std::uint8_t expected = static_cast<std::uint8_t>(tk.position);
      if (d.seq == expected) {
        ++tk.position;
        ++tk.delivered;
        continue;
      }
      const bool behind =
          transport::SeqDistance(d.seq, expected) < 128 && d.seq != expected;
      violate(round, behind ? "duplicate" : "reorder",
              Fmt("tag=%u seq=%u expected=%u", d.tag_id, d.seq, expected));
    }
    for (std::size_t t = 0; t < config.num_tags; ++t) {
      if (!skip[t].has_value()) continue;
      const std::uint8_t expected = static_cast<std::uint8_t>(track[t].position);
      if (!consume_skip(t)) {
        violate(round, "skip-out-of-order",
                Fmt("tag=%zu seq=%u expected=%u", t + 1, *skip[t], expected));
      } else if (config.strict) {
        violate(round, "skip",
                Fmt("tag=%zu seq=%u", t + 1, expected));
      }
    }

    if (config.strict) {
      const FullStackStats snap = sim.Stats();
      if (snap.transport_expired > prev_expired) {
        violate(round, "expired",
                Fmt("frames=%zu", snap.transport_expired - prev_expired));
      }
      if (snap.transport_rejected_full > prev_rejected) {
        violate(round, "queue-full",
                Fmt("frames=%zu",
                    snap.transport_rejected_full - prev_rejected));
      }
      prev_expired = snap.transport_expired;
      prev_rejected = snap.transport_rejected_full;
    }
  }

  // End-of-drain verdicts: nothing may be stuck, and in strict mode
  // everything accepted must have been delivered (or show up above as
  // an expiry/skip violation — never vanish silently).
  for (std::size_t t = 0; t < config.num_tags; ++t) {
    const transport::TagTransport* arq = sim.tag_transport(t);
    if (arq->HasPending()) {
      violate(total_rounds, "stuck",
              Fmt("tag=%zu pending=%zu", t + 1, arq->pending()));
    }
    // Every accepted-but-undelivered frame must be explained by an
    // explicit give-up event (tag expiry, receiver skip — the two can
    // overlap on the same sequence) or still be pending (reported as
    // stuck above). A shortfall beyond that is silent loss: a frame
    // vanished without any invariant-visible event.
    const std::uint64_t undelivered =
        arq->stats().offered - track[t].delivered;
    const std::uint64_t explained =
        arq->stats().expired + track[t].skipped + arq->pending();
    if (undelivered > explained) {
      violate(total_rounds, "lost",
              Fmt("tag=%zu offered=%zu delivered=%" PRIu64
                  " explained=%" PRIu64,
                  t + 1, arq->stats().offered, track[t].delivered,
                  explained));
    }
  }

  result.stats = sim.Stats();
  result.passed = result.violations.empty();

  std::string digest;
  for (const SoakViolation& v : result.violations) {
    digest += Fmt("violation round=%zu kind=%s %s\n", v.round,
                  v.kind.c_str(), v.detail.c_str());
  }
  const FullStackStats& s = result.stats;
  digest += Fmt(
      "stats rounds=%zu slots=%zu raw=%zu offered=%zu delivered=%zu "
      "dup=%zu retx=%zu expired=%zu holes=%zu acked=%zu esc=%zu "
      "extrej=%zu rejfull=%zu faults=%zu airtime=%a goodput=%a\n",
      s.rounds, s.slots_total, s.deliveries, s.transport_offered,
      s.transport_delivered, s.transport_duplicates,
      s.transport_retransmissions, s.transport_expired,
      s.transport_holes_skipped, s.transport_acked,
      s.transport_escalations, s.transport_ext_rejected,
      s.transport_rejected_full, s.faults_injected, s.airtime_s,
      s.goodput_bps);
  result.digest = std::move(digest);
  return result;
}

// ------------------------------------------------------- JSON writing

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Fmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) { return Fmt("%.17g", v); }

std::string ImpairmentsJson(const impair::ImpairmentConfig& c) {
  std::string out = "{";
  out += Fmt("\"cfo\":{\"enabled\":%s,\"cfo_hz\":%s,\"cfo_sigma_hz\":%s,"
             "\"tag_clock_ppm\":%s,\"tag_clock_ppm_sigma\":%s,"
             "\"start_slip_sigma_samples\":%s},",
             c.cfo.enabled ? "true" : "false", JsonDouble(c.cfo.cfo_hz).c_str(),
             JsonDouble(c.cfo.cfo_sigma_hz).c_str(),
             JsonDouble(c.cfo.tag_clock_ppm).c_str(),
             JsonDouble(c.cfo.tag_clock_ppm_sigma).c_str(),
             JsonDouble(c.cfo.start_slip_sigma_samples).c_str());
  out += Fmt("\"interferer\":{\"enabled\":%s,\"burst_probability\":%s,"
             "\"burst_power_dbm\":%s,\"min_fraction\":%s,\"max_fraction\":%s},",
             c.interferer.enabled ? "true" : "false",
             JsonDouble(c.interferer.burst_probability).c_str(),
             JsonDouble(c.interferer.burst_power_dbm).c_str(),
             JsonDouble(c.interferer.min_fraction).c_str(),
             JsonDouble(c.interferer.max_fraction).c_str());
  out += Fmt("\"dropout\":{\"enabled\":%s,\"dropout_probability\":%s,"
             "\"min_keep_fraction\":%s,\"max_keep_fraction\":%s},",
             c.dropout.enabled ? "true" : "false",
             JsonDouble(c.dropout.dropout_probability).c_str(),
             JsonDouble(c.dropout.min_keep_fraction).c_str(),
             JsonDouble(c.dropout.max_keep_fraction).c_str());
  out += Fmt("\"envelope\":{\"enabled\":%s,\"miss_probability\":%s,"
             "\"spurious_probability\":%s,\"spurious_max_duration_s\":%s,"
             "\"extra_jitter_s\":%s}",
             c.envelope.enabled ? "true" : "false",
             JsonDouble(c.envelope.miss_probability).c_str(),
             JsonDouble(c.envelope.spurious_probability).c_str(),
             JsonDouble(c.envelope.spurious_max_duration_s).c_str(),
             JsonDouble(c.envelope.extra_jitter_s).c_str());
  out += "}";
  return out;
}

}  // namespace

std::vector<SoakResult> RunSoakBatch(const std::vector<SoakConfig>& configs,
                                     runtime::SweepReport* report) {
  std::vector<SoakResult> results(configs.size());
  runtime::SweepEngine engine(runtime::DefaultExecutor());
  runtime::SweepReport local_report =
      engine.Run({configs.size(), 1}, [&](std::size_t p, std::size_t) {
        results[p] = RunSoak(configs[p]);
        return true;
      });
  if (report != nullptr) *report = std::move(local_report);
  return results;
}

std::string SoakReplayJson(const SoakConfig& config,
                           const SoakResult& result) {
  std::string out = "{\n";
  // The seed is a string: u64 does not survive a double round-trip.
  out += Fmt("  \"version\": 1,\n  \"seed\": \"%" PRIu64 "\",\n",
             config.seed);
  out += Fmt("  \"num_tags\": %zu,\n  \"rounds\": %zu,\n"
             "  \"drain_rounds\": %zu,\n  \"offer_every\": %zu,\n"
             "  \"strict\": %s,\n",
             config.num_tags, config.rounds, config.drain_rounds,
             config.offer_every, config.strict ? "true" : "false");
  const transport::TransportConfig& t = config.transport;
  out += Fmt("  \"transport\": {\"window\":%zu,\"queue_capacity\":%zu,"
             "\"max_transmissions\":%zu,\"expiry_rounds\":%zu,"
             "\"rto_rounds\":%zu,\"escalate_after_nacks\":%zu,"
             "\"max_escalation_steps\":%zu,\"ack_blocks_per_round\":%zu,"
             "\"hole_skip_rounds\":%zu},\n",
             t.window, t.queue_capacity, t.max_transmissions,
             t.expiry_rounds, t.rto_rounds, t.escalate_after_nacks,
             t.max_escalation_steps, t.ack_blocks_per_round,
             t.hole_skip_rounds);
  out += "  \"schedule\": [\n";
  for (std::size_t i = 0; i < config.schedule.size(); ++i) {
    out += Fmt("    {\"start_round\": %zu, \"impairments\": %s}%s\n",
               config.schedule[i].start_round,
               ImpairmentsJson(config.schedule[i].impairments).c_str(),
               i + 1 < config.schedule.size() ? "," : "");
  }
  out += "  ],\n";
  out += Fmt("  \"digest\": \"%s\"\n}\n",
             JsonEscape(result.digest).c_str());
  return out;
}

// ------------------------------------------------------- JSON parsing

namespace {

/// Minimal strict JSON value — just enough for replay records. Numbers
/// keep their raw token so 64-bit integers survive untouched.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string raw;  ///< Number token or decoded string content.
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(JsonValue& out) {
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (p_ != end_) {
      error_ = "trailing bytes after JSON value";
      return false;
    }
    return true;
  }

  /// Why Parse() failed; "malformed JSON" if no specific reason was
  /// recorded.
  std::string error() const {
    return error_.empty() ? "malformed JSON" : error_;
  }

 private:
  static constexpr int kMaxDepth = 16;

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    if (std::memcmp(p_, lit, n) != 0) return false;
    p_ += n;
    return true;
  }

  bool ParseString(std::string& out) {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    out.clear();
    while (p_ < end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ >= end_) return false;
        const char esc = *p_++;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (end_ - p_ < 4) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return false;
            }
            if (code > 0x7F) return false;  // records are ASCII
            out += static_cast<char>(code);
            break;
          }
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    SkipWs();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        out.kind = JsonValue::Kind::kObject;
        SkipWs();
        if (p_ < end_ && *p_ == '}') { ++p_; return true; }
        while (true) {
          SkipWs();
          std::string key;
          if (!ParseString(key)) return false;
          SkipWs();
          if (p_ >= end_ || *p_++ != ':') return false;
          JsonValue value;
          if (!ParseValue(value, depth + 1)) return false;
          // Duplicate keys silently shadow each other in lenient
          // parsers; in a replay record a duplicated field means the
          // record was hand-edited or corrupted — reject it.
          if (out.Find(key.c_str()) != nullptr) {
            error_ = "duplicate key \"" + key + "\"";
            return false;
          }
          out.fields.emplace_back(std::move(key), std::move(value));
          SkipWs();
          if (p_ >= end_) return false;
          if (*p_ == ',') { ++p_; continue; }
          if (*p_ == '}') { ++p_; return true; }
          return false;
        }
      }
      case '[': {
        ++p_;
        out.kind = JsonValue::Kind::kArray;
        SkipWs();
        if (p_ < end_ && *p_ == ']') { ++p_; return true; }
        while (true) {
          JsonValue value;
          if (!ParseValue(value, depth + 1)) return false;
          out.items.push_back(std::move(value));
          SkipWs();
          if (p_ >= end_) return false;
          if (*p_ == ',') { ++p_; continue; }
          if (*p_ == ']') { ++p_; return true; }
          return false;
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.raw);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return Literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return Literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return Literal("null");
      default: {
        const char* start = p_;
        if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
        while (p_ < end_ &&
               ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
          ++p_;
        }
        if (p_ == start) return false;
        out.kind = JsonValue::Kind::kNumber;
        out.raw.assign(start, p_);
        char* parse_end = nullptr;
        std::strtod(out.raw.c_str(), &parse_end);
        return parse_end == out.raw.c_str() + out.raw.size();
      }
    }
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

bool GetSize(const JsonValue& obj, const char* key, std::size_t& out) {
  const JsonValue* v = obj.Find(key);
  if (!v || v->kind != JsonValue::Kind::kNumber) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->raw.c_str(), &end, 10);
  if (end != v->raw.c_str() + v->raw.size()) return false;
  out = static_cast<std::size_t>(parsed);
  return true;
}

bool GetDouble(const JsonValue& obj, const char* key, double& out) {
  const JsonValue* v = obj.Find(key);
  if (!v || v->kind != JsonValue::Kind::kNumber) return false;
  const double parsed = std::strtod(v->raw.c_str(), nullptr);
  // An overflowing literal (1e999) parses to inf — poison downstream
  // arithmetic, never a legitimate record field.
  if (!std::isfinite(parsed)) return false;
  out = parsed;
  return true;
}

bool GetBool(const JsonValue& obj, const char* key, bool& out) {
  const JsonValue* v = obj.Find(key);
  if (!v || v->kind != JsonValue::Kind::kBool) return false;
  out = v->boolean;
  return true;
}

bool ParseImpairments(const JsonValue& obj, impair::ImpairmentConfig& out) {
  const JsonValue* cfo = obj.Find("cfo");
  const JsonValue* interferer = obj.Find("interferer");
  const JsonValue* dropout = obj.Find("dropout");
  const JsonValue* envelope = obj.Find("envelope");
  if (!cfo || !interferer || !dropout || !envelope) return false;
  return GetBool(*cfo, "enabled", out.cfo.enabled) &&
         GetDouble(*cfo, "cfo_hz", out.cfo.cfo_hz) &&
         GetDouble(*cfo, "cfo_sigma_hz", out.cfo.cfo_sigma_hz) &&
         GetDouble(*cfo, "tag_clock_ppm", out.cfo.tag_clock_ppm) &&
         GetDouble(*cfo, "tag_clock_ppm_sigma", out.cfo.tag_clock_ppm_sigma) &&
         GetDouble(*cfo, "start_slip_sigma_samples",
                   out.cfo.start_slip_sigma_samples) &&
         GetBool(*interferer, "enabled", out.interferer.enabled) &&
         GetDouble(*interferer, "burst_probability",
                   out.interferer.burst_probability) &&
         GetDouble(*interferer, "burst_power_dbm",
                   out.interferer.burst_power_dbm) &&
         GetDouble(*interferer, "min_fraction", out.interferer.min_fraction) &&
         GetDouble(*interferer, "max_fraction", out.interferer.max_fraction) &&
         GetBool(*dropout, "enabled", out.dropout.enabled) &&
         GetDouble(*dropout, "dropout_probability",
                   out.dropout.dropout_probability) &&
         GetDouble(*dropout, "min_keep_fraction",
                   out.dropout.min_keep_fraction) &&
         GetDouble(*dropout, "max_keep_fraction",
                   out.dropout.max_keep_fraction) &&
         GetBool(*envelope, "enabled", out.envelope.enabled) &&
         GetDouble(*envelope, "miss_probability",
                   out.envelope.miss_probability) &&
         GetDouble(*envelope, "spurious_probability",
                   out.envelope.spurious_probability) &&
         GetDouble(*envelope, "spurious_max_duration_s",
                   out.envelope.spurious_max_duration_s) &&
         GetDouble(*envelope, "extra_jitter_s", out.envelope.extra_jitter_s);
}

}  // namespace

namespace {

std::optional<SoakReplay> Reject(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return std::nullopt;
}

}  // namespace

std::optional<SoakReplay> ParseSoakReplay(const std::string& json) {
  return ParseSoakReplay(json, nullptr);
}

std::optional<SoakReplay> ParseSoakReplay(const std::string& json,
                                          std::string* error) {
  JsonParser parser(json);
  JsonValue root;
  if (!parser.Parse(root)) return Reject(error, parser.error());
  if (root.kind != JsonValue::Kind::kObject) {
    return Reject(error, "top level is not a JSON object");
  }
  std::size_t version = 0;
  if (!GetSize(root, "version", version)) {
    return Reject(error, "missing or non-integer \"version\"");
  }
  if (version != 1) {
    return Reject(error, Fmt("unsupported version %zu (expected 1)", version));
  }

  SoakReplay replay;
  const JsonValue* seed = root.Find("seed");
  if (!seed || seed->kind != JsonValue::Kind::kString) {
    return Reject(error, "missing \"seed\" (must be a decimal string)");
  }
  {
    char* end = nullptr;
    errno = 0;
    replay.config.seed = std::strtoull(seed->raw.c_str(), &end, 10);
    if (seed->raw.empty() || errno != 0 ||
        end != seed->raw.c_str() + seed->raw.size()) {
      return Reject(error, "\"seed\" is not a u64 decimal string");
    }
  }
  // Field-by-field so the error names the offender.
  struct SizeField {
    const char* key;
    std::size_t* dest;
    std::size_t min;
    std::size_t max;
  };
  const SizeField root_fields[] = {
      {"num_tags", &replay.config.num_tags, 1, 64},
      {"rounds", &replay.config.rounds, 0, 1000000},
      {"drain_rounds", &replay.config.drain_rounds, 0, 1000000},
      {"offer_every", &replay.config.offer_every, 0, 1000000},
  };
  for (const SizeField& f : root_fields) {
    if (!GetSize(root, f.key, *f.dest)) {
      return Reject(error,
                    Fmt("missing or non-integer \"%s\"", f.key));
    }
    if (*f.dest < f.min || *f.dest > f.max) {
      return Reject(error, Fmt("\"%s\" = %zu out of range [%zu, %zu]", f.key,
                               *f.dest, f.min, f.max));
    }
  }
  if (!GetBool(root, "strict", replay.config.strict)) {
    return Reject(error, "missing or non-boolean \"strict\"");
  }

  const JsonValue* t = root.Find("transport");
  if (!t || t->kind != JsonValue::Kind::kObject) {
    return Reject(error, "missing \"transport\" object");
  }
  transport::TransportConfig& tc = replay.config.transport;
  // Bounds are generous (the soak drivers legitimately run
  // expiry/hole-skip horizons of 2^20 rounds) but still reject the
  // absurd before a hostile record allocates or spins on it.
  const SizeField transport_fields[] = {
      {"window", &tc.window, 1, 256},
      {"queue_capacity", &tc.queue_capacity, 1, 1u << 16},
      {"max_transmissions", &tc.max_transmissions, 1, 1u << 20},
      {"expiry_rounds", &tc.expiry_rounds, 1, 1u << 30},
      {"rto_rounds", &tc.rto_rounds, 1, 1u << 20},
      {"escalate_after_nacks", &tc.escalate_after_nacks, 0, 1u << 20},
      {"max_escalation_steps", &tc.max_escalation_steps, 0, 64},
      {"ack_blocks_per_round", &tc.ack_blocks_per_round, 1, 64},
      {"hole_skip_rounds", &tc.hole_skip_rounds, 1, 1u << 30},
  };
  for (const SizeField& f : transport_fields) {
    if (!GetSize(*t, f.key, *f.dest)) {
      return Reject(error,
                    Fmt("missing or non-integer \"transport.%s\"", f.key));
    }
    if (*f.dest < f.min || *f.dest > f.max) {
      return Reject(error,
                    Fmt("\"transport.%s\" = %zu out of range [%zu, %zu]",
                        f.key, *f.dest, f.min, f.max));
    }
  }
  tc.enabled = true;

  const JsonValue* schedule = root.Find("schedule");
  if (!schedule || schedule->kind != JsonValue::Kind::kArray) {
    return Reject(error, "missing \"schedule\" array");
  }
  if (schedule->items.size() > 4096) {
    return Reject(error, Fmt("schedule has %zu segments (max 4096)",
                             schedule->items.size()));
  }
  for (std::size_t i = 0; i < schedule->items.size(); ++i) {
    const JsonValue& item = schedule->items[i];
    if (item.kind != JsonValue::Kind::kObject) {
      return Reject(error, Fmt("schedule[%zu] is not an object", i));
    }
    SoakSegment segment;
    if (!GetSize(item, "start_round", segment.start_round)) {
      return Reject(error,
                    Fmt("schedule[%zu] missing integer \"start_round\"", i));
    }
    if (segment.start_round > (1u << 30)) {
      return Reject(error, Fmt("schedule[%zu].start_round = %zu out of range",
                               i, segment.start_round));
    }
    // RunSoak applies segments front-to-back assuming ascending
    // start_round; an unsorted schedule would silently apply the wrong
    // impairment mix, which is exactly the class of quiet corruption a
    // replay record must not carry.
    if (!replay.config.schedule.empty() &&
        segment.start_round < replay.config.schedule.back().start_round) {
      return Reject(error,
                    Fmt("schedule[%zu].start_round = %zu not ascending "
                        "(previous %zu)",
                        i, segment.start_round,
                        replay.config.schedule.back().start_round));
    }
    const JsonValue* imp = item.Find("impairments");
    if (!imp || imp->kind != JsonValue::Kind::kObject ||
        !ParseImpairments(*imp, segment.impairments)) {
      return Reject(
          error,
          Fmt("schedule[%zu] has a missing or malformed \"impairments\" "
              "object (every sub-block and field is required; doubles must "
              "be finite)",
              i));
    }
    replay.config.schedule.push_back(std::move(segment));
  }

  if (const JsonValue* digest = root.Find("digest");
      digest && digest->kind == JsonValue::Kind::kString) {
    replay.expect_digest = digest->raw;
  }
  return replay;
}

// ------------------------------------------- checkpoint payload codec

namespace {

constexpr std::uint64_t kSoakResultVersion = 1;

}  // namespace

std::string SerializeSoakResult(const SoakResult& result) {
  runtime::PayloadWriter w;
  w.U64(kSoakResultVersion);
  w.U64(result.passed ? 1 : 0);
  w.U64(result.violations.size());
  for (const SoakViolation& v : result.violations) {
    w.U64(v.round);
    w.Str(v.kind);
    w.Str(v.detail);
  }
  const FullStackStats& s = result.stats;
  w.U64(s.rounds);
  w.U64(s.slots_total);
  w.U64(s.deliveries);
  w.U64(s.observed_collisions);
  w.U64(s.observed_empties);
  w.U64(s.per_tag_deliveries.size());
  for (std::size_t d : s.per_tag_deliveries) w.U64(d);
  w.F64(s.airtime_s);
  w.F64(s.goodput_bps);
  w.F64(s.jain_fairness);
  w.U64(s.faults_injected);
  w.U64(s.desync_events);
  w.U64(s.sequence_gaps);
  w.U64(s.reannouncements);
  w.U64(s.rounds_recovered);
  w.F64(s.backoff_airtime_s);
  w.U64(s.fault_counters.cfo_rotations);
  w.U64(s.fault_counters.window_slips);
  w.U64(s.fault_counters.interferer_bursts);
  w.U64(s.fault_counters.excitation_dropouts);
  w.U64(s.fault_counters.pulses_dropped);
  w.U64(s.fault_counters.pulses_spurious);
  w.U64(s.fault_counters.pulses_jittered);
  w.U64(s.transport_offered);
  w.U64(s.transport_delivered);
  w.U64(s.transport_duplicates);
  w.U64(s.transport_retransmissions);
  w.U64(s.transport_expired);
  w.U64(s.transport_holes_skipped);
  w.U64(s.transport_acked);
  w.U64(s.transport_escalations);
  w.U64(s.transport_ext_rejected);
  w.U64(s.transport_rejected_full);
  w.Str(result.digest);
  return w.Take();
}

bool DeserializeSoakResult(const std::string& payload, SoakResult* result) {
  runtime::PayloadReader r(payload);
  std::uint64_t version = 0;
  if (!r.U64(&version) || version != kSoakResultVersion) return false;
  SoakResult out;
  std::uint64_t v = 0;
  auto u = [&](std::size_t* field) {
    if (!r.U64(&v)) return false;
    *field = static_cast<std::size_t>(v);
    return true;
  };
  std::uint64_t passed = 0;
  if (!r.U64(&passed) || passed > 1) return false;
  out.passed = passed == 1;
  std::size_t violations = 0;
  if (!u(&violations) || violations > (1u << 24)) return false;
  out.violations.resize(violations);
  for (SoakViolation& viol : out.violations) {
    if (!u(&viol.round) || !r.Str(&viol.kind) || !r.Str(&viol.detail)) {
      return false;
    }
  }
  FullStackStats& s = out.stats;
  std::size_t tags = 0;
  if (!u(&s.rounds) || !u(&s.slots_total) || !u(&s.deliveries) ||
      !u(&s.observed_collisions) || !u(&s.observed_empties) || !u(&tags) ||
      tags > (1u << 16)) {
    return false;
  }
  s.per_tag_deliveries.resize(tags);
  for (std::size_t& d : s.per_tag_deliveries) {
    if (!u(&d)) return false;
  }
  if (!r.F64(&s.airtime_s) || !r.F64(&s.goodput_bps) ||
      !r.F64(&s.jain_fairness) || !u(&s.faults_injected) ||
      !u(&s.desync_events) || !u(&s.sequence_gaps) ||
      !u(&s.reannouncements) || !u(&s.rounds_recovered) ||
      !r.F64(&s.backoff_airtime_s) || !u(&s.fault_counters.cfo_rotations) ||
      !u(&s.fault_counters.window_slips) ||
      !u(&s.fault_counters.interferer_bursts) ||
      !u(&s.fault_counters.excitation_dropouts) ||
      !u(&s.fault_counters.pulses_dropped) ||
      !u(&s.fault_counters.pulses_spurious) ||
      !u(&s.fault_counters.pulses_jittered) || !u(&s.transport_offered) ||
      !u(&s.transport_delivered) || !u(&s.transport_duplicates) ||
      !u(&s.transport_retransmissions) || !u(&s.transport_expired) ||
      !u(&s.transport_holes_skipped) || !u(&s.transport_acked) ||
      !u(&s.transport_escalations) || !u(&s.transport_ext_rejected) ||
      !u(&s.transport_rejected_full) || !r.Str(&out.digest) || !r.AtEnd()) {
    return false;
  }
  *result = std::move(out);
  return true;
}

}  // namespace freerider::sim
