// Chaos-soak harness for the reliable tag-data transport.
//
// A soak drives the full-stack simulator (sim/multitag.h) for
// thousands of rounds under a *schedule* of impairment mixes — loss
// regimes switch mid-run, exactly the regime changes the selective-
// repeat machinery has to survive — and checks the transport's
// end-to-end invariants against every round's RoundReport:
//
//   * no duplicate   — each (tag, seq) is app-delivered at most once;
//   * no reorder     — per tag, deliveries (and explicit hole-skips)
//                      advance the sequence space strictly in order;
//   * eventual       — in strict mode, everything a tag accepted into
//     delivery         its queue is delivered by the end of the drain
//                      phase (no expiry, no receiver hole-skip);
//   * no stuck tag   — after the drain phase every queue is empty.
//
// Failures are the product here, so a violated soak emits a
// self-contained JSON *replay record*: the full config, the impairment
// schedule, the seed, and the run's outcome digest. tools/replay_soak
// re-runs a record and must land on a bit-identical digest — chaos
// findings that cannot be reproduced are noise.
//
// Determinism contract: everything derives from SoakConfig::seed via
// the repo's Rng; the sim is constructed with
// reserve_impairment_stream so mid-run schedule swaps never perturb
// the master stream. Same record ⇒ same digest, bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/multitag.h"

namespace freerider::sim {

/// One leg of the impairment schedule: from `start_round` (inclusive)
/// until the next segment takes over, the sim runs under `impairments`.
struct SoakSegment {
  std::size_t start_round = 0;
  impair::ImpairmentConfig impairments;
};

struct SoakConfig {
  std::uint64_t seed = 1;
  std::size_t num_tags = 4;
  /// Rounds with offered load (the chaos phase).
  std::size_t rounds = 500;
  /// Extra rounds with no new offers so in-flight frames can finish;
  /// the no-stuck-tag and eventual-delivery invariants are judged
  /// after this phase. The drain runs under the last segment's mix.
  std::size_t drain_rounds = 250;
  /// Enqueue one frame per tag every this many rounds (1 = every
  /// round). Offered load must sit below the collision-limited channel
  /// capacity or "eventual delivery" is unachievable by construction.
  std::size_t offer_every = 2;
  /// Strict mode: expiry, receiver hole-skips, and queue-full rejects
  /// are invariant violations (the acceptance posture). Non-strict
  /// soaks only police duplicates/reordering — for probing schedules
  /// beyond the transport's give-up envelope.
  bool strict = true;
  /// Transport knobs; `enabled` is forced on by RunSoak.
  transport::TransportConfig transport;
  /// Impairment schedule, sorted by start_round (segment 0 should
  /// start at round 0; rounds before the first segment run clean).
  std::vector<SoakSegment> schedule;
  /// Optional flight-recorder sink (non-owning; must outlive the run).
  /// Runtime wiring, not part of the replay record: SoakReplayJson
  /// neither serializes nor restores it, and null keeps the sim on
  /// the bit-identical legacy path.
  obs::TraceRing* trace = nullptr;
};

struct SoakViolation {
  std::size_t round = 0;
  std::string kind;    ///< duplicate | reorder | skip | expired | ...
  std::string detail;  ///< Human-readable specifics (tag, seq, ...).
};

struct SoakResult {
  bool passed = false;
  std::vector<SoakViolation> violations;
  FullStackStats stats;
  /// Canonical outcome string: every violation plus a stats digest,
  /// doubles in hex-float. Two runs agree iff their digests are equal
  /// byte-for-byte — this is the replay-verification currency.
  std::string digest;
};

/// Run one soak campaign. Deterministic in `config`.
SoakResult RunSoak(const SoakConfig& config);

/// Run independent soak campaigns as parallel tasks on the default
/// executor. Results (and digests) land in config order, each bit-
/// identical to a serial RunSoak of the same config at every
/// --threads value. `report` (optional) receives scheduling
/// telemetry.
std::vector<SoakResult> RunSoakBatch(const std::vector<SoakConfig>& configs,
                                     runtime::SweepReport* report = nullptr);

/// Serialize a soak finding as a self-contained JSON replay record
/// (config + schedule + the digest the original run produced).
std::string SoakReplayJson(const SoakConfig& config, const SoakResult& result);

/// Parse a replay record back into the config (+ the recorded digest,
/// if present). Returns std::nullopt on malformed input — the parser
/// is strict; a record that does not round-trip is not a record.
struct SoakReplay {
  SoakConfig config;
  std::string expect_digest;
};
std::optional<SoakReplay> ParseSoakReplay(const std::string& json);

/// As above, but reports *why* a record was rejected (duplicate key,
/// out-of-range field, unsorted schedule, ...) in `error` — the
/// message tools/replay_soak prints.
std::optional<SoakReplay> ParseSoakReplay(const std::string& json,
                                          std::string* error);

/// Bit-exact SoakResult (de)serialization for checkpoint payloads:
/// verdict, every violation, the full FullStackStats, and the digest
/// round-trip byte-identically (doubles in hex-float).
std::string SerializeSoakResult(const SoakResult& result);
bool DeserializeSoakResult(const std::string& payload, SoakResult* result);

}  // namespace freerider::sim
