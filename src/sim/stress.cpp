#include "sim/stress.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <utility>

#include "runtime/checkpoint.h"

namespace freerider::sim {
namespace {

std::string Fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list measure;
  va_copy(measure, args);
  const int size = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  std::string out(size > 0 ? static_cast<std::size_t>(size) : 0, '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args);
  va_end(args);
  return out;
}

/// Per-tag sequence-space tracker (64-bit position, so it never
/// aliases across 8-bit wraps). Re-anchored when the transport
/// declares an explicit stream resync — the one sanctioned repeat.
struct TagTrack {
  bool anchored = false;
  std::uint64_t position = 0;
  std::uint64_t delivered = 0;
  std::uint64_t skipped = 0;
  std::size_t resyncs_seen = 0;
};

}  // namespace

StressResult RunStress(const StressConfig& config) {
  FullStackConfig sim_cfg;
  sim_cfg.num_tags = config.num_tags;
  sim_cfg.rounds = config.rounds + config.drain_rounds;
  sim_cfg.transport = config.transport;
  sim_cfg.transport.enabled = true;
  sim_cfg.supervisor = config.supervisor;
  sim_cfg.supervisor.enabled = config.supervisor_on;
  sim_cfg.dynamics = config.dynamics;
  sim_cfg.offered_per_round = 0;  // the harness schedules offers itself
  if (config.HasDeadTag()) {
    impair::BlackoutWindow death;
    death.begin_round = config.dead_round;
    death.end_round = config.rounds + config.drain_rounds + 1;
    death.tags = {config.dead_tag};
    sim_cfg.dynamics.blackouts.push_back(death);
  }

  obs::TraceRing ring(config.trace_capacity > 0 ? config.trace_capacity : 1);
  if (config.trace_capacity > 0) sim_cfg.trace = &ring;

  Rng rng(config.seed);
  FullStackSim sim(sim_cfg, rng);
  StressResult result;
  std::vector<TagTrack> track(config.num_tags);

  auto violate = [&](std::size_t round, const char* kind,
                     std::string detail) {
    result.violations.push_back({round, kind, std::move(detail)});
  };

  const std::size_t total_rounds = config.rounds + config.drain_rounds;
  for (std::size_t round = 0; round < total_rounds; ++round) {
    const bool offering = round < config.rounds && config.offer_every != 0 &&
                          round % config.offer_every == 0;
    sim.SetOfferedPerRound(offering ? 1 : 0);
    // The workload stops addressing the dead tag once it dies — the
    // way real traffic sources drop an unplugged node. Frames already
    // queued at death stay offered (and charged) in both arms.
    if (config.HasDeadTag() && round == config.dead_round) {
      sim.SetTagOffering(config.dead_tag, false);
    }

    const RoundReport report = sim.StepRound();

    // A resync this round re-anchors the tag's tracker: the transport
    // deliberately forgot the old delivery point, and the sequences it
    // delivers next are anchored to the first frame heard.
    for (std::size_t t = 0; t < config.num_tags; ++t) {
      const std::size_t resyncs =
          sim.coordinator_transport()->rx(t).stats().resyncs;
      if (resyncs != track[t].resyncs_seen) {
        track[t].resyncs_seen = resyncs;
        track[t].anchored = false;
      }
    }

    std::vector<std::optional<std::uint8_t>> skip(config.num_tags);
    for (const RoundReport::Delivery& s : report.skipped) {
      skip[s.tag_id - 1] = s.seq;
    }
    auto consume_skip = [&](std::size_t t) {
      TagTrack& tk = track[t];
      if (tk.anchored && skip[t].has_value() &&
          *skip[t] == static_cast<std::uint8_t>(tk.position)) {
        skip[t].reset();
        ++tk.position;
        ++tk.skipped;
        return true;
      }
      return false;
    };

    for (const RoundReport::Delivery& d : report.delivered) {
      const std::size_t t = d.tag_id - 1;
      TagTrack& tk = track[t];
      if (!tk.anchored) {
        tk.anchored = true;
        tk.position = d.seq;
      }
      if (d.seq != static_cast<std::uint8_t>(tk.position)) {
        consume_skip(t);
      }
      const std::uint8_t expected = static_cast<std::uint8_t>(tk.position);
      if (d.seq == expected) {
        ++tk.position;
        ++tk.delivered;
        continue;
      }
      const bool behind = transport::SeqDistance(d.seq, expected) < 128;
      violate(round, behind ? "duplicate" : "reorder",
              Fmt("tag=%u seq=%u expected=%u", d.tag_id, d.seq, expected));
    }
    for (std::size_t t = 0; t < config.num_tags; ++t) {
      if (!skip[t].has_value()) continue;
      if (!track[t].anchored) {
        // A skip before any delivery anchors the stream one past it.
        track[t].anchored = true;
        track[t].position = static_cast<std::uint64_t>(*skip[t]) + 1;
        ++track[t].skipped;
        continue;
      }
      const std::uint8_t expected =
          static_cast<std::uint8_t>(track[t].position);
      if (!consume_skip(t)) {
        violate(round, "skip-out-of-order",
                Fmt("tag=%zu seq=%u expected=%u", t + 1, *skip[t], expected));
      }
    }
  }

  const FullStackStats stats = sim.Stats();
  result.offered = stats.transport_offered;
  result.delivered = stats.transport_delivered;
  result.expired = stats.transport_expired;
  result.rejected_full = stats.transport_rejected_full;
  result.duplicates = stats.transport_duplicates;
  result.skipped = stats.transport_holes_skipped;
  result.faded_frames = stats.faded_frames;
  // Triage aid (docs/observability.md): FREERIDER_STRESS_DEBUG=1 dumps
  // the flight-recorder ring as JSONL to stderr — the same event
  // stream `tools/trace_dump` reads from the exported campaign, so a
  // failing test and the recorded artifact show identical evidence.
  // Never drawn from, never on by default.
  if (std::getenv("FREERIDER_STRESS_DEBUG") != nullptr) {
    std::fprintf(stderr, "%s", obs::TraceToJsonl("stress", ring).c_str());
  }
  result.blackout_tag_rounds = stats.blackout_tag_rounds;
  result.quarantines = stats.health_quarantines;
  result.recoveries = stats.health_recoveries;
  result.probes_sent = stats.health_probes_sent;
  result.boost_commands = stats.health_boost_commands;
  result.resyncs = stats.health_resyncs;
  result.ooo_evicted = stats.health_ooo_evicted;
  result.delivery_ratio =
      result.offered > 0 ? static_cast<double>(result.delivered) /
                               static_cast<double>(result.offered)
                         : 0.0;

  const health::LinkSupervisor* supervisor = sim.supervisor();
  if (supervisor != nullptr) {
    // Healthy-tag isolation: recovery actions (stream resync, OOO
    // eviction) may only ever touch tags the supervisor actually
    // quarantined — in-flight ARQ state of healthy tags is sacrosanct.
    std::set<std::uint8_t> quarantined_ids;
    for (const health::HealthTransition& tr : supervisor->transitions()) {
      if (tr.to == health::TagHealth::kQuarantined) {
        quarantined_ids.insert(tr.tag_id);
      }
    }
    for (std::size_t t = 0; t < config.num_tags; ++t) {
      if (quarantined_ids.count(static_cast<std::uint8_t>(t + 1)) > 0) {
        continue;
      }
      const transport::TagRxStats& rx =
          sim.coordinator_transport()->rx(t).stats();
      if (rx.resyncs > 0) {
        violate(total_rounds, "resync_healthy",
                Fmt("tag=%zu resyncs=%zu", t + 1, rx.resyncs));
      }
      if (rx.ooo_evicted > 0) {
        violate(total_rounds, "evict_healthy",
                Fmt("tag=%zu evicted=%zu", t + 1, rx.ooo_evicted));
      }
    }
    // Quarantine detection bound for the configured dead tag. A deep
    // fade may already have the tag Quarantined when it dies; what the
    // contract requires is that the tag sits in Quarantined no later
    // than dead_round + bound and never leaves afterwards — it is
    // silent forever, so any post-death recovery would be a phantom.
    if (config.HasDeadTag()) {
      result.dead_tag_audited = true;
      result.detection_bound = health::QuarantineDetectionBound(
          config.supervisor);
      const std::uint8_t dead_id =
          static_cast<std::uint8_t>(config.dead_tag + 1);
      bool in_quarantine = false;
      std::size_t entered = 0;
      for (const health::HealthTransition& tr : supervisor->transitions()) {
        if (tr.tag_id != dead_id) continue;
        if (tr.to == health::TagHealth::kQuarantined) {
          if (!in_quarantine) {
            in_quarantine = true;
            entered = tr.round;
          }
        } else {
          in_quarantine = false;
        }
      }
      if (in_quarantine) {
        result.quarantine_round = entered;
        // Last heard round is at latest dead_round - 1; a quarantine
        // already standing at death counts as instant detection.
        result.detection_rounds =
            entered > config.dead_round ? entered - config.dead_round + 1 : 0;
      }
      result.quarantine_bound_met =
          in_quarantine && result.detection_rounds <= result.detection_bound;
      if (!in_quarantine) {
        violate(total_rounds, "no_quarantine",
                Fmt("tag=%u dead_round=%zu", dead_id, config.dead_round));
      } else if (!result.quarantine_bound_met) {
        violate(total_rounds, "quarantine_late",
                Fmt("tag=%u detection=%zu bound=%zu", dead_id,
                    result.detection_rounds, result.detection_bound));
      }
    }
  }

  result.passed = result.violations.empty();

  std::string digest;
  for (const StressViolation& v : result.violations) {
    digest += Fmt("violation round=%zu kind=%s %s\n", v.round,
                  v.kind.c_str(), v.detail.c_str());
  }
  digest += Fmt(
      "stress ratio=%a offered=%zu delivered=%zu expired=%zu rejfull=%zu "
      "dup=%zu skipped=%zu faded=%zu blackout=%zu quar=%zu recov=%zu "
      "probes=%zu boosts=%zu resyncs=%zu evicted=%zu qround=%zu detect=%zu "
      "bound=%zu\n",
      result.delivery_ratio, result.offered, result.delivered,
      result.expired, result.rejected_full, result.duplicates, result.skipped,
      result.faded_frames, result.blackout_tag_rounds, result.quarantines,
      result.recoveries, result.probes_sent, result.boost_commands,
      result.resyncs, result.ooo_evicted, result.quarantine_round,
      result.detection_rounds, result.detection_bound);
  result.digest = std::move(digest);
  if (config.trace_capacity > 0) {
    result.trace = obs::SerializeTrace("stress", ring);
  }
  return result;
}

std::string SerializeStressResult(const StressResult& result) {
  runtime::PayloadWriter w;
  w.U64(result.passed ? 1 : 0);
  w.F64(result.delivery_ratio);
  w.U64(result.offered);
  w.U64(result.delivered);
  w.U64(result.expired);
  w.U64(result.rejected_full);
  w.U64(result.duplicates);
  w.U64(result.skipped);
  w.U64(result.faded_frames);
  w.U64(result.blackout_tag_rounds);
  w.U64(result.quarantines);
  w.U64(result.recoveries);
  w.U64(result.probes_sent);
  w.U64(result.boost_commands);
  w.U64(result.resyncs);
  w.U64(result.ooo_evicted);
  w.U64(result.dead_tag_audited ? 1 : 0);
  w.U64(result.quarantine_bound_met ? 1 : 0);
  w.U64(result.quarantine_round);
  w.U64(result.detection_rounds);
  w.U64(result.detection_bound);
  w.U64(result.violations.size());
  for (const StressViolation& v : result.violations) {
    w.U64(v.round);
    w.Str(v.kind);
    w.Str(v.detail);
  }
  w.Str(result.digest);
  w.Str(result.trace);
  return w.Take();
}

bool DeserializeStressResult(const std::string& payload,
                             StressResult* result) {
  runtime::PayloadReader r(payload);
  StressResult out;
  std::uint64_t v = 0;
  auto u = [&](std::size_t* field) {
    if (!r.U64(&v)) return false;
    *field = static_cast<std::size_t>(v);
    return true;
  };
  auto b = [&](bool* field) {
    if (!r.U64(&v) || v > 1) return false;
    *field = v == 1;
    return true;
  };
  std::size_t num_violations = 0;
  if (!b(&out.passed) || !r.F64(&out.delivery_ratio) || !u(&out.offered) ||
      !u(&out.delivered) || !u(&out.expired) || !u(&out.rejected_full) ||
      !u(&out.duplicates) || !u(&out.skipped) || !u(&out.faded_frames) ||
      !u(&out.blackout_tag_rounds) || !u(&out.quarantines) ||
      !u(&out.recoveries) || !u(&out.probes_sent) ||
      !u(&out.boost_commands) || !u(&out.resyncs) ||
      !u(&out.ooo_evicted) || !b(&out.dead_tag_audited) ||
      !b(&out.quarantine_bound_met) || !u(&out.quarantine_round) ||
      !u(&out.detection_rounds) || !u(&out.detection_bound) ||
      !u(&num_violations) || num_violations > (1u << 20)) {
    return false;
  }
  out.violations.resize(num_violations);
  for (StressViolation& viol : out.violations) {
    if (!u(&viol.round) || !r.Str(&viol.kind) || !r.Str(&viol.detail)) {
      return false;
    }
  }
  if (!r.Str(&out.digest) || !r.Str(&out.trace) || !r.AtEnd()) return false;
  *result = std::move(out);
  return true;
}

StressConfig MakeStressBenchConfig(std::uint64_t seed, bool supervisor_on,
                                   std::size_t rounds) {
  StressConfig config;
  config.seed = seed;
  config.num_tags = 6;
  config.rounds = rounds;
  config.drain_rounds = rounds / 4 + 80;
  config.offer_every = 4;
  config.supervisor_on = supervisor_on;

  // Generous per-frame retry budget, tight queue: the contrast the
  // bench measures is *where the budget goes*. Bare ARQ burns all 16
  // tries into a fade, gives up, and the queue backs up into
  // rejections; the supervisor's closed loop (boost + admission +
  // probes) spends the same budget after the channel recovers.
  config.transport.max_transmissions = 16;
  config.transport.expiry_rounds = 1000000;  // give-up is attempt-based
  config.transport.queue_capacity = 24;
  config.transport.rto_rounds = 3;
  config.transport.max_escalation_steps = 1;
  config.transport.hole_skip_rounds = 96;

  // Burst fades: long deep fades (~23% of rounds bad, 96% per-frame
  // loss while bad, mean bad burst rounds/12) — long enough that the
  // supervisor's probation/quarantine machinery engages for real. The
  // chain scales with the campaign so a shortened --rounds run (CI)
  // keeps the fade structure proportionally; at the default 600 this
  // is p_good_to_bad = 0.006, p_bad_to_good = 0.02.
  config.dynamics.seed = seed ^ 0x5354524553531ull;
  config.dynamics.gilbert.enabled = true;
  config.dynamics.gilbert.p_good_to_bad = 3.6 / static_cast<double>(rounds);
  config.dynamics.gilbert.p_bad_to_good = 12.0 / static_cast<double>(rounds);
  config.dynamics.gilbert.good_loss = 0.02;
  config.dynamics.gilbert.bad_loss = 0.96;

  // Mobility: two excursions to 1.4-1.5x nominal distance, phase-offset
  // per tag so the fleet doesn't fade in lockstep.
  config.dynamics.mobility.enabled = true;
  config.dynamics.mobility.per_tag_phase_rounds = rounds / 12;
  config.dynamics.mobility.loss_per_excess = 0.5;
  config.dynamics.mobility.max_loss = 0.90;
  config.dynamics.mobility.waypoints = {{0, 1.0},
                                        {rounds / 4, 1.4},
                                        {rounds / 2, 1.0},
                                        {(3 * rounds) / 4, 1.5},
                                        {rounds, 1.0}};

  // Two transient blackouts: the affected tags must be quarantined and
  // later re-admitted without disturbing the healthy tags' ARQ state.
  impair::BlackoutWindow b1;
  b1.begin_round = rounds / 3;
  b1.end_round = rounds / 3 + rounds / 8;
  b1.tags = {1};
  impair::BlackoutWindow b2;
  b2.begin_round = rounds / 2;
  b2.end_round = rounds / 2 + rounds / 10;
  b2.tags = {2};
  config.dynamics.blackouts = {b1, b2};

  // One tag dies for good at 2/3 of the campaign.
  config.dead_tag = config.num_tags - 1;
  config.dead_round = (2 * rounds) / 3;
  return config;
}

const std::vector<std::uint64_t>& StressBenchSeeds() {
  static const std::vector<std::uint64_t> kSeeds = {31ull, 1723ull, 60221ull};
  return kSeeds;
}

}  // namespace freerider::sim
