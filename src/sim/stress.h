// Long-horizon stress harness for the self-healing link supervisor.
//
// A stress campaign drives the full-stack simulator for thousands of
// rounds under *time-varying* channel dynamics (impair/dynamics.h):
// Gilbert–Elliott burst fades, mobility drift, scheduled blackouts,
// and optionally one tag that dies mid-campaign and never returns.
// The same schedule runs with the supervisor on or off — the paired
// comparison bench_stress_supervisor reports — and every run is
// audited against the supervisor's contract:
//
//   * no duplicate / no reorder — per tag, transport deliveries
//     advance the sequence space strictly forward (the tracker is
//     re-anchored across an explicit stream resync, which is the only
//     place the transport itself allows a repeat);
//   * bounded quarantine detection — a tag configured to die must be
//     Quarantined within QuarantineDetectionBound() rounds of its
//     death (or already quarantined when it dies) and must never
//     leave Quarantined afterwards (supervisor-on runs only);
//   * healthy-tag isolation — a tag that was never quarantined must
//     never have its receive stream resynced or its OOO buffer
//     evicted: recovery actions are surgical, not global.
//
// Determinism contract: everything derives from StressConfig (seed,
// schedule, knobs); the dynamics run on counter-based per-(tag, round)
// streams, so RunStress is a pure function — the digest of a config
// is bit-stable across runs, thread counts, and checkpoint/resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/multitag.h"

namespace freerider::sim {

struct StressConfig {
  std::uint64_t seed = 1;
  std::size_t num_tags = 6;
  /// Rounds with offered load.
  std::size_t rounds = 1200;
  /// Extra rounds with no new offers so in-flight frames can finish.
  std::size_t drain_rounds = 200;
  /// Enqueue one frame per tag every this many rounds (1 = every round).
  std::size_t offer_every = 2;
  /// The paired A/B knob: same schedule, supervisor on or off.
  bool supervisor_on = true;
  /// Transport knobs; `enabled` is forced on by RunStress.
  transport::TransportConfig transport;
  /// Supervisor knobs; `enabled` is forced to supervisor_on.
  health::SupervisorConfig supervisor;
  /// The time-varying channel under test.
  impair::DynamicsConfig dynamics;
  /// Optional dead tag: 0-based index blacked out from `dead_round` to
  /// the end of the campaign (num_tags or larger = no dead tag). The
  /// quarantine-bound audit keys off this.
  std::size_t dead_tag = static_cast<std::size_t>(-1);
  std::size_t dead_round = 0;
  /// Flight-recorder ring capacity for the campaign (0 disables
  /// tracing entirely; the sim then takes the legacy no-trace path).
  /// The recorder keeps the newest `trace_capacity` events in virtual
  /// (round, slot) time — bounded memory however long the campaign.
  std::size_t trace_capacity = obs::TraceRing::kDefaultCapacity;

  bool HasDeadTag() const { return dead_tag < num_tags; }
};

struct StressViolation {
  std::size_t round = 0;
  std::string kind;    ///< duplicate | reorder | resync_healthy | ...
  std::string detail;
};

struct StressResult {
  /// All audited invariants held (the delivery target is the bench's
  /// call — it compares on vs off).
  bool passed = false;
  /// transport_delivered / transport_offered. Offers a blacked-out
  /// tag's queue refuses (capacity) never count as offered.
  double delivery_ratio = 0.0;
  std::size_t offered = 0;
  std::size_t delivered = 0;
  std::size_t expired = 0;
  std::size_t rejected_full = 0;
  std::size_t duplicates = 0;
  /// Frames the coordinator gave up waiting for (hole skip): the
  /// stream advanced past them, so they are permanently undelivered.
  std::size_t skipped = 0;
  std::size_t faded_frames = 0;
  std::size_t blackout_tag_rounds = 0;
  std::size_t quarantines = 0;
  std::size_t recoveries = 0;
  std::size_t probes_sent = 0;
  std::size_t boost_commands = 0;
  std::size_t resyncs = 0;
  std::size_t ooo_evicted = 0;
  // Quarantine-bound audit (dead-tag + supervisor-on runs only).
  bool dead_tag_audited = false;
  bool quarantine_bound_met = true;
  std::size_t quarantine_round = 0;   ///< Round the dead tag was quarantined.
  std::size_t detection_rounds = 0;   ///< Rounds from last heard to quarantine.
  std::size_t detection_bound = 0;    ///< QuarantineDetectionBound(config).
  std::vector<StressViolation> violations;
  /// Canonical outcome string (doubles in hex-float): two runs agree
  /// iff their digests are equal byte-for-byte.
  std::string digest;
  /// Serialized flight-recorder ring (obs::SerializeTrace, one named
  /// trace "stress"). Rides the checkpoint payload so a resumed task
  /// reproduces the export byte-for-byte; empty when tracing is off.
  std::string trace;
};

/// Run one stress campaign. Deterministic in `config`.
StressResult RunStress(const StressConfig& config);

/// The bench_stress_supervisor schedule, scaled to `rounds`: burst
/// fades, a two-excursion mobility trace, two transient blackouts, and
/// one dead tag. Lives in the sim library (not the bench) so the
/// distributed "stress_supervisor" body builds the *identical*
/// campaign on both sides of the worker pipe.
StressConfig MakeStressBenchConfig(std::uint64_t seed, bool supervisor_on,
                                   std::size_t rounds);

/// The bench's three campaign seeds — the points axis of its
/// seed×{on,off} grid.
const std::vector<std::uint64_t>& StressBenchSeeds();

/// Bit-exact StressResult (de)serialization for checkpoint payloads —
/// a restored result reproduces the bench row (and digest) exactly.
std::string SerializeStressResult(const StressResult& result);
bool DeserializeStressResult(const std::string& payload,
                             StressResult* result);

}  // namespace freerider::sim
