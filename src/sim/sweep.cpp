#include "sim/sweep.h"

#include <cmath>

#include "core/redundancy.h"
#include <cstdio>
#include <sstream>

namespace freerider::sim {

std::vector<DistancePoint> DistanceSweep(core::RadioType radio,
                                         const channel::Deployment& deployment,
                                         const std::vector<double>& distances,
                                         std::size_t packets,
                                         std::uint64_t seed) {
  std::vector<DistancePoint> points;
  points.reserve(distances.size());
  Rng rng(seed);
  for (double d : distances) {
    LinkConfig config;
    config.radio = radio;
    config.deployment = deployment;
    config.tag_to_rx_m = d;
    config.num_packets = packets;
    config.profile = DefaultProfile(radio);
    Rng point_rng = rng.Split();
    points.push_back({d, SimulateTagLinkAdaptive(config, point_rng)});
  }
  return points;
}

std::vector<RangePoint> RangeSweep(core::RadioType radio,
                                   const std::vector<double>& tx_tag_distances,
                                   double max_search_m, std::size_t packets,
                                   std::uint64_t seed, double prr_floor) {
  std::vector<RangePoint> points;
  Rng rng(seed);
  for (double d1 : tx_tag_distances) {
    auto sustained = [&](double d2) {
      LinkConfig config;
      config.radio = radio;
      config.deployment = channel::LosDeployment(d1);
      config.tag_to_rx_m = d2;
      config.num_packets = packets;
      config.profile = DefaultProfile(radio);
      // The range limit is header detection, not tag BER: use the
      // largest redundancy.
      config.redundancy = core::RedundancyLadder(radio).back();
      Rng trial_rng = rng.Split();
      const LinkStats stats = SimulateTagLink(config, trial_rng);
      return stats.packet_reception_rate >= prr_floor;
    };
    // Exponential bracket then bisection on the sustained range.
    double lo = 0.5;
    if (!sustained(lo)) {
      points.push_back({d1, 0.0});
      continue;
    }
    double hi = 1.0;
    while (hi < max_search_m && sustained(hi)) hi *= 1.6;
    hi = std::min(hi, max_search_m);
    for (int iter = 0; iter < 7 && hi - lo > 0.25; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (sustained(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    points.push_back({d1, lo});
  }
  return points;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Sci(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1e", value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      // Quote cells containing commas or quotes; double inner quotes.
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"") != std::string::npos) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TablePrinter::ToJson(const std::string& name) const {
  std::ostringstream out;
  auto quote = [&](const std::string& cell) {
    out << '"';
    for (char ch : cell) {
      if (ch == '"' || ch == '\\') out << '\\';
      out << ch;
    }
    out << '"';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '[';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      quote(cells[c]);
    }
    out << ']';
  };
  out << "{\"table\": ";
  quote(name);
  out << ", \"headers\": ";
  emit(headers_);
  out << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out << ',';
    out << "\n  ";
    emit(rows_[r]);
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace freerider::sim
