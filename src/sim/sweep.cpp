#include "sim/sweep.h"

#include <cmath>

#include "core/redundancy.h"
#include "runtime/checkpoint.h"
#include "runtime/executor.h"

namespace freerider::sim {

namespace {

constexpr std::uint64_t kLinkStatsVersion = 1;

void WriteFaultCounters(runtime::PayloadWriter& w,
                        const impair::FaultCounters& fc) {
  w.U64(fc.cfo_rotations);
  w.U64(fc.window_slips);
  w.U64(fc.interferer_bursts);
  w.U64(fc.excitation_dropouts);
  w.U64(fc.pulses_dropped);
  w.U64(fc.pulses_spurious);
  w.U64(fc.pulses_jittered);
}

bool ReadFaultCounters(runtime::PayloadReader& r, impair::FaultCounters* fc) {
  std::uint64_t v = 0;
  auto u = [&](std::size_t* field) {
    if (!r.U64(&v)) return false;
    *field = static_cast<std::size_t>(v);
    return true;
  };
  return u(&fc->cfo_rotations) && u(&fc->window_slips) &&
         u(&fc->interferer_bursts) && u(&fc->excitation_dropouts) &&
         u(&fc->pulses_dropped) && u(&fc->pulses_spurious) &&
         u(&fc->pulses_jittered);
}

}  // namespace

std::string SerializeLinkStats(const LinkStats& stats) {
  runtime::PayloadWriter w;
  w.U64(kLinkStatsVersion);
  w.U64(stats.packets_attempted);
  w.U64(stats.packets_decoded);
  w.F64(stats.packet_reception_rate);
  w.F64(stats.tag_ber);
  w.F64(stats.tag_throughput_bps);
  w.F64(stats.rssi_dbm);
  w.F64(stats.snr_db);
  w.U64(stats.redundancy_used);
  w.U64(stats.faults_injected);
  w.U64(stats.desync_events);
  w.U64(stats.rounds_recovered);
  WriteFaultCounters(w, stats.fault_counters);
  return w.Take();
}

bool DeserializeLinkStats(const std::string& payload, LinkStats* stats) {
  runtime::PayloadReader r(payload);
  std::uint64_t version = 0;
  if (!r.U64(&version) || version != kLinkStatsVersion) return false;
  LinkStats s;
  std::uint64_t v = 0;
  auto u = [&](std::size_t* field) {
    if (!r.U64(&v)) return false;
    *field = static_cast<std::size_t>(v);
    return true;
  };
  if (!u(&s.packets_attempted) || !u(&s.packets_decoded) ||
      !r.F64(&s.packet_reception_rate) || !r.F64(&s.tag_ber) ||
      !r.F64(&s.tag_throughput_bps) || !r.F64(&s.rssi_dbm) ||
      !r.F64(&s.snr_db) || !u(&s.redundancy_used) ||
      !u(&s.faults_injected) || !u(&s.desync_events) ||
      !u(&s.rounds_recovered) || !ReadFaultCounters(r, &s.fault_counters) ||
      !r.AtEnd()) {
    return false;
  }
  *stats = s;
  return true;
}

std::vector<DistancePoint> DistanceSweep(core::RadioType radio,
                                         const channel::Deployment& deployment,
                                         const std::vector<double>& distances,
                                         std::size_t packets,
                                         std::uint64_t seed,
                                         runtime::SweepReport* report) {
  std::vector<DistancePoint> points(distances.size());
  // Per-point seeds drawn serially in point order: the exact values the
  // historical `Rng point_rng = rng.Split()` loop handed each point, so
  // the parallel sweep reproduces the serial results bit for bit.
  Rng master(seed);
  std::vector<std::uint64_t> point_seeds(distances.size());
  for (auto& s : point_seeds) s = master.NextU64();

  runtime::SweepEngine engine(runtime::DefaultExecutor());
  runtime::SweepReport local_report = engine.Run(
      {distances.size(), 1}, [&](std::size_t p, std::size_t) {
        LinkConfig config;
        config.radio = radio;
        config.deployment = deployment;
        config.tag_to_rx_m = distances[p];
        config.num_packets = packets;
        config.profile = DefaultProfile(radio);
        Rng point_rng(point_seeds[p]);
        points[p] = {distances[p], SimulateTagLinkAdaptive(config, point_rng)};
        return true;
      });
  if (report != nullptr) *report = std::move(local_report);
  return points;
}

std::vector<DistancePoint> DistanceSweepRobust(
    core::RadioType radio, const channel::Deployment& deployment,
    const std::vector<double>& distances, std::size_t packets,
    std::uint64_t seed, const std::string& slug,
    runtime::RobustSweepOptions robust, runtime::RobustSweepReport* report) {
  std::vector<DistancePoint> points(distances.size());
  // Same serial pre-draw as DistanceSweep: restored and recomputed runs
  // consume identical per-point seeds.
  Rng master(seed);
  std::vector<std::uint64_t> point_seeds(distances.size());
  for (auto& s : point_seeds) s = master.NextU64();

  robust.campaign = runtime::CampaignId(slug, seed);
  runtime::RecoveryRunner runner(runtime::DefaultExecutor(), robust);
  runtime::RobustSweepReport local_report = runner.Run(
      {distances.size(), 1},
      [&](std::size_t p, std::size_t) {
        LinkConfig config;
        config.radio = radio;
        config.deployment = deployment;
        config.tag_to_rx_m = distances[p];
        config.num_packets = packets;
        config.profile = DefaultProfile(radio);
        Rng point_rng(point_seeds[p]);
        points[p] = {distances[p], SimulateTagLinkAdaptive(config, point_rng)};
        runtime::RobustTaskResult out;
        out.payload = SerializeLinkStats(points[p].stats);
        return out;
      },
      [&](std::size_t p, std::size_t, const std::string& payload) {
        LinkStats stats;
        if (!DeserializeLinkStats(payload, &stats)) return false;
        points[p] = {distances[p], stats};
        return true;
      });
  if (report != nullptr) *report = std::move(local_report);
  return points;
}

double RangeSearchPoint(core::RadioType radio, double d1,
                        std::uint64_t point_seed, double max_search_m,
                        std::size_t packets, double prr_floor) {
  Rng point_rng(point_seed);
  auto sustained = [&](double d2) {
    LinkConfig config;
    config.radio = radio;
    config.deployment = channel::LosDeployment(d1);
    config.tag_to_rx_m = d2;
    config.num_packets = packets;
    config.profile = DefaultProfile(radio);
    // The range limit is header detection, not tag BER: use the
    // largest redundancy.
    config.redundancy = core::RedundancyLadder(radio).back();
    Rng trial_rng = point_rng.Split();
    const LinkStats stats = SimulateTagLink(config, trial_rng);
    return stats.packet_reception_rate >= prr_floor;
  };
  // Exponential bracket then bisection on the sustained range.
  double lo = 0.5;
  if (!sustained(lo)) return 0.0;
  double hi = 1.0;
  while (hi < max_search_m && sustained(hi)) hi *= 1.6;
  hi = std::min(hi, max_search_m);
  for (int iter = 0; iter < 7 && hi - lo > 0.25; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sustained(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<RangePoint> RangeSweep(core::RadioType radio,
                                   const std::vector<double>& tx_tag_distances,
                                   double max_search_m, std::size_t packets,
                                   std::uint64_t seed, double prr_floor,
                                   runtime::SweepReport* report) {
  std::vector<RangePoint> points(tx_tag_distances.size());
  // One child stream per TX→tag point. The serial code drew probe
  // streams from the shared master as the bisection went, which ties
  // each probe's seed to how many probes *earlier points* consumed —
  // unparallelizable by construction. Point-owned streams decouple the
  // points (bit-identical across thread counts; a one-time documented
  // drift from the pre-runtime serial outputs).
  Rng master(seed);
  std::vector<std::uint64_t> point_seeds(tx_tag_distances.size());
  for (auto& s : point_seeds) s = master.NextU64();

  runtime::SweepEngine engine(runtime::DefaultExecutor());
  runtime::SweepReport local_report = engine.Run(
      {tx_tag_distances.size(), 1}, [&](std::size_t p, std::size_t) {
        const double d1 = tx_tag_distances[p];
        points[p] = {d1, RangeSearchPoint(radio, d1, point_seeds[p],
                                          max_search_m, packets, prr_floor)};
        return true;
      });
  if (report != nullptr) *report = std::move(local_report);
  return points;
}

std::vector<RangePoint> RangeSweepRobust(
    core::RadioType radio, const std::vector<double>& tx_tag_distances,
    double max_search_m, std::size_t packets, std::uint64_t seed,
    double prr_floor, const std::string& slug,
    runtime::RobustSweepOptions robust, runtime::RobustSweepReport* report) {
  std::vector<RangePoint> points(tx_tag_distances.size());
  Rng master(seed);
  std::vector<std::uint64_t> point_seeds(tx_tag_distances.size());
  for (auto& s : point_seeds) s = master.NextU64();

  robust.campaign = runtime::CampaignId(slug, seed);
  runtime::RecoveryRunner runner(runtime::DefaultExecutor(), robust);
  runtime::RobustSweepReport local_report = runner.Run(
      {tx_tag_distances.size(), 1},
      [&](std::size_t p, std::size_t) {
        const double d1 = tx_tag_distances[p];
        points[p] = {d1, RangeSearchPoint(radio, d1, point_seeds[p],
                                          max_search_m, packets, prr_floor)};
        runtime::PayloadWriter w;
        w.F64(points[p].max_tag_to_rx_m);
        runtime::RobustTaskResult out;
        out.payload = w.Take();
        return out;
      },
      [&](std::size_t p, std::size_t, const std::string& payload) {
        runtime::PayloadReader r(payload);
        double max_m = 0.0;
        if (!r.F64(&max_m) || !r.AtEnd()) return false;
        points[p] = {tx_tag_distances[p], max_m};
        return true;
      });
  if (report != nullptr) *report = std::move(local_report);
  return points;
}

}  // namespace freerider::sim
