#include "sim/sweep.h"

#include <cmath>

#include "core/redundancy.h"
#include "runtime/executor.h"

namespace freerider::sim {

std::vector<DistancePoint> DistanceSweep(core::RadioType radio,
                                         const channel::Deployment& deployment,
                                         const std::vector<double>& distances,
                                         std::size_t packets,
                                         std::uint64_t seed,
                                         runtime::SweepReport* report) {
  std::vector<DistancePoint> points(distances.size());
  // Per-point seeds drawn serially in point order: the exact values the
  // historical `Rng point_rng = rng.Split()` loop handed each point, so
  // the parallel sweep reproduces the serial results bit for bit.
  Rng master(seed);
  std::vector<std::uint64_t> point_seeds(distances.size());
  for (auto& s : point_seeds) s = master.NextU64();

  runtime::SweepEngine engine(runtime::DefaultExecutor());
  runtime::SweepReport local_report = engine.Run(
      {distances.size(), 1}, [&](std::size_t p, std::size_t) {
        LinkConfig config;
        config.radio = radio;
        config.deployment = deployment;
        config.tag_to_rx_m = distances[p];
        config.num_packets = packets;
        config.profile = DefaultProfile(radio);
        Rng point_rng(point_seeds[p]);
        points[p] = {distances[p], SimulateTagLinkAdaptive(config, point_rng)};
        return true;
      });
  if (report != nullptr) *report = std::move(local_report);
  return points;
}

std::vector<RangePoint> RangeSweep(core::RadioType radio,
                                   const std::vector<double>& tx_tag_distances,
                                   double max_search_m, std::size_t packets,
                                   std::uint64_t seed, double prr_floor,
                                   runtime::SweepReport* report) {
  std::vector<RangePoint> points(tx_tag_distances.size());
  // One child stream per TX→tag point. The serial code drew probe
  // streams from the shared master as the bisection went, which ties
  // each probe's seed to how many probes *earlier points* consumed —
  // unparallelizable by construction. Point-owned streams decouple the
  // points (bit-identical across thread counts; a one-time documented
  // drift from the pre-runtime serial outputs).
  Rng master(seed);
  std::vector<std::uint64_t> point_seeds(tx_tag_distances.size());
  for (auto& s : point_seeds) s = master.NextU64();

  runtime::SweepEngine engine(runtime::DefaultExecutor());
  runtime::SweepReport local_report = engine.Run(
      {tx_tag_distances.size(), 1}, [&](std::size_t p, std::size_t) {
        const double d1 = tx_tag_distances[p];
        Rng point_rng(point_seeds[p]);
        auto sustained = [&](double d2) {
          LinkConfig config;
          config.radio = radio;
          config.deployment = channel::LosDeployment(d1);
          config.tag_to_rx_m = d2;
          config.num_packets = packets;
          config.profile = DefaultProfile(radio);
          // The range limit is header detection, not tag BER: use the
          // largest redundancy.
          config.redundancy = core::RedundancyLadder(radio).back();
          Rng trial_rng = point_rng.Split();
          const LinkStats stats = SimulateTagLink(config, trial_rng);
          return stats.packet_reception_rate >= prr_floor;
        };
        // Exponential bracket then bisection on the sustained range.
        double lo = 0.5;
        if (!sustained(lo)) {
          points[p] = {d1, 0.0};
          return true;
        }
        double hi = 1.0;
        while (hi < max_search_m && sustained(hi)) hi *= 1.6;
        hi = std::min(hi, max_search_m);
        for (int iter = 0; iter < 7 && hi - lo > 0.25; ++iter) {
          const double mid = 0.5 * (lo + hi);
          if (sustained(mid)) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        points[p] = {d1, lo};
        return true;
      });
  if (report != nullptr) *report = std::move(local_report);
  return points;
}

}  // namespace freerider::sim
