// Experiment sweeps for the evaluation figures: distance sweeps
// (Figs. 10-13) and the 2-D operational-regime sweep (Fig. 14).
//
// Since PR 3 every sweep executes its points as a task graph on the
// parallel runtime (runtime::SweepEngine over the process-wide
// work-stealing executor). Determinism: per-point seeds are drawn from
// the master stream *serially, up front, in point order* — exactly the
// values the historical serial loop's rng.Split() produced — and each
// point owns its Rng from that seed, so the results are bit-identical
// to the pre-runtime serial path at every --threads value.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "runtime/recovery.h"
#include "runtime/sweep_engine.h"
#include "sim/link.h"

namespace freerider::sim {

/// Table rendering moved to common/table.h so the runtime layer can
/// emit telemetry tables; this alias keeps every existing call site.
using TablePrinter = freerider::TablePrinter;

struct DistancePoint {
  double tag_to_rx_m = 0.0;
  LinkStats stats;
};

/// Sweep the tag→receiver distance with adaptive redundancy (rate
/// adaptation on), `packets` excitation frames per point. Points run
/// in parallel on the default executor; `report` (optional) receives
/// the run's scheduling telemetry.
std::vector<DistancePoint> DistanceSweep(core::RadioType radio,
                                         const channel::Deployment& deployment,
                                         const std::vector<double>& distances,
                                         std::size_t packets,
                                         std::uint64_t seed,
                                         runtime::SweepReport* report = nullptr);

/// Preemption-safe distance sweep: the same grid run through
/// runtime::RecoveryRunner, persisting each completed point to
/// `robust.checkpoint_path` and (with `robust.resume`) restoring
/// completed points instead of recomputing them. Restored LinkStats
/// are bit-identical to recomputed ones (hex-float serialization), so
/// the returned points — and everything printed from them — match an
/// uninterrupted run byte for byte. `robust.campaign` is filled in
/// from `slug` and `seed` by this function.
std::vector<DistancePoint> DistanceSweepRobust(
    core::RadioType radio, const channel::Deployment& deployment,
    const std::vector<double>& distances, std::size_t packets,
    std::uint64_t seed, const std::string& slug,
    runtime::RobustSweepOptions robust,
    runtime::RobustSweepReport* report = nullptr);

/// Bit-exact LinkStats (de)serialization for checkpoint payloads.
std::string SerializeLinkStats(const LinkStats& stats);
bool DeserializeLinkStats(const std::string& payload, LinkStats* stats);

struct RangePoint {
  double tx_to_tag_m = 0.0;
  double max_tag_to_rx_m = 0.0;
};

/// Fig. 14: for each TX→tag distance, the largest tag→RX distance at
/// which the link sustains (packet reception rate >= `prr_floor`).
/// Each TX→tag point (an inherently sequential bracket+bisection) is
/// one parallel task owning a per-point child stream; probe streams
/// derive from that child, not from the shared master (the one
/// documented rng-ownership change of the runtime port — see
/// DESIGN.md §7 for the expected drift).
std::vector<RangePoint> RangeSweep(core::RadioType radio,
                                   const std::vector<double>& tx_tag_distances,
                                   double max_search_m, std::size_t packets,
                                   std::uint64_t seed, double prr_floor = 0.5,
                                   runtime::SweepReport* report = nullptr);

/// One Fig. 14 point: the largest tag→RX distance (m) sustaining
/// PRR >= `prr_floor` at TX→tag distance `d1`, via the exponential
/// bracket + bisection. A pure function of its arguments (every probe
/// stream Split()s off a point-local Rng seeded with `point_seed`) —
/// the shared kernel of RangeSweep, RangeSweepRobust, and the
/// distributed "fig14_range" body, so all three compute bit-identical
/// points by construction.
double RangeSearchPoint(core::RadioType radio, double d1,
                        std::uint64_t point_seed, double max_search_m,
                        std::size_t packets, double prr_floor);

/// Preemption-safe Fig. 14 sweep (see DistanceSweepRobust).
std::vector<RangePoint> RangeSweepRobust(
    core::RadioType radio, const std::vector<double>& tx_tag_distances,
    double max_search_m, std::size_t packets, std::uint64_t seed,
    double prr_floor, const std::string& slug,
    runtime::RobustSweepOptions robust,
    runtime::RobustSweepReport* report = nullptr);

}  // namespace freerider::sim
