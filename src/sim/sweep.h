// Experiment sweeps for the evaluation figures: distance sweeps
// (Figs. 10-13), the 2-D operational-regime sweep (Fig. 14), and small
// table-printing helpers shared by the benches.
#pragma once

#include <string>
#include <vector>

#include "sim/link.h"

namespace freerider::sim {

struct DistancePoint {
  double tag_to_rx_m = 0.0;
  LinkStats stats;
};

/// Sweep the tag→receiver distance with adaptive redundancy (rate
/// adaptation on), `packets` excitation frames per point.
std::vector<DistancePoint> DistanceSweep(core::RadioType radio,
                                         const channel::Deployment& deployment,
                                         const std::vector<double>& distances,
                                         std::size_t packets,
                                         std::uint64_t seed);

struct RangePoint {
  double tx_to_tag_m = 0.0;
  double max_tag_to_rx_m = 0.0;
};

/// Fig. 14: for each TX→tag distance, the largest tag→RX distance at
/// which the link sustains (packet reception rate >= `prr_floor`).
std::vector<RangePoint> RangeSweep(core::RadioType radio,
                                   const std::vector<double>& tx_tag_distances,
                                   double max_search_m, std::size_t packets,
                                   std::uint64_t seed, double prr_floor = 0.5);

/// Render a fixed-width table (benches print the paper's rows/series).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(const std::vector<std::string>& cells);
  /// Format helper: fixed precision double.
  static std::string Num(double value, int precision = 2);
  /// Scientific notation (for BER columns).
  static std::string Sci(double value);

  std::string ToString() const;

  /// Machine-readable CSV (quoted cells, header row first).
  std::string ToCsv() const;

  /// Machine-readable JSON: {"table": name, "headers": [...],
  /// "rows": [[...], ...]}. CI jobs collect these as BENCH_*.json
  /// artifacts, so the format is stable.
  std::string ToJson(const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace freerider::sim
