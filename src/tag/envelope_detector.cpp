#include "tag/envelope_detector.h"

#include <algorithm>
#include <cmath>

namespace freerider::tag {

double EnvelopeDetector::DetectionProbability(double power_dbm) const {
  // Logistic in dB around the threshold; the 2 dB scale reflects the
  // envelope noise riding on the comparator input (a soft edge is what
  // slowly erodes Fig. 4's message accuracy with distance).
  const double margin_db = power_dbm - config_.threshold_dbm;
  return 1.0 / (1.0 + std::exp(-margin_db / 2.0));
}

std::optional<MeasuredPulse> EnvelopeDetector::Detect(const AirPulse& pulse,
                                                      Rng& rng) const {
  if (rng.NextDouble() >= DetectionProbability(pulse.power_dbm)) {
    return std::nullopt;
  }
  // Duration jitter: each comparator edge wobbles more as the envelope
  // SNR shrinks (the edge crosses the threshold on a shallower slope).
  const double snr_db = pulse.power_dbm - config_.noise_dbm;
  const double snr_lin = std::pow(10.0, std::max(snr_db, 0.0) / 10.0);
  const double edge_sigma =
      config_.base_jitter_s * (1.0 + 24.0 / std::sqrt(snr_lin + 1.0));
  const double jitter = (rng.NextGaussian() + rng.NextGaussian()) * edge_sigma;

  MeasuredPulse measured;
  measured.start_s = pulse.start_s + config_.rise_delay_s;
  measured.duration_s = std::max(0.0, pulse.duration_s + jitter);
  return measured;
}

std::vector<MeasuredPulse> EnvelopeDetector::DetectAll(
    std::span<const AirPulse> pulses, Rng& rng) const {
  std::vector<MeasuredPulse> out;
  out.reserve(pulses.size());
  for (const AirPulse& p : pulses) {
    if (auto m = Detect(p, rng)) out.push_back(*m);
  }
  return out;
}

}  // namespace freerider::tag
