// LT5534 envelope detector + comparator model (paper §2.4.2, §3.1).
//
// The tag's only receiver is this detector: it reports packet presence
// and lets the tag measure packet durations for packet-length
// modulation. It works at air-event granularity (pulse start/stop/power)
// rather than IQ samples — PLM bits are hundreds of microseconds long
// and carry no sub-pulse structure the tag could see anyway.
//
// Modelled behaviours:
//  * sensitivity: pulses below the comparator threshold are missed; near
//    the threshold, detection is probabilistic (noise on the envelope);
//  * a fixed turn-on delay (0.35 µs measured in the paper);
//  * duration measurement jitter that grows as SNR at the detector
//    shrinks — this is what erodes Fig. 4's decoding accuracy with
//    distance.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"

namespace freerider::tag {

/// One on-air burst as seen at the tag antenna.
struct AirPulse {
  double start_s = 0.0;
  double duration_s = 0.0;
  double power_dbm = -100.0;
};

/// A pulse as measured by the detector.
struct MeasuredPulse {
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct EnvelopeDetectorConfig {
  /// Comparator threshold expressed as input power. The paper tunes the
  /// reference voltage (1.8 V) to trade sensitivity vs noise; -60 dBm
  /// matches an LT5534 mid-range setting.
  double threshold_dbm = -60.0;
  /// Envelope-noise equivalent power: detection softens within a few dB
  /// of the threshold.
  double noise_dbm = -70.0;
  /// Turn-on delay measured in the paper.
  double rise_delay_s = 0.35e-6;
  /// Duration-measurement jitter at high SNR (comparator + clock).
  double base_jitter_s = 2e-6;
};

class EnvelopeDetector {
 public:
  explicit EnvelopeDetector(EnvelopeDetectorConfig config = {})
      : config_(config) {}

  /// Detect one pulse: nullopt if missed, otherwise the measured pulse
  /// with delay and duration jitter applied.
  std::optional<MeasuredPulse> Detect(const AirPulse& pulse, Rng& rng) const;

  /// Detect a train of pulses (already time-sorted).
  std::vector<MeasuredPulse> DetectAll(std::span<const AirPulse> pulses,
                                       Rng& rng) const;

  /// Probability that a pulse at `power_dbm` triggers the comparator.
  double DetectionProbability(double power_dbm) const;

  const EnvelopeDetectorConfig& config() const { return config_; }

 private:
  EnvelopeDetectorConfig config_;
};

}  // namespace freerider::tag
