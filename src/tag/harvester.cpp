#include "tag/harvester.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace freerider::tag {

double HarvestEfficiency(double incident_dbm, const HarvesterConfig& config) {
  if (incident_dbm <= config.dead_zone_dbm) return 0.0;
  // Logistic roll-off below the knee; flat at peak above it.
  const double margin = incident_dbm - config.knee_dbm;
  const double scale =
      1.0 / (1.0 + std::exp(-margin / (config.rolloff_db / 2.0)));
  return config.peak_efficiency * std::min(1.0, 2.0 * scale);
}

double HarvestedPowerUw(double incident_dbm, const HarvesterConfig& config) {
  return DbmToWatts(incident_dbm) * 1e6 * HarvestEfficiency(incident_dbm, config);
}

double SustainableDutyCycle(double incident_dbm, double load_uw,
                            const HarvesterConfig& config) {
  if (load_uw <= 0.0) return 1.0;
  const double harvested = HarvestedPowerUw(incident_dbm, config);
  return std::clamp(harvested / load_uw, 0.0, 1.0);
}

double SelfPoweredRangeM(double tx_eirp_dbm, double load_uw, double pl0_db,
                         double exponent, const HarvesterConfig& config) {
  // Bisect on distance; harvested power decreases monotonically.
  auto sustains = [&](double d) {
    const double incident =
        tx_eirp_dbm - (pl0_db + 10.0 * exponent * std::log10(std::max(d, 0.01)));
    return HarvestedPowerUw(incident, config) >= load_uw;
  };
  if (!sustains(0.01)) return 0.0;
  double lo = 0.01;
  double hi = 0.02;
  while (hi < 1000.0 && sustains(hi)) hi *= 2.0;
  for (int i = 0; i < 50; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (sustains(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace freerider::tag
