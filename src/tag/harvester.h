// RF energy harvesting feasibility: can the ~30 µW FreeRider tag
// (paper §3.3) run battery-free off the excitation signal itself?
//
// The paper leaves the power source open (its prototype has a "power
// source" block, Fig. 5). This model answers the natural follow-on:
// harvested power = incident RF power × rectifier efficiency, where the
// efficiency itself collapses at low input power (real CMOS rectifiers
// are ~20-30 % at -10 dBm but single digits below -25 dBm). Combined
// with the power model it yields the self-powered operating radius and
// the duty cycle a capacitor-buffered tag could sustain beyond it.
#pragma once

#include "tag/power_model.h"

namespace freerider::tag {

struct HarvesterConfig {
  /// Peak rectifier efficiency (achieved at/above `knee_dbm`).
  double peak_efficiency = 0.28;
  /// Input power of peak efficiency.
  double knee_dbm = -10.0;
  /// Efficiency roll-off below the knee, per dB (logistic scale).
  double rolloff_db = 6.0;
  /// Rectifier dead zone: below this input, output is zero.
  double dead_zone_dbm = -32.0;
};

/// Rectifier efficiency at a given incident power.
double HarvestEfficiency(double incident_dbm, const HarvesterConfig& config = {});

/// Harvested power (µW) from `incident_dbm` of RF at the tag antenna.
double HarvestedPowerUw(double incident_dbm, const HarvesterConfig& config = {});

/// Sustainable duty cycle for a load of `load_uw` given harvest power
/// (capacitor-buffered): min(1, harvested / load). Zero when the
/// harvester is in its dead zone.
double SustainableDutyCycle(double incident_dbm, double load_uw,
                            const HarvesterConfig& config = {});

/// Largest TX-to-tag distance (m) at which the tag sustains `load_uw`
/// continuously, for a transmitter EIRP of `tx_eirp_dbm` under
/// free-space reference loss `pl0_db` at 1 m and exponent `exponent`.
double SelfPoweredRangeM(double tx_eirp_dbm, double load_uw,
                         double pl0_db = 40.0, double exponent = 1.9,
                         const HarvesterConfig& config = {});

}  // namespace freerider::tag
