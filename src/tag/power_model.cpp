#include "tag/power_model.h"

namespace freerider::tag {

PowerBreakdownUw EstimatePower(TranslatorKind kind, double shift_freq_hz,
                               const PowerModelConfig& config) {
  PowerBreakdownUw p;
  p.clock = config.clock_static_uw +
            (config.clock_uw_at_20mhz - config.clock_static_uw) *
                (shift_freq_hz / 20e6);
  p.rf_switch = config.rf_switch_uw;
  switch (kind) {
    case TranslatorKind::kWifiPhase:
      p.control_logic = config.logic_wifi_uw;
      break;
    case TranslatorKind::kZigbeePhase:
      p.control_logic = config.logic_zigbee_uw;
      break;
    case TranslatorKind::kBluetoothFsk:
      p.control_logic = config.logic_bluetooth_uw;
      break;
  }
  return p;
}

}  // namespace freerider::tag
