// Tag power model (paper §3.3): the TSMC 65 nm simulation budget.
//
//   19 µW  ring-oscillator clock at 20 MHz (scales ~linearly with the
//          toggle frequency, after a small static floor)
//   12 µW  ADG902 RF switch drive
//   1-3 µW control logic, depending on which codeword translator runs
//
// Total ≈ 30 µW when backscattering 802.11g/n.
#pragma once

namespace freerider::tag {

enum class TranslatorKind { kWifiPhase, kZigbeePhase, kBluetoothFsk };

struct PowerBreakdownUw {
  double clock = 0.0;
  double rf_switch = 0.0;
  double control_logic = 0.0;

  double total() const { return clock + rf_switch + control_logic; }
};

struct PowerModelConfig {
  double clock_uw_at_20mhz = 19.0;
  double clock_static_uw = 0.5;
  double rf_switch_uw = 12.0;
  double logic_wifi_uw = 3.0;      ///< OFDM symbol-timing logic.
  double logic_zigbee_uw = 2.0;
  double logic_bluetooth_uw = 1.0; ///< Simplest translator (Δf gate).
};

/// Power draw when running `kind` with a channel-shift toggle at
/// `shift_freq_hz`.
PowerBreakdownUw EstimatePower(TranslatorKind kind, double shift_freq_hz,
                               const PowerModelConfig& config = {});

}  // namespace freerider::tag
