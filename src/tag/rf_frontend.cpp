#include "tag/rf_frontend.h"

#include <cmath>
#include <stdexcept>

#include "dsp/signal_ops.h"

namespace freerider::tag {

IqBuffer ApplyPhasePlan(std::span<const Cplx> excitation, const PhasePlan& plan,
                        double conversion_amplitude) {
  if (plan.samples_per_window == 0 && !plan.window_phases.empty()) {
    throw std::invalid_argument("PhasePlan: zero-length windows");
  }
  IqBuffer out(excitation.size());
  for (std::size_t n = 0; n < excitation.size(); ++n) {
    double phase = 0.0;
    if (n >= plan.start_sample && !plan.window_phases.empty()) {
      const std::size_t w = (n - plan.start_sample) / plan.samples_per_window;
      if (w < plan.window_phases.size()) phase = plan.window_phases[w];
    }
    out[n] = excitation[n] * conversion_amplitude *
             Cplx{std::cos(phase), std::sin(phase)};
  }
  return out;
}

IqBuffer ApplyFskTogglePlan(std::span<const Cplx> excitation,
                            std::size_t start_sample,
                            std::size_t samples_per_window,
                            std::span<const Bit> window_flags,
                            double delta_f_hz, double sample_rate_hz,
                            double conversion_amplitude) {
  if (samples_per_window == 0 && !window_flags.empty()) {
    throw std::invalid_argument("FskTogglePlan: zero-length windows");
  }
  IqBuffer out(excitation.size());
  const double dphi = kTwoPi * delta_f_hz / sample_rate_hz;
  double phase = 0.0;
  for (std::size_t n = 0; n < excitation.size(); ++n) {
    double gate = 1.0;
    if (n >= start_sample && !window_flags.empty()) {
      const std::size_t w = (n - start_sample) / samples_per_window;
      if (w < window_flags.size() && window_flags[w]) {
        // The Δf square wave runs continuously in the tag's oscillator;
        // the window only gates whether it reaches the switch.
        gate = (std::sin(phase) >= 0.0) ? 1.0 : -1.0;
      }
    }
    out[n] = excitation[n] * conversion_amplitude * gate;
    phase += dphi;
    if (phase > kTwoPi) phase -= kTwoPi;
  }
  return out;
}

ImpedanceBank::ImpedanceBank(std::vector<double> reflection_amplitudes)
    : amplitudes_(std::move(reflection_amplitudes)) {
  if (amplitudes_.empty()) {
    throw std::invalid_argument("ImpedanceBank: no levels");
  }
  for (double a : amplitudes_) {
    if (a <= 0.0 || a > 1.0) {
      throw std::invalid_argument("ImpedanceBank: |Γ| must be in (0, 1]");
    }
  }
}

double ImpedanceBank::AmplitudeFor(std::size_t level) const {
  if (level >= amplitudes_.size()) {
    throw std::out_of_range("ImpedanceBank level");
  }
  return amplitudes_[level];
}

IqBuffer ApplyAmplitudePlan(std::span<const Cplx> excitation,
                            std::size_t start_sample,
                            std::size_t samples_per_window,
                            std::span<const std::size_t> window_levels,
                            const ImpedanceBank& bank,
                            double conversion_amplitude) {
  if (samples_per_window == 0 && !window_levels.empty()) {
    throw std::invalid_argument("AmplitudePlan: zero-length windows");
  }
  IqBuffer out(excitation.size());
  for (std::size_t n = 0; n < excitation.size(); ++n) {
    double amp = 1.0;
    if (n >= start_sample && !window_levels.empty()) {
      const std::size_t w = (n - start_sample) / samples_per_window;
      if (w < window_levels.size()) amp = bank.AmplitudeFor(window_levels[w]);
    }
    out[n] = excitation[n] * conversion_amplitude * amp;
  }
  return out;
}

}  // namespace freerider::tag
