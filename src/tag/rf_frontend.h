// The FreeRider tag's RF abilities, modelled at the sample level.
//
// A tag has no DSP. Everything it does is B(t) = S(t) · T(t) where T(t)
// is the waveform of its antenna load switching (paper Eq. 1):
//  * toggling the ADG902 RF switch with a delayed square wave adds a
//    phase offset to the backscattered sideband;
//  * toggling at frequency Δf moves the signal in frequency (with a
//    mirror image and ~3.9 dB conversion loss, paper Fig. 8);
//  * selecting among terminating impedances scales the reflected
//    amplitude (Γ = (Z_T - Z_A*) / (Z_A + Z_T), paper §2.1).
//
// The 20 MHz channel-shift toggle that moves the backscatter onto an
// adjacent channel is represented by `kSidebandAmplitude`: the shifted
// sideband the backscatter receiver tunes to carries 2/π of the
// amplitude, and its mirror lands 2 channels away where nobody listens.
// (Applying the literal 20 MHz square wave would only double the sample
// rate to represent a channel we then discard; dsp::SquareWaveMix tests
// prove the equivalence.)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace freerider::tag {

/// Amplitude of the fundamental sideband of a ±1 square-wave mixer.
inline constexpr double kSidebandAmplitude = 0.6366197723675814;  // 2/pi

/// A per-window phase program: the FPGA holds each phase for
/// `samples_per_window` samples starting at `start_sample`; before the
/// start and after the last window the tag reflects unmodified (phase 0).
struct PhasePlan {
  std::size_t start_sample = 0;
  std::size_t samples_per_window = 0;
  std::vector<double> window_phases;  ///< Radians.
};

/// Apply a phase plan to the excitation, including the channel-shift
/// conversion amplitude. This is the tag for OFDM WiFi and ZigBee.
IqBuffer ApplyPhasePlan(std::span<const Cplx> excitation, const PhasePlan& plan,
                        double conversion_amplitude = kSidebandAmplitude);

/// Per-window Δf toggling: windows whose flag is 1 are multiplied by a
/// square wave at `delta_f_hz` (flipping the FSK codeword); 0-windows
/// pass through. This is the tag for Bluetooth (paper Eq. 6).
IqBuffer ApplyFskTogglePlan(std::span<const Cplx> excitation,
                            std::size_t start_sample,
                            std::size_t samples_per_window,
                            std::span<const Bit> window_flags,
                            double delta_f_hz, double sample_rate_hz,
                            double conversion_amplitude = kSidebandAmplitude);

/// Discrete terminating-impedance bank: `levels` reflection amplitudes
/// in (0, 1]. Traditional tags have two (full / none); FreeRider's bank
/// has several for fine amplitude control (paper §2.1).
class ImpedanceBank {
 public:
  explicit ImpedanceBank(std::vector<double> reflection_amplitudes);

  double AmplitudeFor(std::size_t level) const;
  std::size_t num_levels() const { return amplitudes_.size(); }

 private:
  std::vector<double> amplitudes_;
};

/// Per-window amplitude program (used by the Fig. 2 invalid-codeword
/// demonstration: amplitude translation breaks OFDM).
IqBuffer ApplyAmplitudePlan(std::span<const Cplx> excitation,
                            std::size_t start_sample,
                            std::size_t samples_per_window,
                            std::span<const std::size_t> window_levels,
                            const ImpedanceBank& bank,
                            double conversion_amplitude = kSidebandAmplitude);

}  // namespace freerider::tag
