#include "transport/ack.h"

#include "mac/plm.h"

namespace freerider::transport {
namespace {

void AppendBitsLsbFirst(BitVector& out, std::uint32_t value,
                        std::size_t bits) {
  for (std::size_t i = 0; i < bits; ++i) {
    out.push_back(static_cast<Bit>((value >> i) & 1u));
  }
}

std::uint32_t ReadBitsLsbFirst(const BitVector& bits, std::size_t offset,
                               std::size_t count) {
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    value |= static_cast<std::uint32_t>(bits[offset + i] & 1u) << i;
  }
  return value;
}

}  // namespace

std::uint8_t CrcExtension(std::span<const Bit> bits) {
  std::uint8_t crc = 0;
  for (Bit b : bits) {
    const bool msb = (crc & 0x80u) != 0;
    crc = static_cast<std::uint8_t>((crc << 1) | (b & 1u));
    if (msb) crc ^= 0x07u;
  }
  // Flush the 8-bit register so trailing bits affect the result.
  for (int i = 0; i < 8; ++i) {
    const bool msb = (crc & 0x80u) != 0;
    crc = static_cast<std::uint8_t>(crc << 1);
    if (msb) crc ^= 0x07u;
  }
  return crc;
}

BitVector BuildAnnouncementExtended(const mac::RoundAnnouncement& round,
                                    const AckExtension& ext) {
  BitVector payload = mac::BuildAnnouncement(round);
  const std::size_t blocks = std::min(ext.acks.size(), kMaxAckBlocks);
  AppendBitsLsbFirst(payload, kAckExtensionVersion, 4);
  AppendBitsLsbFirst(payload,
                     static_cast<std::uint32_t>(blocks * kAckBlockBits), 8);
  for (std::size_t i = 0; i < blocks; ++i) {
    const TagAck& ack = ext.acks[i];
    AppendBitsLsbFirst(payload, ack.tag_id, 8);
    AppendBitsLsbFirst(payload, ack.cumulative, 8);
    AppendBitsLsbFirst(payload, ack.nack_bitmap, kNackBitmapBits);
  }
  const std::uint8_t crc = CrcExtension(
      std::span<const Bit>(payload).subspan(16, payload.size() - 16));
  AppendBitsLsbFirst(payload, crc, mac::kPlmExtCrcBits);
  return payload;
}

std::optional<ExtendedParseResult> ParseAnnouncementExtended(
    const BitVector& payload) {
  const auto round = mac::ParseAnnouncementPrefix(payload);
  if (!round.has_value()) return std::nullopt;

  ExtendedParseResult result;
  result.round = *round;
  if (payload.size() == 16) return result;  // legacy, no extension

  // Anything longer must carry at least the extension header + CRC and
  // must not exceed the longest well-formed payload — adversarially
  // oversized buffers are rejected before any length math runs on them.
  const std::size_t min_size = 16 + mac::kPlmExtHeaderBits + mac::kPlmExtCrcBits;
  if (payload.size() < min_size ||
      payload.size() > mac::kMaxExtendedPayloadBits) {
    result.ext_rejected = true;
    return result;
  }
  const std::size_t body_bits = ReadBitsLsbFirst(payload, 20, 8);
  if (payload.size() != min_size + body_bits) {  // truncated or padded
    result.ext_rejected = true;
    return result;
  }
  const std::uint8_t declared_crc = static_cast<std::uint8_t>(
      ReadBitsLsbFirst(payload, payload.size() - mac::kPlmExtCrcBits,
                       mac::kPlmExtCrcBits));
  const std::uint8_t computed_crc = CrcExtension(
      std::span<const Bit>(payload).subspan(
          16, payload.size() - 16 - mac::kPlmExtCrcBits));
  if (declared_crc != computed_crc) {
    result.ext_rejected = true;
    return result;
  }
  const std::uint32_t version = ReadBitsLsbFirst(payload, 16, 4);
  if (version != kAckExtensionVersion) {
    // Future versions: length and CRC already validated (they are
    // version-independent by contract), but the body is opaque to us.
    result.ext_rejected = true;
    return result;
  }
  if (body_bits % kAckBlockBits != 0) {
    result.ext_rejected = true;
    return result;
  }

  AckExtension ext;
  for (std::size_t offset = 28; offset + kAckBlockBits <= 28 + body_bits;
       offset += kAckBlockBits) {
    TagAck ack;
    ack.tag_id = static_cast<std::uint8_t>(ReadBitsLsbFirst(payload, offset, 8));
    ack.cumulative =
        static_cast<std::uint8_t>(ReadBitsLsbFirst(payload, offset + 8, 8));
    ack.nack_bitmap = static_cast<std::uint16_t>(
        ReadBitsLsbFirst(payload, offset + 16, kNackBitmapBits));
    ext.acks.push_back(ack);
  }
  result.ext = std::move(ext);
  return result;
}

}  // namespace freerider::transport
