// Announcement ACK extension: the coordinator→tag half of the reliable
// transport's feedback loop, piggybacked on the PLM round announcement
// so it costs no extra downlink messages (the tag's envelope detector
// is already listening for the announcement anyway).
//
// Wire format (appended to the 16-bit legacy announcement, see
// mac/plm.h for the carrier layout): version 1's body is a sequence of
// 32-bit ACK blocks,
//
//   tag id (8) | cumulative seq (8) | NACK bitmap (16)
//
// "cumulative" is the newest sequence number below which the
// coordinator has received *everything* from that tag (255 == nothing
// yet, i.e. next expected is 0). NACK bitmap bit i set means sequence
// cumulative+1+i is known missing — the coordinator has already
// received something newer, so the gap is a real loss, not just
// in-flight data. All multi-bit fields are LSB-first, matching the
// rest of the PLM bit plumbing.
//
// The 8-bit body-length field caps the body at 255 bits = 7 blocks per
// announcement; coordinators with more tags rotate blocks round-robin
// across rounds (the PLM downlink runs at ~1 kbps — announcement
// airtime is the scarce resource, and stale ACK state only costs a
// duplicate retransmission, never correctness).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "mac/tag_mac.h"

namespace freerider::transport {

inline constexpr std::uint8_t kAckExtensionVersion = 1;
inline constexpr std::size_t kNackBitmapBits = 16;
inline constexpr std::size_t kAckBlockBits = 8 + 8 + kNackBitmapBits;
inline constexpr std::size_t kMaxAckBlocks = 255 / kAckBlockBits;  // 7

/// One tag's receive state as announced on the downlink.
struct TagAck {
  std::uint8_t tag_id = 0;
  /// Everything up to and including this sequence has been received
  /// in order (255 == next expected is 0, the initial state).
  std::uint8_t cumulative = 0xFF;
  /// Bit i: sequence cumulative+1+i is missing below the newest
  /// sequence the coordinator has seen from this tag.
  std::uint16_t nack_bitmap = 0;

  bool operator==(const TagAck&) const = default;
};

struct AckExtension {
  std::vector<TagAck> acks;

  bool operator==(const AckExtension&) const = default;
};

/// CRC-8 (poly 0x07, init 0) over a bit span — guards the extension so
/// a corrupted downlink can only cost a round of ACK feedback, never
/// fabricate acknowledgements for frames that were lost.
std::uint8_t CrcExtension(std::span<const Bit> bits);

/// Build the full extended announcement payload: legacy 16-bit prefix,
/// extension header, version-1 ACK body, CRC. At most kMaxAckBlocks
/// blocks are encoded (extras are dropped — callers rotate instead).
BitVector BuildAnnouncementExtended(const mac::RoundAnnouncement& round,
                                    const AckExtension& ext);

struct ExtendedParseResult {
  mac::RoundAnnouncement round;
  /// Present only when a structurally valid, CRC-clean version-1
  /// extension was attached.
  std::optional<AckExtension> ext;
  /// An extension was attached but rejected (unknown version, bad
  /// length, truncated, CRC mismatch). The legacy prefix above is
  /// still good — extension damage must never desync the round MAC.
  bool ext_rejected = false;
};

/// Parse an announcement payload of any provenance: exactly 16 bits is
/// a legacy announcement (no extension), longer payloads are validated
/// as prefix + extension. Returns std::nullopt only when the 16-bit
/// prefix itself is unusable.
std::optional<ExtendedParseResult> ParseAnnouncementExtended(
    const BitVector& payload);

}  // namespace freerider::transport
