#include "transport/arq.h"

#include <algorithm>

namespace freerider::transport {
namespace {

/// True when `seq` is at or before `reference` in serial order, seen
/// from `base` (i.e. both measured as forward distance from base).
bool SeqCoveredBy(std::uint8_t base, std::uint8_t seq, std::uint8_t reference) {
  return SeqDistance(base, seq) <= SeqDistance(base, reference);
}

}  // namespace

const char* RxErrorName(RxError error) {
  switch (error) {
    case RxError::kNone: return "none";
    case RxError::kDuplicate: return "duplicate";
    case RxError::kStaleReplay: return "stale_replay";
    case RxError::kReplayAlias: return "replay_alias";
    case RxError::kBeyondWindow: return "beyond_window";
    case RxError::kDuplicateOoo: return "duplicate_ooo";
  }
  return "?";
}

// ---------------------------------------------------------------- tag

TagTransport::TagTransport(const TransportConfig& config) : config_(config) {
  config_.window = std::min(config_.window, kNackBitmapBits);
  if (config_.window == 0) config_.window = 1;
  if (config_.max_transmissions == 0) config_.max_transmissions = 1;
}

bool TagTransport::Enqueue(std::size_t round) {
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.rejected_full;
    return false;
  }
  Entry entry;
  entry.seq = next_seq_++;
  entry.enqueue_round = round;
  queue_.push_back(entry);
  ++stats_.offered;
  return true;
}

void TagTransport::Expire(std::size_t round) {
  // The give-up policy only ever drops from the window head backwards
  // in sequence order; dropping an arbitrary middle frame would let
  // the window slide over a sequence the coordinator still NACKs.
  // Age/attempt expiry applies wherever the frame sits, though — a
  // frame behind an expired head is usually next to expire anyway.
  for (auto it = queue_.begin(); it != queue_.end();) {
    const bool too_many_tries = it->transmissions >= config_.max_transmissions;
    const bool too_old = round - it->enqueue_round > config_.expiry_rounds;
    if (too_many_tries || too_old) {
      ++stats_.expired;
      if (trace_ != nullptr) {
        trace_->Record(obs::EventKind::kArqExpire,
                       static_cast<std::uint32_t>(round), obs::kNoSlot,
                       wire_id_, it->seq, it->transmissions);
      }
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void TagTransport::OnRoundStart(std::size_t round) { Expire(round); }

std::size_t TagTransport::EscalationSteps(const Entry& entry) const {
  if (config_.escalate_after_nacks == 0) return 0;
  return std::min(entry.nacks / config_.escalate_after_nacks,
                  config_.max_escalation_steps);
}

std::optional<TagTransport::TxDecision> TagTransport::NextFrame(
    std::size_t round) {
  if (queue_.empty()) return std::nullopt;
  const std::uint8_t base = queue_.front().seq;

  Entry* pick = nullptr;
  // 1. NACKed frames — the coordinator told us exactly what is missing.
  for (Entry& e : queue_) {
    if (e.nack_pending) {
      pick = &e;
      break;
    }
  }
  // 2. Fresh frames inside the window.
  if (pick == nullptr) {
    for (Entry& e : queue_) {
      if (SeqDistance(base, e.seq) >= config_.window) break;
      if (e.transmissions == 0) {
        pick = &e;
        break;
      }
    }
  }
  // 3. Tail-loss recovery: oldest unacknowledged frame past the RTO.
  if (pick == nullptr) {
    for (Entry& e : queue_) {
      if (SeqDistance(base, e.seq) >= config_.window) break;
      if (round - e.last_tx_round >= config_.rto_rounds) {
        pick = &e;
        break;
      }
    }
  }
  if (pick == nullptr) return std::nullopt;

  TxDecision decision;
  decision.seq = pick->seq;
  decision.escalation_steps = EscalationSteps(*pick);
  decision.retransmission = pick->transmissions > 0;
  ++pick->transmissions;
  pick->last_tx_round = round;
  pick->nack_pending = false;
  ++stats_.transmissions;
  if (decision.retransmission) ++stats_.retransmissions;
  if (decision.escalation_steps > 0) ++stats_.escalations;
  if (trace_ != nullptr && decision.retransmission) {
    trace_->Record(obs::EventKind::kArqResend,
                   static_cast<std::uint32_t>(round), obs::kNoSlot, wire_id_,
                   decision.seq, pick->transmissions);
  }
  return decision;
}

void TagTransport::OnAck(const TagAck& ack, std::size_t round) {
  (void)round;
  if (queue_.empty()) return;
  const std::uint8_t base = queue_.front().seq;
  const std::uint8_t newest = queue_.back().seq;
  // Serial-number validity: a live ACK's cumulative sits in
  // [base - 1, newest] (base - 1 = "nothing new acknowledged"). All
  // distances are measured from base - 1 so the comparison stays a
  // plain unsigned one even when the 8-bit counter has wrapped between
  // base and newest. Anything outside that range is stale feedback
  // from (at least) a window ago — after wraparound its NACK bits
  // would alias *live* sequences (missing = cumulative + 1 + i lands
  // inside the queue), triggering spurious retransmissions and
  // redundancy escalation, so the whole block must be ignored, not
  // just the cumulative.
  const std::uint8_t anchor = static_cast<std::uint8_t>(base - 1);
  const std::uint8_t span = SeqDistance(anchor, newest);
  const std::uint8_t cum_dist = SeqDistance(anchor, ack.cumulative);
  if (span >= 128 || cum_dist > span) return;
  if (cum_dist > 0) {
    // `cumulative` acknowledges everything at or before it.
    while (!queue_.empty() &&
           SeqCoveredBy(base, queue_.front().seq, ack.cumulative)) {
      queue_.pop_front();
      ++stats_.acked;
    }
  }
  if (queue_.empty()) return;
  // NACK bitmap: explicit resend requests. Each claimed-missing
  // sequence must itself lie within the send window of the (possibly
  // just-advanced) base — bits past the window are aliases of the
  // stale half of the sequence space.
  const std::uint8_t new_base = queue_.front().seq;
  for (std::size_t i = 0; i < kNackBitmapBits; ++i) {
    if ((ack.nack_bitmap >> i) & 1u) {
      const std::uint8_t missing =
          static_cast<std::uint8_t>(ack.cumulative + 1 + i);
      if (SeqDistance(new_base, missing) >= config_.window) continue;
      for (Entry& e : queue_) {
        if (e.seq == missing) {
          if (!e.nack_pending) {
            e.nack_pending = true;
            ++e.nacks;
            ++stats_.nacks;
          }
          break;
        }
      }
    }
  }
}

// -------------------------------------------------------- coordinator

CoordinatorTagRx::CoordinatorTagRx(const TransportConfig& config)
    : config_(config) {
  config_.window = std::min(config_.window, kNackBitmapBits);
  if (config_.window == 0) config_.window = 1;
}

void CoordinatorTagRx::RecordDelivered(std::uint8_t seq) {
  delivered_pos_[seq] = position_++;
  delivered_seen_.set(seq);
}

std::vector<std::uint8_t> CoordinatorTagRx::FlushInOrder() {
  std::vector<std::uint8_t> delivered;
  RecordDelivered(next_expected_);
  delivered.push_back(next_expected_++);
  ++stats_.delivered;
  // The arrival that called us filled the head; drain the buffered run.
  rx_bitmap_ >>= 1;
  while (rx_bitmap_ & 1u) {
    RecordDelivered(next_expected_);
    delivered.push_back(next_expected_++);
    ++stats_.delivered;
    rx_bitmap_ >>= 1;
  }
  blocked_ = rx_bitmap_ != 0;
  return delivered;
}

std::vector<std::uint8_t> CoordinatorTagRx::OnFrame(std::uint8_t seq,
                                                    std::size_t round) {
  last_error_ = RxError::kNone;
  if (resync_pending_) {
    resync_pending_ = false;
    const std::uint8_t gap = SeqDistance(next_expected_, seq);
    if (gap >= config_.window) {
      // The first frame heard after the silence is outside the send
      // window of the old delivery point: the tag has moved on (gave
      // its backlog up and possibly wrapped the 8-bit space), so
      // serial comparison against the stale anchor would misclassify
      // live frames as duplicates. Re-anchor on what we heard. Frames
      // the tag retransmits across the re-anchor may be delivered
      // twice — callers needing exactly-once track positions above
      // the transport (see sim/stress). The replay-guard memory is
      // position-anchored to the old stream, so it is cleared with the
      // anchor: those retransmissions are sanctioned, not replays.
      next_expected_ = seq;
      rx_bitmap_ = 0;
      blocked_ = false;
      delivered_seen_.reset();
      ++stats_.resyncs;
      if (trace_ != nullptr) {
        trace_->Record(obs::EventKind::kResync,
                       static_cast<std::uint32_t>(round), obs::kNoSlot,
                       wire_id_, seq);
      }
    }
    // Inside the window the stream is still continuous: the tag kept
    // its backlog, the old anchor is exactly right, and re-anchoring
    // would flush every older undelivered frame the moment our
    // cumulative ACK caught up with the newer sequence. Fall through
    // to normal processing.
  }
  const std::uint8_t d = SeqDistance(next_expected_, seq);
  if (d >= 128) {
    // Behind the delivery point: a retransmission of something already
    // delivered (or skipped). A *plausible* retransmission trails by
    // at most a window or two (ACK lag, hole-skips); anything deeper
    // is a stale replay and counts as misbehavior evidence.
    ++stats_.duplicates;
    const std::uint8_t behind = SeqDistance(seq, next_expected_);
    if (behind > config_.replay_stale_behind) {
      ++stats_.stale_rejected;
      last_error_ = RxError::kStaleReplay;
      if (trace_ != nullptr) {
        trace_->Record(obs::EventKind::kRxReject,
                       static_cast<std::uint32_t>(round), obs::kNoSlot,
                       wire_id_, seq, static_cast<std::uint64_t>(last_error_));
      }
    } else {
      last_error_ = RxError::kDuplicate;
    }
    return {};
  }
  if (d == 0) {
    auto delivered = FlushInOrder();
    // If a hole remains it is a *different* hole than before the flush
    // (the stream advanced), so its starvation clock starts now.
    if (blocked_) blocked_since_round_ = round;
    return delivered;
  }
  if (d >= config_.window) {
    // The tag must not send past the window; a frame here is corrupt
    // or hostile. Accepting it would let one bogus sequence fast-
    // forward the stream over real data.
    ++stats_.beyond_window;
    last_error_ = RxError::kBeyondWindow;
    if (trace_ != nullptr) {
      trace_->Record(obs::EventKind::kRxReject,
                     static_cast<std::uint32_t>(round), obs::kNoSlot, wire_id_,
                     seq, static_cast<std::uint64_t>(last_error_));
    }
    return {};
  }
  if (config_.replay_guard && delivered_seen_.test(seq) &&
      position_ - delivered_pos_[seq] < 256) {
    // In the forward window, but this exact sequence was delivered
    // less than a full wrap of stream positions ago — a legitimate
    // new instance is impossible by serial arithmetic (the tag would
    // have had to wrap the whole 8-bit space first). This is a replay
    // aliased across the wrap; accepting it would hand the replayed
    // payload to the application as fresh out-of-order data.
    ++stats_.replay_rejected;
    last_error_ = RxError::kReplayAlias;
    if (trace_ != nullptr) {
      trace_->Record(obs::EventKind::kRxReject,
                     static_cast<std::uint32_t>(round), obs::kNoSlot, wire_id_,
                     seq, static_cast<std::uint64_t>(last_error_));
    }
    return {};
  }
  const std::uint32_t bit = std::uint32_t{1} << d;
  if (rx_bitmap_ & bit) {
    ++stats_.duplicates;
    last_error_ = RxError::kDuplicateOoo;
    return {};
  }
  rx_bitmap_ |= bit;
  ++stats_.out_of_order;
  if (!blocked_) {
    blocked_ = true;
    blocked_since_round_ = round;
  }
  return {};
}

std::vector<std::uint8_t> CoordinatorTagRx::OnRoundEnd(
    std::size_t round, std::vector<std::uint8_t>& skipped) {
  std::vector<std::uint8_t> delivered;
  if (!blocked_) return delivered;
  if (round - blocked_since_round_ < config_.hole_skip_rounds) {
    return delivered;
  }
  // The head hole has starved the stream long enough — the tag has
  // almost certainly expired the frame (its give-up policy is the
  // mirror of this timeout). Skip exactly one hole per round so a
  // burst of expiries drains gradually and visibly.
  ++stats_.holes_skipped;
  // A skipped sequence consumes a stream position but is never marked
  // delivered — its late retransmission must classify as a duplicate
  // behind the delivery point, not trip the replay guard.
  ++position_;
  skipped.push_back(next_expected_++);
  rx_bitmap_ >>= 1;
  while (rx_bitmap_ & 1u) {
    RecordDelivered(next_expected_);
    delivered.push_back(next_expected_++);
    ++stats_.delivered;
    rx_bitmap_ >>= 1;
  }
  blocked_ = rx_bitmap_ != 0;
  if (blocked_) blocked_since_round_ = round;
  return delivered;
}

void CoordinatorTagRx::EvictOoo() {
  std::uint32_t bitmap = rx_bitmap_;
  while (bitmap != 0) {
    stats_.ooo_evicted += bitmap & 1u;
    bitmap >>= 1;
  }
  rx_bitmap_ = 0;
  blocked_ = false;
}

void CoordinatorTagRx::BeginResync() { resync_pending_ = true; }

std::size_t CoordinatorTagRx::BufferedOoo() const {
  std::size_t n = 0;
  std::uint32_t bitmap = rx_bitmap_;
  while (bitmap != 0) {
    n += bitmap & 1u;
    bitmap >>= 1;
  }
  return n;
}

TagAck CoordinatorTagRx::Ack(std::uint8_t tag_id) const {
  TagAck ack;
  ack.tag_id = tag_id;
  ack.cumulative = static_cast<std::uint8_t>(next_expected_ - 1);
  // NACK everything below the newest out-of-order arrival that we do
  // not hold. rx_bitmap_ bit j covers next_expected_ + j; the ACK
  // bitmap's bit i covers cumulative + 1 + i = next_expected_ + i.
  std::uint32_t highest = 0;
  for (std::size_t j = 1; j < config_.window; ++j) {
    if ((rx_bitmap_ >> j) & 1u) highest = static_cast<std::uint32_t>(j);
  }
  std::uint16_t nacks = 0;
  for (std::uint32_t i = 0; i < highest; ++i) {
    if (((rx_bitmap_ >> i) & 1u) == 0) {
      nacks |= static_cast<std::uint16_t>(std::uint16_t{1} << i);
    }
  }
  ack.nack_bitmap = nacks;
  return ack;
}

CoordinatorTransport::CoordinatorTransport(std::size_t num_tags,
                                           const TransportConfig& config)
    : config_(config) {
  rx_.reserve(num_tags);
  for (std::size_t i = 0; i < num_tags; ++i) rx_.emplace_back(config);
}

AckExtension CoordinatorTransport::BuildExtension() {
  AckExtension ext;
  if (rx_.empty()) return ext;
  const std::size_t blocks =
      std::min({config_.ack_blocks_per_round, rx_.size(), kMaxAckBlocks});
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::size_t index = (rotation_ + i) % rx_.size();
    ext.acks.push_back(
        rx_[index].Ack(static_cast<std::uint8_t>(index + 1)));
  }
  rotation_ = (rotation_ + blocks) % rx_.size();
  return ext;
}

}  // namespace freerider::transport
