// Reliable tag-data transport: PLM-acknowledged selective-repeat ARQ.
//
// The uplink (tag → coordinator) rides backscattered tag frames that
// now carry an 8-bit transport sequence number; the downlink feedback
// (coordinator → tag) is the ACK extension piggybacked on the round
// announcement (transport/ack.h). Both ends are deliberately tiny
// state machines — the tag side has to be plausible on an AGLN250-class
// FPGA, so there is no clock beyond the MAC round counter and every
// buffer is bounded up front.
//
// Tag side (TagTransport): a bounded queue of frames awaiting
// acknowledgement. Selective repeat: NACKed sequences are resent
// first, then never-sent frames inside the window, then unacknowledged
// frames whose last transmission is older than the retransmit timeout
// (tail-loss recovery — a lost frame at the window edge produces no
// NACK because the coordinator never sees anything newer). Repeated
// NACKs escalate the frame's translation redundancy up PR 1's ladder
// (each step doubles codewords per tag bit), trading rate for
// reliability exactly like the link-level rate controller. A frame
// that exhausts max_transmissions or outlives expiry_rounds is dropped
// (give-up policy): a dead link must never wedge the queue.
//
// Coordinator side (CoordinatorTransport): per-tag receive state —
// next expected sequence, a window bitmap of out-of-order arrivals,
// duplicate rejection, and in-order delivery to the application. A
// hole that persists hole_skip_rounds (the receiver's mirror of the
// tag's give-up) is skipped so one expired frame cannot dam the
// stream forever; skips are reported, never silent.
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "transport/ack.h"

namespace freerider::transport {

struct TransportConfig {
  /// Off by default: every consumer of the multitag simulator keeps
  /// bit-for-bit legacy behaviour unless it opts in.
  bool enabled = false;
  /// Selective-repeat window (frames in flight past the first
  /// unacknowledged one). Capped by the NACK bitmap span.
  std::size_t window = kNackBitmapBits;
  /// Bound on queued + in-flight frames at the tag.
  std::size_t queue_capacity = 64;
  /// Give-up: drop a frame after this many transmissions...
  std::size_t max_transmissions = 10;
  /// ...or once it has aged this many rounds since enqueue.
  std::size_t expiry_rounds = 128;
  /// Resend an unacknowledged frame after this many rounds without
  /// feedback (tail-loss recovery).
  std::size_t rto_rounds = 3;
  /// Escalate translation redundancy one ladder step (×2) per this
  /// many NACKs of the same frame.
  std::size_t escalate_after_nacks = 2;
  /// Ladder steps above the base redundancy a frame may climb.
  std::size_t max_escalation_steps = 2;
  /// ACK blocks the coordinator piggybacks per announcement (rotated
  /// round-robin over tags; capped at kMaxAckBlocks).
  std::size_t ack_blocks_per_round = 4;
  /// Receiver-side give-up: skip a missing sequence after the stream
  /// has been blocked on it this many rounds.
  std::size_t hole_skip_rounds = 64;
  /// Replay protection: reject an in-window arrival whose sequence was
  /// already delivered fewer than 256 stream positions ago. Exact by
  /// serial arithmetic — a legitimate new instance of the same 8-bit
  /// sequence requires a full wrap of the space — so it costs honest
  /// tags nothing and closes the across-the-wrap forward alias a
  /// replaying rogue can reach. The memory is cleared on a stream
  /// resync (the re-anchor makes old positions meaningless and the tag
  /// may legally retransmit across it).
  bool replay_guard = true;
  /// Classification threshold for behind-the-delivery-point arrivals:
  /// deeper than this many sequences behind is a *stale replay*
  /// (misbehavior evidence), not a plausible retransmission. Honest
  /// retries trail the delivery point by at most a window or two even
  /// through hole-skips.
  std::size_t replay_stale_behind = 64;
};

/// Receive-path error taxonomy: every frame the coordinator does not
/// deliver is classified, counted and surfaced — malformed or hostile
/// input never crashes the receive path and is never silently dropped.
enum class RxError : std::uint8_t {
  kNone = 0,        ///< Frame delivered (or buffered) normally.
  kDuplicate,       ///< Behind the delivery point: plausible retransmit.
  kStaleReplay,     ///< Deep behind the delivery point: replayed frame.
  kReplayAlias,     ///< In-window but delivered <256 positions ago —
                    ///< a replay aliased across the 8-bit wrap.
  kBeyondWindow,    ///< Ahead of the receive window: corrupt or hostile.
  kDuplicateOoo,    ///< Already buffered out-of-order: retransmit race.
};

const char* RxErrorName(RxError error);

/// Serial (mod-256) sequence comparison: distance from `from` to `to`
/// going forward.
inline std::uint8_t SeqDistance(std::uint8_t from, std::uint8_t to) {
  return static_cast<std::uint8_t>(to - from);
}

// ---------------------------------------------------------------- tag

struct TagTxStats {
  std::size_t offered = 0;          ///< Frames accepted into the queue.
  std::size_t rejected_full = 0;    ///< Enqueue refused, queue at capacity.
  std::size_t transmissions = 0;    ///< Frames sent, first tries included.
  std::size_t retransmissions = 0;  ///< Second and later tries.
  std::size_t acked = 0;            ///< Frames cumulatively acknowledged.
  std::size_t nacks = 0;            ///< NACK bits received for live frames.
  std::size_t expired = 0;          ///< Frames dropped by the give-up policy.
  std::size_t escalations = 0;      ///< Transmissions sent above base N.
};

class TagTransport {
 public:
  explicit TagTransport(const TransportConfig& config);

  /// Hand a frame to the transport. False (and no sequence consumed)
  /// when the bounded queue is full.
  bool Enqueue(std::size_t round);

  struct TxDecision {
    std::uint8_t seq = 0;
    /// Redundancy ladder steps above base for this transmission.
    std::size_t escalation_steps = 0;
    bool retransmission = false;
  };

  /// Pick the frame to backscatter this slot, selective-repeat order.
  /// std::nullopt when nothing is pending inside the window. Marks the
  /// transmission (call at most once per slot actually used).
  std::optional<TxDecision> NextFrame(std::size_t round);

  /// Apply ACK feedback heard on the announcement downlink.
  void OnAck(const TagAck& ack, std::size_t round);

  /// Per-round housekeeping: age-based expiry.
  void OnRoundStart(std::size_t round);

  bool HasPending() const { return !queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint8_t next_seq() const { return next_seq_; }
  const TagTxStats& stats() const { return stats_; }

  /// Flight-recorder sink (optional, non-owning). Resends and give-up
  /// expiries are recorded under `wire_id` in virtual round time; a
  /// null ring disables recording with zero behavior change.
  void set_trace(obs::TraceRing* trace, std::uint8_t wire_id) {
    trace_ = trace;
    wire_id_ = wire_id;
  }

 private:
  struct Entry {
    std::uint8_t seq = 0;
    std::size_t transmissions = 0;
    std::size_t last_tx_round = 0;
    std::size_t enqueue_round = 0;
    std::size_t nacks = 0;
    bool nack_pending = false;
  };

  void Expire(std::size_t round);
  std::size_t EscalationSteps(const Entry& entry) const;

  TransportConfig config_;
  std::deque<Entry> queue_;  ///< Ordered by sequence, front = oldest.
  std::uint8_t next_seq_ = 0;
  TagTxStats stats_;
  obs::TraceRing* trace_ = nullptr;
  std::uint8_t wire_id_ = 0;
};

// -------------------------------------------------------- coordinator

struct TagRxStats {
  std::size_t delivered = 0;        ///< In-order deliveries to the app.
  std::size_t duplicates = 0;       ///< CRC-valid frames seen twice.
  std::size_t out_of_order = 0;     ///< Buffered past a hole.
  std::size_t holes_skipped = 0;    ///< Sequences given up on.
  std::size_t beyond_window = 0;    ///< Frames outside the rx window.
  std::size_t ooo_evicted = 0;      ///< Buffered frames dropped by eviction.
  std::size_t resyncs = 0;          ///< Stream re-anchors after silence.
  std::size_t replay_rejected = 0;  ///< Forward-aliased replays refused.
  std::size_t stale_rejected = 0;   ///< Deep-stale replays among duplicates.
};

/// Per-tag receive state at the coordinator.
class CoordinatorTagRx {
 public:
  explicit CoordinatorTagRx(const TransportConfig& config);

  /// Process one CRC-valid uplink frame. Returns the sequences flushed
  /// to the application, in delivery order.
  std::vector<std::uint8_t> OnFrame(std::uint8_t seq, std::size_t round);

  /// End-of-round tick: may skip a hole that has blocked the stream
  /// too long. Skipped sequences go to `skipped`; any buffered run
  /// behind the hole is returned as deliveries.
  std::vector<std::uint8_t> OnRoundEnd(std::size_t round,
                                       std::vector<std::uint8_t>& skipped);

  /// Snapshot for the announcement extension.
  TagAck Ack(std::uint8_t tag_id) const;

  /// Drop every buffered out-of-order frame and clear the hole clock.
  /// The link supervisor calls this on the quarantine transition: a
  /// tag that went silent mid-frame must not pin its reassembly buffer
  /// (and the coordinator's NACK state) forever.
  void EvictOoo();

  /// Re-anchor the stream: the next CRC-valid frame heard becomes the
  /// new delivery point regardless of the old next_expected_. Used
  /// when a tag returns from quarantine/blackout — after a long
  /// silence the serial-number comparison window is meaningless, and
  /// without a resync every resumed frame would land in the "behind
  /// the delivery point" half and be dropped as a duplicate forever.
  void BeginResync();

  bool resync_pending() const { return resync_pending_; }
  /// Out-of-order frames currently buffered (open NACK holes ahead of
  /// the delivery point feed the supervisor's retransmit-pressure
  /// estimator).
  std::size_t BufferedOoo() const;

  const TagRxStats& stats() const { return stats_; }
  std::uint8_t next_expected() const { return next_expected_; }

  /// Flight-recorder sink (optional, non-owning). Records rejected
  /// receptions (replay/stale/beyond-window) and stream re-anchors.
  void set_trace(obs::TraceRing* trace, std::uint8_t wire_id) {
    trace_ = trace;
    wire_id_ = wire_id;
  }
  /// Classification of the last OnFrame call (kNone = delivered or
  /// buffered). The taxonomy feeds the MAC police's evidence stream.
  RxError last_error() const { return last_error_; }

  /// What OnFrame *would* classify this sequence as, without mutating
  /// any receive state (kNone = it would deliver, buffer, or sanction
  /// a pending resync re-anchor). Used for frames that are heard but
  /// embargoed from the stream — a misbehavior-quarantined tag's probe
  /// answers must still be classified so a stale or beyond-window
  /// answer keeps incriminating it, while the untouched stream state
  /// keeps an honestly-rehabilitating tag's classification identical
  /// to what delivery would have seen.
  RxError Classify(std::uint8_t seq) const {
    if (resync_pending_ && SeqDistance(next_expected_, seq) >= config_.window) {
      return RxError::kNone;  // would re-anchor: sanctioned
    }
    const std::uint8_t d = SeqDistance(next_expected_, seq);
    if (d >= 128) {
      return SeqDistance(seq, next_expected_) > config_.replay_stale_behind
                 ? RxError::kStaleReplay
                 : RxError::kDuplicate;
    }
    if (d == 0) return RxError::kNone;
    if (d >= config_.window) return RxError::kBeyondWindow;
    if (config_.replay_guard && delivered_seen_.test(seq) &&
        position_ - delivered_pos_[seq] < 256) {
      return RxError::kReplayAlias;
    }
    if ((rx_bitmap_ & (std::uint32_t{1} << d)) != 0) {
      return RxError::kDuplicateOoo;
    }
    return RxError::kNone;
  }

 private:
  std::vector<std::uint8_t> FlushInOrder();
  void RecordDelivered(std::uint8_t seq);

  TransportConfig config_;
  std::uint8_t next_expected_ = 0;
  /// Bit j: sequence next_expected_ + j received out of order
  /// (bit 0 is always clear — that arrival would have advanced).
  std::uint32_t rx_bitmap_ = 0;
  std::size_t blocked_since_round_ = 0;
  bool blocked_ = false;
  bool resync_pending_ = false;
  RxError last_error_ = RxError::kNone;
  /// Replay-guard memory: the stream position at which each 8-bit
  /// sequence was last delivered. Positions are 64-bit so they never
  /// alias; the guard compares against a full wrap (256 positions).
  std::uint64_t position_ = 0;
  std::array<std::uint64_t, 256> delivered_pos_{};
  std::bitset<256> delivered_seen_;
  TagRxStats stats_;
  obs::TraceRing* trace_ = nullptr;
  std::uint8_t wire_id_ = 0;
};

/// All tags' receive state plus the round-robin ACK block scheduler.
class CoordinatorTransport {
 public:
  CoordinatorTransport(std::size_t num_tags, const TransportConfig& config);

  /// Tag ids are 1-based on the air (0 is reserved); out-of-range ids
  /// are rejected by the caller before reaching here.
  CoordinatorTagRx& rx(std::size_t tag_index) { return rx_[tag_index]; }
  const CoordinatorTagRx& rx(std::size_t tag_index) const {
    return rx_[tag_index];
  }
  std::size_t num_tags() const { return rx_.size(); }

  /// ACK blocks for the next announcement: up to ack_blocks_per_round
  /// tags, rotating so every tag is covered every ⌈N/blocks⌉ rounds.
  AckExtension BuildExtension();

 private:
  TransportConfig config_;
  std::vector<CoordinatorTagRx> rx_;
  std::size_t rotation_ = 0;
};

}  // namespace freerider::transport
