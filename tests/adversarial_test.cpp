// Adversarial soak harness (sim/adversarial): end-to-end Byzantine
// campaigns through the full-PHY stack. These are deliberately small
// casts (2-3 tags, ~100 rounds) so the suite stays fast; the bench
// carries the full 6-tag three-seed matrix. What must hold here:
// defended campaigns quarantine the rogue within the derived bound and
// keep it parked, the defense A/B gap is real (defenses are
// load-bearing, not decorative), the replayer never lands a stale
// delivery, and the result is deterministic and snapshot-exact.
#include <gtest/gtest.h>

#include <string>

#include "sim/adversarial.h"

namespace {

using namespace freerider;
using sim::AdversarialConfig;
using sim::AdversarialResult;
using sim::DeserializeAdversarialResult;
using sim::RunAdversarial;
using sim::SerializeAdversarialResult;

AdversarialConfig SmallCampaign(std::size_t num_tags, std::size_t rounds,
                                std::size_t drain) {
  AdversarialConfig config;
  config.seed = 99;
  config.num_tags = num_tags;
  config.rounds = rounds;
  config.drain_rounds = drain;
  config.offer_every = 2;
  config.transport.max_transmissions = 16;
  config.transport.expiry_rounds = 1000000;
  config.transport.queue_capacity = 24;
  config.transport.rto_rounds = 3;
  config.transport.max_escalation_steps = 1;
  config.transport.hole_skip_rounds = 96;
  config.rogue.seed = 0x5EED;
  config.rogue.tags.resize(num_tags);
  return config;
}

TEST(AdversarialCampaignTest, BabblerContainedAndDefensesAreLoadBearing) {
  AdversarialConfig config = SmallCampaign(3, 100, 40);
  config.rogue.tags[2].model = impair::RogueModel::kBabbler;

  config.defenses_on = true;
  const AdversarialResult on = RunAdversarial(config);
  EXPECT_TRUE(on.passed);
  EXPECT_EQ(on.violations_total, 0u);
  ASSERT_EQ(on.audits.size(), 1u);
  EXPECT_EQ(on.audits[0].tag, 2u);
  EXPECT_EQ(on.audits[0].wire_id, 3u);
  EXPECT_TRUE(on.audits[0].via_misbehavior);
  EXPECT_TRUE(on.audits[0].quarantined);
  EXPECT_TRUE(on.audits[0].bound_met);
  EXPECT_TRUE(on.audits[0].parked_at_end);
  EXPECT_LE(on.audits[0].quarantine_round + 1, on.audits[0].bound);
  EXPECT_GE(on.misbehavior_quarantines, 1u);
  EXPECT_GT(on.rogue_extra_frames, 0u);
  EXPECT_GT(on.police_evidence, 0u);
  // A flagrant babbler fires every slot; with it parked early the two
  // victims should deliver essentially everything they offer.
  EXPECT_GT(on.victim_delivery, 0.9);

  config.defenses_on = false;
  const AdversarialResult off = RunAdversarial(config);
  EXPECT_TRUE(off.audits.empty());  // nothing to audit without defenses
  EXPECT_EQ(off.misbehavior_quarantines, 0u);
  // Load-bearing check: with no police the babbler collides every
  // slot, the victims look silent and collapse. The exact floor varies
  // with the cast; the gap is what the defense claims.
  EXPECT_GT(on.victim_delivery, off.victim_delivery + 0.2);
}

TEST(AdversarialCampaignTest, ReplayerIsEmbargoedAndNeverDelivers) {
  AdversarialConfig config = SmallCampaign(2, 100, 30);
  config.rogue.tags[1].model = impair::RogueModel::kReplayer;
  config.defenses_on = true;

  const AdversarialResult result = RunAdversarial(config);
  // The contract the captured-window replayer must hit: quarantined in
  // bound, held parked by embargo re-incrimination across every probe
  // cycle, and not one of its stale frames delivered (any delivery on
  // the replayer's id is recorded as a "stale_delivery" violation).
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(result.violations_total, 0u);
  ASSERT_EQ(result.audits.size(), 1u);
  EXPECT_TRUE(result.audits[0].quarantined);
  EXPECT_TRUE(result.audits[0].bound_met);
  EXPECT_TRUE(result.audits[0].parked_at_end);
  EXPECT_GE(result.misbehavior_quarantines, 1u);
  // The honest victim rides along undisturbed: the replayer only
  // pollutes its own identity.
  EXPECT_GT(result.victim_delivery, 0.9);
}

TEST(AdversarialCampaignTest, DeterministicDigestAndSnapshotRoundTrip) {
  AdversarialConfig config = SmallCampaign(2, 60, 20);
  config.rogue.tags[1].model = impair::RogueModel::kSlotThief;
  config.defenses_on = true;

  const AdversarialResult a = RunAdversarial(config);
  const AdversarialResult b = RunAdversarial(config);
  ASSERT_FALSE(a.digest.empty());
  EXPECT_EQ(a.digest, b.digest);

  const std::string payload = SerializeAdversarialResult(a);
  AdversarialResult restored;
  ASSERT_TRUE(DeserializeAdversarialResult(payload, &restored));
  EXPECT_EQ(restored.digest, a.digest);
  EXPECT_EQ(restored.passed, a.passed);
  EXPECT_EQ(restored.victim_offered, a.victim_offered);
  EXPECT_EQ(restored.victim_delivered, a.victim_delivered);
  EXPECT_EQ(restored.violations_total, a.violations_total);
  ASSERT_EQ(restored.audits.size(), a.audits.size());
  for (std::size_t i = 0; i < a.audits.size(); ++i) {
    EXPECT_EQ(restored.audits[i].wire_id, a.audits[i].wire_id);
    EXPECT_EQ(restored.audits[i].model, a.audits[i].model);
    EXPECT_EQ(restored.audits[i].quarantined, a.audits[i].quarantined);
    EXPECT_EQ(restored.audits[i].quarantine_round,
              a.audits[i].quarantine_round);
  }

  AdversarialResult reject;
  EXPECT_FALSE(DeserializeAdversarialResult("", &reject));
  EXPECT_FALSE(DeserializeAdversarialResult("garbage", &reject));
  std::string truncated = payload.substr(0, payload.size() / 2);
  EXPECT_FALSE(DeserializeAdversarialResult(truncated, &reject));
}

}  // namespace
