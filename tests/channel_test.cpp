#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "channel/deployment.h"
#include "channel/link_budget.h"
#include "common/rng.h"
#include "common/units.h"
#include "dsp/signal_ops.h"

namespace freerider::channel {
namespace {

TEST(PathLoss, MonotoneInDistance) {
  const PathLossModel m = LosModel();
  double prev = m.LossDb(0.5);
  for (double d = 1.0; d < 50.0; d += 1.0) {
    const double loss = m.LossDb(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, ReferenceLossAtOneMeter) {
  const PathLossModel m = LosModel();
  EXPECT_NEAR(m.LossDb(1.0), m.reference_loss_db, 1e-9);
}

TEST(PathLoss, TenXDistanceAddsTenNdb) {
  const PathLossModel m = LosModel();
  EXPECT_NEAR(m.LossDb(10.0) - m.LossDb(1.0), 10.0 * m.exponent, 1e-9);
}

TEST(PathLoss, WallsAddLoss) {
  const PathLossModel m = NlosModel();
  EXPECT_NEAR(m.LossDb(5.0, 2) - m.LossDb(5.0, 0), 2.0 * m.wall_loss_db, 1e-9);
}

TEST(PathLoss, ClampsNearField) {
  const PathLossModel m = LosModel();
  EXPECT_DOUBLE_EQ(m.LossDb(0.0), m.LossDb(0.05));
}

TEST(LinkBudget, BackscatterWeakerThanDirect) {
  BackscatterBudget b;
  b.path = LosModel();
  // A backscatter path TX-1m-tag-10m-RX must be far weaker than a
  // direct 11 m link.
  EXPECT_LT(b.ReceivedDbm(1.0, 10.0), b.DirectDbm(11.0));
}

TEST(LinkBudget, MonotoneInBothSegments) {
  BackscatterBudget b;
  b.path = LosModel();
  EXPECT_GT(b.ReceivedDbm(1.0, 5.0), b.ReceivedDbm(1.0, 10.0));
  EXPECT_GT(b.ReceivedDbm(1.0, 5.0), b.ReceivedDbm(2.0, 5.0));
}

TEST(LinkBudget, SidebandLossToggle) {
  BackscatterBudget b;
  b.path = LosModel();
  const double with = b.ReceivedDbm(1.0, 5.0, 0, 0, true);
  const double without = b.ReceivedDbm(1.0, 5.0, 0, 0, false);
  EXPECT_NEAR(without - with, b.sideband_conversion_loss_db, 1e-9);
}

TEST(LinkBudget, NoiseFloor20MHz) {
  // -174 + 73 + NF(4) = -97 dBm.
  EXPECT_NEAR(NoiseFloorDbm(20e6, 4.0), -96.99, 0.05);
}

TEST(LinkBudget, NoiseFloorNarrowbandLower) {
  EXPECT_LT(NoiseFloorDbm(1e6, 4.0), NoiseFloorDbm(20e6, 4.0));
}

TEST(Awgn, ToAbsolutePowerScalesCorrectly) {
  IqBuffer x(1000, Cplx{3.0, 4.0});
  const IqBuffer y = ToAbsolutePower(x, -40.0);
  EXPECT_NEAR(dsp::PowerDbm(y), -40.0, 1e-6);
}

TEST(Awgn, NoiseFloorPowerMatchesConfig) {
  Rng rng(55);
  ReceiverFrontEnd fe;
  fe.sample_rate_hz = 20e6;
  fe.noise_figure_db = 4.0;
  IqBuffer silence(20000, Cplx{0.0, 0.0});
  const IqBuffer noisy = AddThermalNoise(silence, fe, rng);
  EXPECT_NEAR(dsp::PowerDbm(noisy), fe.NoiseFloorDbm(), 0.2);
}

TEST(Awgn, SnrMatchesAppliedLink) {
  Rng rng(56);
  ReceiverFrontEnd fe;
  fe.sample_rate_hz = 20e6;
  fe.noise_figure_db = 4.0;
  const double rx_dbm = -80.0;
  IqBuffer tone(20000, Cplx{1.0, 0.0});
  const IqBuffer rx = ApplyLink(tone, rx_dbm, fe, rng);
  const double measured_dbm = dsp::PowerDbm(rx);
  const double expected_total =
      WattsToDbm(DbmToWatts(rx_dbm) + fe.NoiseFloorWatts());
  EXPECT_NEAR(measured_dbm, expected_total, 0.3);
  EXPECT_NEAR(SnrDb(rx_dbm, fe), rx_dbm - fe.NoiseFloorDbm(), 1e-9);
}

TEST(Awgn, CfoRotatesSignal) {
  Rng rng(57);
  ReceiverFrontEnd fe;
  fe.sample_rate_hz = 20e6;
  fe.noise_figure_db = 4.0;
  fe.cfo_hz = 1e6;
  IqBuffer tone(64, Cplx{1.0, 0.0});
  // With a strong signal, the phase should advance by 2π·cfo/fs per
  // sample.
  const IqBuffer rx = ApplyLink(tone, 0.0, fe, rng);
  const double dphi = std::arg(rx[20] * std::conj(rx[19]));
  EXPECT_NEAR(dphi, kTwoPi * 1e6 / 20e6, 0.05);
}

TEST(Deployment, LosHasNoWalls) {
  const Deployment d = LosDeployment();
  EXPECT_EQ(d.WallsTagToRx(5.0), 0);
  EXPECT_EQ(d.WallsTagToRx(40.0), 0);
}

TEST(Deployment, NlosAddsSecondWallBeyond22m) {
  const Deployment d = NlosDeployment();
  EXPECT_EQ(d.WallsTagToRx(10.0), 1);
  EXPECT_EQ(d.WallsTagToRx(22.0), 1);
  EXPECT_EQ(d.WallsTagToRx(23.0), 2);
}

TEST(Deployment, PathModelsDiffer) {
  EXPECT_LT(LosDeployment().path_model().exponent,
            NlosDeployment().path_model().exponent);
}

}  // namespace
}  // namespace freerider::channel
