// Tests for the preemption-safe campaign runtime: the CRC-framed
// checkpoint codec (round-trip, truncation/bit-flip salvage, duplicate
// frames), the atomic file writer, the byte-exact payload helpers, and
// the RecoveryRunner's resume / retry / quarantine / watchdog /
// cancellation-accounting behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/checkpoint.h"
#include "runtime/executor.h"
#include "runtime/recovery.h"

namespace freerider::runtime {
namespace {

CheckpointHeader MakeHeader(std::uint64_t campaign, std::uint64_t points,
                            std::uint64_t trials) {
  CheckpointHeader h;
  h.campaign = campaign;
  h.points = points;
  h.trials = trials;
  return h;
}

std::vector<TaskRecord> SampleRecords() {
  std::vector<TaskRecord> records;
  records.push_back({0, TaskState::kDone, "alpha payload"});
  records.push_back({3, TaskState::kQuarantined, ""});
  records.push_back({5, TaskState::kDone, std::string("bin\0ary\xff", 8)});
  return records;
}

// A scratch file under the build tree's CWD; removed on destruction.
struct ScratchFile {
  explicit ScratchFile(const char* name) : path(name) {}
  ~ScratchFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

// ------------------------------------------------------------- codec

TEST(CampaignIdTest, StableAndDiscriminating) {
  const std::uint64_t a = CampaignId("fig10_wifi_los", 42);
  EXPECT_EQ(a, CampaignId("fig10_wifi_los", 42));
  EXPECT_NE(a, CampaignId("fig10_wifi_los", 43));
  EXPECT_NE(a, CampaignId("fig11_wifi_nlos", 42));
  EXPECT_NE(CampaignId("", 0), 0u);
}

TEST(CheckpointCodec, RoundTripsHeaderAndRecords) {
  const auto header = MakeHeader(0xDEADBEEF, 4, 2);
  const auto records = SampleRecords();
  const std::string bytes = EncodeCheckpoint(header, records);

  const CheckpointDecodeResult decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_FALSE(decoded.salvaged);
  EXPECT_EQ(decoded.dropped_bytes, 0u);
  EXPECT_EQ(decoded.header.campaign, header.campaign);
  EXPECT_EQ(decoded.header.points, 4u);
  EXPECT_EQ(decoded.header.trials, 2u);
  ASSERT_EQ(decoded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.records[i].index, records[i].index);
    EXPECT_EQ(decoded.records[i].state, records[i].state);
    EXPECT_EQ(decoded.records[i].payload, records[i].payload);
  }
}

TEST(CheckpointCodec, EmptyAndGarbageInputsAreRejectedNotCrashed) {
  EXPECT_FALSE(DecodeCheckpoint("").ok);
  EXPECT_FALSE(DecodeCheckpoint("short").ok);
  EXPECT_FALSE(DecodeCheckpoint(std::string(64, '\xAB')).ok);
  const CheckpointDecodeResult r = DecodeCheckpoint(std::string(1024, '\0'));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(CheckpointCodec, TruncationAtEveryByteSalvagesAValidPrefix) {
  const auto records = SampleRecords();
  const std::string bytes =
      EncodeCheckpoint(MakeHeader(7, 4, 2), records);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const CheckpointDecodeResult r = DecodeCheckpoint(bytes.substr(0, cut));
    if (!r.ok) continue;  // header itself truncated
    // Whatever survived must be a prefix of the real records, intact.
    ASSERT_LE(r.records.size(), records.size());
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i].index, records[i].index);
      EXPECT_EQ(r.records[i].payload, records[i].payload);
    }
    // A cut on an exact frame boundary leaves a validly-terminated
    // shorter file (nothing dropped); any other cut is salvage and
    // reports exactly the dangling-byte count it discarded.
    EXPECT_EQ(r.salvaged, r.dropped_bytes > 0);
    std::size_t consumed = 4 + 32 + 4;  // header frame
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      consumed += 4 + (8 + 1 + r.records[i].payload.size()) + 4;
    }
    EXPECT_EQ(r.dropped_bytes, cut - consumed) << "cut=" << cut;
  }
}

TEST(CheckpointCodec, BitFlipsNeverCrashAndDecodeDeterministically) {
  const std::string bytes =
      EncodeCheckpoint(MakeHeader(7, 4, 2), SampleRecords());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::string corrupt = bytes;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
    const CheckpointDecodeResult first = DecodeCheckpoint(corrupt);
    const CheckpointDecodeResult second = DecodeCheckpoint(corrupt);
    // Determinism: the same bytes always decode identically.
    EXPECT_EQ(first.ok, second.ok);
    EXPECT_EQ(first.records.size(), second.records.size());
    EXPECT_EQ(first.dropped_bytes, second.dropped_bytes);
    // A flip is either caught by a CRC (salvage/reject) or it landed
    // in bytes the decoder ignores — it must never invent records.
    if (first.ok) {
      EXPECT_LE(first.records.size(), 3u);
    }
  }
}

TEST(CheckpointCodec, DuplicateFramesFirstWins) {
  std::vector<TaskRecord> records;
  records.push_back({1, TaskState::kDone, "first"});
  records.push_back({1, TaskState::kDone, "second"});
  records.push_back({2, TaskState::kDone, "other"});
  const CheckpointDecodeResult r =
      DecodeCheckpoint(EncodeCheckpoint(MakeHeader(1, 4, 1), records));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.duplicates, 1u);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].payload, "first");
  EXPECT_EQ(r.records[1].payload, "other");
}

TEST(CheckpointCodec, OutOfRangeIndexStopsSalvage) {
  std::vector<TaskRecord> records;
  records.push_back({0, TaskState::kDone, "good"});
  records.push_back({99, TaskState::kDone, "beyond the 4x1 grid"});
  records.push_back({1, TaskState::kDone, "after the corruption"});
  const CheckpointDecodeResult r =
      DecodeCheckpoint(EncodeCheckpoint(MakeHeader(1, 4, 1), records));
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.salvaged);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, "good");
  EXPECT_GT(r.dropped_bytes, 0u);
}

TEST(CheckpointCodec, WrongVersionAndAbsurdGridAreRejected) {
  CheckpointHeader h = MakeHeader(1, 4, 1);
  h.version = kCheckpointVersion + 1;
  EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(h, {})).ok);
  EXPECT_FALSE(
      DecodeCheckpoint(EncodeCheckpoint(MakeHeader(1, 1ull << 40, 1), {})).ok);
}

// ----------------------------------------------------------- payload

TEST(PayloadCodec, RoundTripsIntegersDoublesAndStrings) {
  PayloadWriter w;
  w.U64(0);
  w.U64(~0ull);
  w.F64(0.0);
  w.F64(-0.0);
  w.F64(1.0 / 3.0);
  w.F64(-1.7976931348623157e308);
  w.F64(5e-324);  // smallest denormal
  w.Str("");
  w.Str("with spaces and 7:colons");
  w.Str(std::string("\x00\xff\n", 3));
  const std::string payload = w.Take();

  PayloadReader r(payload);
  std::uint64_t u = 1;
  EXPECT_TRUE(r.U64(&u));
  EXPECT_EQ(u, 0u);
  EXPECT_TRUE(r.U64(&u));
  EXPECT_EQ(u, ~0ull);
  double d = 0.0;
  EXPECT_TRUE(r.F64(&d));
  EXPECT_EQ(d, 0.0);
  EXPECT_FALSE(std::signbit(d));
  EXPECT_TRUE(r.F64(&d));
  EXPECT_TRUE(std::signbit(d));
  EXPECT_TRUE(r.F64(&d));
  EXPECT_EQ(d, 1.0 / 3.0);  // bit-exact via %a
  EXPECT_TRUE(r.F64(&d));
  EXPECT_EQ(d, -1.7976931348623157e308);
  EXPECT_TRUE(r.F64(&d));
  EXPECT_EQ(d, 5e-324);
  std::string s;
  EXPECT_TRUE(r.Str(&s));
  EXPECT_EQ(s, "");
  EXPECT_TRUE(r.Str(&s));
  EXPECT_EQ(s, "with spaces and 7:colons");
  EXPECT_TRUE(r.Str(&s));
  EXPECT_EQ(s, std::string("\x00\xff\n", 3));
  EXPECT_TRUE(r.AtEnd());
}

TEST(PayloadCodec, RejectsMalformedFields) {
  std::uint64_t u = 0;
  double d = 0.0;
  std::string s;
  EXPECT_FALSE(PayloadReader("").U64(&u));
  EXPECT_FALSE(PayloadReader("12").U64(&u));        // no terminator
  EXPECT_FALSE(PayloadReader("12x ").U64(&u));      // trailing junk
  EXPECT_FALSE(PayloadReader("nope ").F64(&d));
  EXPECT_FALSE(PayloadReader("5:ab ").Str(&s));     // length beyond data
  EXPECT_FALSE(PayloadReader("2:abX").Str(&s));     // missing terminator
  PayloadReader r("3 ");
  EXPECT_TRUE(r.U64(&u));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.U64(&u));  // past the end
}

// --------------------------------------------------------- file I/O

TEST(AtomicFile, WriteReadRoundTripAndOverwrite) {
  ScratchFile f("checkpoint_test_atomic.bin");
  const std::string payload("first\0version\xff", 14);
  ASSERT_TRUE(WriteFileAtomic(f.path, payload));
  std::string read_back;
  ASSERT_TRUE(ReadFileBytes(f.path, &read_back));
  EXPECT_EQ(read_back, payload);
  ASSERT_TRUE(WriteFileAtomic(f.path, "second"));
  ASSERT_TRUE(ReadFileBytes(f.path, &read_back));
  EXPECT_EQ(read_back, "second");
}

TEST(AtomicFile, FailureReportsErrorAndLeavesNoTemp) {
  std::string error;
  EXPECT_FALSE(WriteFileAtomic("/nonexistent-dir-xyz/file.ckpt", "x", &error));
  EXPECT_FALSE(error.empty());
  std::string bytes;
  EXPECT_FALSE(ReadFileBytes("/nonexistent-dir-xyz/file.ckpt", &bytes));
}

// ---------------------------------------------------- RecoveryRunner

RobustTaskResult U64Result(std::uint64_t v) {
  PayloadWriter w;
  w.U64(v);
  return {true, w.Take()};
}

TEST(RecoveryRunner, FreshRunCompletesWithHonestAccounting) {
  ScratchFile f("checkpoint_test_fresh.ckpt");
  Executor executor(4);
  RobustSweepOptions options;
  options.checkpoint_path = f.path;
  options.checkpoint_every = 1;
  options.campaign = CampaignId("fresh", 1);
  RecoveryRunner runner(executor, options);
  const RobustSweepReport report = runner.Run(
      {5, 3}, [](std::size_t p, std::size_t t) { return U64Result(p * 10 + t); },
      [](std::size_t, std::size_t, const std::string&) { return true; });
  EXPECT_EQ(report.tasks_total, 15u);
  EXPECT_EQ(report.tasks_ok, 15u);
  EXPECT_EQ(report.tasks_restored, 0u);
  EXPECT_EQ(report.tasks_quarantined, 0u);
  EXPECT_EQ(report.tasks_drained, 0u);
  EXPECT_FALSE(report.cancelled);
  EXPECT_GT(report.snapshots_written, 0u);
  EXPECT_EQ(report.tasks_ok + report.tasks_restored +
                report.tasks_quarantined + report.tasks_drained,
            report.tasks_total);

  // The final checkpoint holds every task with its payload.
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(f.path, &bytes));
  const CheckpointDecodeResult decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok);
  EXPECT_FALSE(decoded.salvaged);
  EXPECT_EQ(decoded.records.size(), 15u);
}

TEST(RecoveryRunner, ResumeSkipsCompletedTasksAndReplaysInGridOrder) {
  ScratchFile f("checkpoint_test_resume.ckpt");
  const std::uint64_t campaign = CampaignId("resume", 9);
  // Pre-bake a checkpoint holding tasks 0, 2 and 5 of a 4x2 grid.
  std::vector<TaskRecord> records;
  for (const std::uint64_t i : {0ull, 2ull, 5ull}) {
    PayloadWriter w;
    w.U64(i * 100);
    records.push_back({i, TaskState::kDone, w.Take()});
  }
  ASSERT_TRUE(WriteFileAtomic(
      f.path, EncodeCheckpoint(
                  CheckpointHeader{kCheckpointVersion, campaign, 4, 2},
                  records)));

  Executor executor(2);
  RobustSweepOptions options;
  options.checkpoint_path = f.path;
  options.resume = true;
  options.campaign = campaign;
  RecoveryRunner runner(executor, options);
  std::vector<std::size_t> restored_order;
  std::vector<std::uint64_t> values(8, 0);
  std::atomic<std::size_t> body_runs{0};
  const RobustSweepReport report = runner.Run(
      {4, 2},
      [&](std::size_t p, std::size_t t) {
        body_runs.fetch_add(1);
        values[p * 2 + t] = p * 2 + t;  // recomputed value == index
        return U64Result(p * 2 + t);
      },
      [&](std::size_t p, std::size_t t, const std::string& payload) {
        PayloadReader r(payload);
        std::uint64_t v = 0;
        if (!r.U64(&v)) return false;
        restored_order.push_back(p * 2 + t);
        values[p * 2 + t] = v;
        return true;
      });
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.tasks_restored, 3u);
  EXPECT_EQ(report.tasks_ok, 5u);
  EXPECT_EQ(body_runs.load(), 5u);
  // Restore replays serially in ascending grid-index order.
  EXPECT_EQ(restored_order, (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_EQ(values[0], 0u);
  EXPECT_EQ(values[2], 200u);
  EXPECT_EQ(values[5], 500u);
}

TEST(RecoveryRunner, MismatchedCampaignIsIgnoredAndEverythingReruns) {
  ScratchFile f("checkpoint_test_mismatch.ckpt");
  ASSERT_TRUE(WriteFileAtomic(
      f.path,
      EncodeCheckpoint(
          CheckpointHeader{kCheckpointVersion, CampaignId("other", 1), 3, 1},
          {{0, TaskState::kDone, "1 "}})));
  Executor executor(1);
  RobustSweepOptions options;
  options.checkpoint_path = f.path;
  options.resume = true;
  options.campaign = CampaignId("mine", 1);
  RecoveryRunner runner(executor, options);
  const RobustSweepReport report = runner.Run(
      {3, 1}, [](std::size_t p, std::size_t) { return U64Result(p); },
      [](std::size_t, std::size_t, const std::string&) { return true; });
  EXPECT_FALSE(report.resumed);
  EXPECT_FALSE(report.checkpoint_error.empty());
  EXPECT_EQ(report.tasks_ok, 3u);
}

TEST(RecoveryRunner, RejectedRestorePayloadReruns) {
  ScratchFile f("checkpoint_test_reject.ckpt");
  const std::uint64_t campaign = CampaignId("reject", 2);
  ASSERT_TRUE(WriteFileAtomic(
      f.path,
      EncodeCheckpoint(CheckpointHeader{kCheckpointVersion, campaign, 2, 1},
                       {{0, TaskState::kDone, "not a number"},
                        {1, TaskState::kDone, "7 "}})));
  Executor executor(1);
  RobustSweepOptions options;
  options.checkpoint_path = f.path;
  options.resume = true;
  options.campaign = campaign;
  RecoveryRunner runner(executor, options);
  std::atomic<std::size_t> body_runs{0};
  const RobustSweepReport report = runner.Run(
      {2, 1},
      [&](std::size_t p, std::size_t) {
        body_runs.fetch_add(1);
        return U64Result(p);
      },
      [](std::size_t, std::size_t, const std::string& payload) {
        PayloadReader r(payload);
        std::uint64_t v = 0;
        return r.U64(&v);
      });
  EXPECT_EQ(report.tasks_restored, 1u);  // task 1 restored
  EXPECT_EQ(body_runs.load(), 1u);       // task 0 re-ran
  EXPECT_EQ(report.tasks_ok, 1u);
}

TEST(RecoveryRunner, RetriesThrowingTaskThenSucceeds) {
  Executor executor(2);
  RobustSweepOptions options;
  options.max_retries = 2;
  RecoveryRunner runner(executor, options);
  std::atomic<int> failures_left{2};
  const RobustSweepReport report = runner.Run(
      {3, 1},
      [&](std::size_t p, std::size_t) -> RobustTaskResult {
        if (p == 1 && failures_left.fetch_sub(1) > 0) {
          throw std::runtime_error("transient");
        }
        return U64Result(p);
      },
      [](std::size_t, std::size_t, const std::string&) { return true; });
  EXPECT_FALSE(report.cancelled);
  EXPECT_EQ(report.tasks_ok, 3u);
  EXPECT_EQ(report.task_retries, 2u);
  EXPECT_EQ(report.tasks[1].attempts, 3u);
}

TEST(RecoveryRunner, QuarantinePersistsAcrossResume) {
  ScratchFile f("checkpoint_test_quarantine.ckpt");
  Executor executor(2);
  RobustSweepOptions options;
  options.checkpoint_path = f.path;
  options.checkpoint_every = 1;
  options.campaign = CampaignId("quarantine", 5);
  options.quarantine = true;
  options.max_retries = 1;
  RecoveryRunner runner(executor, options);
  auto poisoned = [](std::size_t p, std::size_t) -> RobustTaskResult {
    if (p == 2) throw std::runtime_error("poison");
    return U64Result(p);
  };
  auto accept = [](std::size_t, std::size_t, const std::string&) {
    return true;
  };
  const RobustSweepReport first = runner.Run({4, 1}, poisoned, accept);
  EXPECT_FALSE(first.cancelled);
  EXPECT_EQ(first.tasks_ok, 3u);
  EXPECT_EQ(first.tasks_quarantined, 1u);
  EXPECT_EQ(first.quarantined, std::vector<std::size_t>{2});
  EXPECT_EQ(first.task_retries, 1u);  // one retry before giving up

  // Resume: the poisoned task must not run again.
  RobustSweepOptions resume_options = options;
  resume_options.resume = true;
  RecoveryRunner resumer(executor, resume_options);
  std::atomic<std::size_t> body_runs{0};
  const RobustSweepReport second = resumer.Run(
      {4, 1},
      [&](std::size_t p, std::size_t t) {
        body_runs.fetch_add(1);
        return poisoned(p, t);
      },
      accept);
  EXPECT_EQ(body_runs.load(), 0u);
  EXPECT_EQ(second.tasks_restored, 3u);
  EXPECT_EQ(second.tasks_quarantined, 1u);
  EXPECT_EQ(second.tasks_restored + second.tasks_quarantined +
                second.tasks_ok + second.tasks_drained,
            second.tasks_total);
}

TEST(RecoveryRunner, StrictFailureCancelsWithDrainedAccounting) {
  Executor executor(2);
  RecoveryRunner runner(executor, {});
  const RobustSweepReport report = runner.Run(
      {64, 1},
      [](std::size_t p, std::size_t) -> RobustTaskResult {
        if (p == 5) return {false, ""};
        return U64Result(p);
      },
      [](std::size_t, std::size_t, const std::string&) { return true; });
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.first_failure_task, 5u);
  // The satellite invariant: drained + executed + quarantined == total
  // even under cancellation (the failing task itself counts drained —
  // it produced no committed result).
  EXPECT_EQ(report.tasks_ok + report.tasks_restored +
                report.tasks_quarantined + report.tasks_drained,
            report.tasks_total);
  EXPECT_GT(report.tasks_drained, 0u);
  // SummaryJson surfaces the accounting verdict for TIMING files.
  EXPECT_NE(report.SummaryJson("x").find("\"accounting_ok\": true"),
            std::string::npos);
}

TEST(RecoveryRunner, WatchdogFlagsSlowTask) {
  Executor executor(2);
  RobustSweepOptions options;
  options.watchdog_warn_s = 0.05;
  options.watchdog_poll_s = 0.01;
  RecoveryRunner runner(executor, options);
  const RobustSweepReport report = runner.Run(
      {2, 1},
      [](std::size_t p, std::size_t) {
        if (p == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        return U64Result(p);
      },
      [](std::size_t, std::size_t, const std::string&) { return true; });
  EXPECT_GE(report.watchdog_flags, 1u);
  EXPECT_EQ(report.tasks_ok, 2u);  // detection only, never killed
}

TEST(RecoveryRunner, ResultsAreThreadCountInvariant) {
  auto run = [](std::size_t threads) {
    Executor executor(threads);
    RecoveryRunner runner(executor, {});
    std::vector<std::uint64_t> values(24, 0);
    runner.Run(
        {12, 2},
        [&](std::size_t p, std::size_t t) {
          values[p * 2 + t] = p * 1000 + t;
          PayloadWriter w;
          w.U64(values[p * 2 + t]);
          return RobustTaskResult{true, w.Take()};
        },
        [](std::size_t, std::size_t, const std::string&) { return true; });
    return values;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(RobustOptions, ParsesAndCompactsArgv) {
  const char* raw[] = {"prog",       "--checkpoint", "a.ckpt",
                       "--keep-me",  "--resume",     "--checkpoint-every",
                       "4",          "--watchdog-s", "2.5",
                       "--also-keep"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());
  const RobustSweepOptions options =
      RobustOptionsFromArgs(argc, argv.data());
  EXPECT_EQ(options.checkpoint_path, "a.ckpt");
  EXPECT_TRUE(options.resume);
  EXPECT_EQ(options.checkpoint_every, 4u);
  EXPECT_DOUBLE_EQ(options.watchdog_warn_s, 2.5);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--keep-me");
  EXPECT_STREQ(argv[2], "--also-keep");
}

TEST(RobustOptions, ResumeWithInlinePathSetsCheckpoint) {
  const char* raw[] = {"prog", "--resume", "ckpt.bin"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());
  const RobustSweepOptions options =
      RobustOptionsFromArgs(argc, argv.data());
  EXPECT_TRUE(options.resume);
  EXPECT_EQ(options.checkpoint_path, "ckpt.bin");
  EXPECT_EQ(argc, 1);
}

}  // namespace
}  // namespace freerider::runtime
