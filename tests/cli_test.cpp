// Unified CLI contract across tools/ and bench/ (common/cli.h): every
// binary rejects an unknown flag with exit code 2 and prints its usage
// line to stderr — no tool silently ignores a typo'd flag and burns an
// hour of compute on the wrong configuration.
//
// Binary paths are injected by CMake as compile definitions
// ($<TARGET_FILE:...>), so the test exercises the real executables.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string stderr_text;
};

CliResult RunCli(const std::string& binary, const std::string& args) {
  // Unique per test process: ctest -jN runs the cases in parallel and a
  // shared path would interleave their captures.
  const std::string err_path = testing::TempDir() + "cli_test_stderr." +
                               std::to_string(::getpid()) + ".txt";
  const std::string command =
      binary + " " + args + " >/dev/null 2>" + err_path;
  const int raw = std::system(command.c_str());
  CliResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(err_path);
  std::ostringstream text;
  text << in.rdbuf();
  result.stderr_text = text.str();
  std::remove(err_path.c_str());
  return result;
}

std::vector<std::string> AllBinaries() {
  return {
      CLI_BENCH_STRESS_SUPERVISOR, CLI_BENCH_SOAK_ARQ,
      CLI_BENCH_RUNTIME,           CLI_BENCH_IMPAIRMENTS,
      CLI_BENCH_FIG14_RANGE,       CLI_BENCH_FIG17_MAC_MULTITAG,
      CLI_CRASH_CAMPAIGN,          CLI_REPLAY_SOAK,
  };
}

}  // namespace

TEST(CliContractTest, UnknownFlagExitsTwoWithUsageOnStderr) {
  for (const std::string& binary : AllBinaries()) {
    const CliResult result = RunCli(binary, "--definitely-not-a-flag");
    EXPECT_EQ(result.exit_code, 2) << binary;
    EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos)
        << binary << " stderr: " << result.stderr_text;
    EXPECT_NE(result.stderr_text.find("--definitely-not-a-flag"),
              std::string::npos)
        << binary << " stderr: " << result.stderr_text;
  }
}

TEST(CliContractTest, UnknownFlagRejectedEvenAfterKnownFlags) {
  // A known flag must not mask a later unknown one.
  const CliResult result =
      RunCli(CLI_BENCH_STRESS_SUPERVISOR, "--rounds 600 --oops");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
  EXPECT_NE(result.stderr_text.find("--oops"), std::string::npos);
}

TEST(CliContractTest, MalformedNumericValueExitsTwo) {
  const CliResult result =
      RunCli(CLI_BENCH_STRESS_SUPERVISOR, "--rounds banana");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_FALSE(result.stderr_text.empty());
}

TEST(CliContractTest, ReplaySoakWithoutJournalPrintsUsage) {
  const CliResult result = RunCli(CLI_REPLAY_SOAK, "");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}
