// Unified CLI contract across tools/ and bench/ (common/cli.h): every
// binary rejects an unknown flag with exit code 2 and prints its usage
// line to stderr — no tool silently ignores a typo'd flag and burns an
// hour of compute on the wrong configuration.
//
// Binary paths are injected by CMake as compile definitions
// ($<TARGET_FILE:...>), so the test exercises the real executables.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string stderr_text;
};

CliResult RunCli(const std::string& binary, const std::string& args) {
  // Unique per test process: ctest -jN runs the cases in parallel and a
  // shared path would interleave their captures.
  const std::string err_path = testing::TempDir() + "cli_test_stderr." +
                               std::to_string(::getpid()) + ".txt";
  const std::string command =
      binary + " " + args + " >/dev/null 2>" + err_path;
  const int raw = std::system(command.c_str());
  CliResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(err_path);
  std::ostringstream text;
  text << in.rdbuf();
  result.stderr_text = text.str();
  std::remove(err_path.c_str());
  return result;
}

// Every bench/ and tools/ entry point, injected by CMake as one
// '|'-joined list so a binary added to the build is swept here
// automatically (tests/CMakeLists.txt appends it to CLI_SWEPT_TARGETS
// in the same edit that adds the target).
std::vector<std::string> AllBinaries() {
  std::vector<std::string> binaries;
  std::istringstream in(CLI_ALL_BINARIES);
  std::string entry;
  while (std::getline(in, entry, '|')) {
    if (!entry.empty()) binaries.push_back(entry);
  }
  return binaries;
}

}  // namespace

TEST(CliContractTest, UnknownFlagExitsTwoWithUsageOnStderr) {
  const std::vector<std::string> binaries = AllBinaries();
  // Guard against the list silently collapsing (a bad generator
  // expression would yield one garbled entry, and the loop below would
  // "pass" on nothing).
  ASSERT_GE(binaries.size(), 32u);
  for (const std::string& binary : binaries) {
    const CliResult result = RunCli(binary, "--definitely-not-a-flag");
    EXPECT_EQ(result.exit_code, 2) << binary;
    EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos)
        << binary << " stderr: " << result.stderr_text;
    EXPECT_NE(result.stderr_text.find("--definitely-not-a-flag"),
              std::string::npos)
        << binary << " stderr: " << result.stderr_text;
  }
}

TEST(CliContractTest, MicroPhyRejectsUnknownFlagAfterBenchmarkInit) {
  // bench_micro_phy routes argv through benchmark::Initialize first;
  // google-benchmark's own flags stay valid, anything else still hits
  // the shared rejection path.
  const CliResult result = RunCli(CLI_BENCH_MICRO_PHY, "--definitely-not-a-flag");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos)
      << result.stderr_text;
}

TEST(CliContractTest, UnknownFlagRejectedEvenAfterKnownFlags) {
  // A known flag must not mask a later unknown one.
  const CliResult result =
      RunCli(CLI_BENCH_STRESS_SUPERVISOR, "--rounds 600 --oops");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
  EXPECT_NE(result.stderr_text.find("--oops"), std::string::npos);
}

TEST(CliContractTest, MalformedNumericValueExitsTwo) {
  const CliResult result =
      RunCli(CLI_BENCH_STRESS_SUPERVISOR, "--rounds banana");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_FALSE(result.stderr_text.empty());
}

TEST(CliContractTest, ReplaySoakWithoutJournalPrintsUsage) {
  const CliResult result = RunCli(CLI_REPLAY_SOAK, "");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}
