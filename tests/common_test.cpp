#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/bits.h"
#include "common/crc.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace freerider {
namespace {

// ---------------------------------------------------------------- bits

TEST(Bits, BytesToBitsLsbFirst) {
  const Bytes bytes = {0x01, 0x80, 0xA5};
  const BitVector bits = BytesToBits(bytes);
  ASSERT_EQ(bits.size(), 24u);
  EXPECT_EQ(BitsToString(bits), "100000000000000110100101");
}

TEST(Bits, RoundTripBytesBits) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes original = RandomBytes(rng, 1 + trial * 7);
    EXPECT_EQ(BitsToBytes(BytesToBits(original)), original);
  }
}

TEST(Bits, BitsToBytesPadsPartialByte) {
  const BitVector bits = BitsFromString("101");
  const Bytes bytes = BitsToBytes(bits);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x05);
}

TEST(Bits, BitsFromStringSkipsNoise) {
  EXPECT_EQ(BitsFromString("10 1_1"), BitsFromString("1011"));
}

TEST(Bits, HammingDistance) {
  const BitVector a = BitsFromString("10101");
  const BitVector b = BitsFromString("10011");
  EXPECT_EQ(HammingDistance(a, b), 2u);
  EXPECT_EQ(HammingDistance(a, a), 0u);
}

TEST(Bits, XorBits) {
  const BitVector a = BitsFromString("1100");
  const BitVector b = BitsFromString("1010");
  EXPECT_EQ(BitsToString(XorBits(a, b)), "0110");
}

TEST(Bits, XorSelfInverse) {
  Rng rng(2);
  const BitVector a = RandomBits(rng, 100);
  const BitVector b = RandomBits(rng, 100);
  EXPECT_EQ(XorBits(XorBits(a, b), b), a);
}

TEST(Bits, RepeatBits) {
  EXPECT_EQ(BitsToString(RepeatBits(BitsFromString("10"), 3)), "111000");
}

TEST(Bits, BitErrorRateEmptyIsOne) {
  EXPECT_DOUBLE_EQ(BitErrorRate({}, {}), 1.0);
}

TEST(Bits, BitErrorRateCounts) {
  const BitVector a = BitsFromString("1111");
  const BitVector b = BitsFromString("1010");
  EXPECT_DOUBLE_EQ(BitErrorRate(a, b), 0.5);
}

// ----------------------------------------------------------------- crc

TEST(Crc, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (classic check value).
  const Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc, Crc32DetectsSingleBitFlip) {
  Rng rng(3);
  Bytes data = RandomBytes(rng, 64);
  const std::uint32_t original = Crc32(data);
  data[10] ^= 0x04;
  EXPECT_NE(Crc32(data), original);
}

TEST(Crc, Crc16CcittStable) {
  const Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  // X.25-family reflected CRC-16 with init 0: check value 0x6E90 for
  // KERMIT variant. We assert self-consistency + error detection.
  const std::uint16_t c = Crc16Ccitt(data);
  Bytes mutated = data;
  mutated[0] ^= 1;
  EXPECT_NE(Crc16Ccitt(mutated), c);
}

TEST(Crc, Crc24DetectsErrors) {
  Rng rng(4);
  BitVector bits = RandomBits(rng, 128);
  const std::uint32_t c = Crc24Ble(bits);
  EXPECT_LT(c, 1u << 24);
  bits[77] ^= 1;
  EXPECT_NE(Crc24Ble(bits), c);
}

// ----------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextBit() == b.NextBit());
  EXPECT_LT(same, 55);
  EXPECT_GT(same, 9);
}

TEST(Rng, UniformMean) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextDouble());
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.variance(), 1.0, 0.05);
}

TEST(Rng, ComplexGaussianUnitPower) {
  Rng rng(7);
  double power = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) power += std::norm(rng.NextComplexGaussian());
  EXPECT_NEAR(power / n, 1.0, 0.05);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

// ---------------------------------------------------------- ring buffer

TEST(RingBuffer, PushAndRead) {
  RingBuffer<int> rb(3);
  rb.Push(1);
  rb.Push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.At(0), 1);
  EXPECT_EQ(rb.FromNewest(0), 2);
}

TEST(RingBuffer, EvictsOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.Push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.At(0), 3);
  EXPECT_EQ(rb.FromNewest(0), 5);
}

TEST(RingBuffer, EndsWithMatchesPreamble) {
  RingBuffer<int> rb(8);
  for (int v : {9, 9, 1, 0, 1, 1}) rb.Push(v);
  EXPECT_TRUE(rb.EndsWith({1, 0, 1, 1}));
  EXPECT_FALSE(rb.EndsWith({0, 0, 1, 1}));
  EXPECT_FALSE(rb.EndsWith({9, 9, 9, 9, 9, 9, 9, 9, 9}));  // longer than size
}

TEST(RingBuffer, ThrowsOnBadAccess) {
  RingBuffer<int> rb(2);
  rb.Push(1);
  EXPECT_THROW(rb.At(1), std::out_of_range);
  EXPECT_THROW(rb.FromNewest(1), std::out_of_range);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

// Property: against a reference std::vector model, a RingBuffer of
// capacity C behaves exactly like "the last min(size, C) pushed values"
// under any interleaving of Push/Clear, across every index and both
// access directions, at every wraparound phase.
TEST(RingBuffer, PropertyMatchesVectorModelAcrossRandomOps) {
  Rng rng(0x51D6u);
  for (std::size_t capacity : {1u, 2u, 3u, 7u, 16u}) {
    RingBuffer<int> rb(capacity);
    std::vector<int> model;  // full push history since last Clear
    for (int op = 0; op < 500; ++op) {
      if (rng.NextBelow(40) == 0) {
        rb.Clear();
        model.clear();
      } else {
        const int value = static_cast<int>(rng.NextBelow(1000));
        rb.Push(value);
        model.push_back(value);
      }
      const std::size_t expect_size = std::min(model.size(), capacity);
      ASSERT_EQ(rb.size(), expect_size);
      ASSERT_EQ(rb.empty(), expect_size == 0);
      ASSERT_EQ(rb.full(), expect_size == capacity);
      ASSERT_EQ(rb.capacity(), capacity);
      const std::size_t base = model.size() - expect_size;
      for (std::size_t i = 0; i < expect_size; ++i) {
        ASSERT_EQ(rb.At(i), model[base + i]) << "cap=" << capacity;
        // FromNewest(i) and At(size-1-i) are the same element.
        ASSERT_EQ(rb.FromNewest(i), rb.At(expect_size - 1 - i));
      }
      // One past the end throws in both directions.
      ASSERT_THROW(rb.At(expect_size), std::out_of_range);
      ASSERT_THROW(rb.FromNewest(expect_size), std::out_of_range);
    }
  }
}

// Property: EndsWith agrees with a suffix comparison of the model at
// every length, including across the eviction boundary.
TEST(RingBuffer, PropertyEndsWithMatchesModelSuffix) {
  Rng rng(4242);
  RingBuffer<int> rb(5);
  std::vector<int> model;
  for (int op = 0; op < 300; ++op) {
    const int value = static_cast<int>(rng.NextBelow(3));  // collisions likely
    rb.Push(value);
    model.push_back(value);
    const std::size_t live = std::min(model.size(), rb.capacity());
    for (std::size_t len = 1; len <= live; ++len) {
      const std::vector<int> suffix(model.end() - static_cast<long>(len),
                                    model.end());
      ASSERT_TRUE(rb.EndsWith(suffix)) << "len=" << len;
      // Perturb one element: must no longer match.
      std::vector<int> wrong = suffix;
      wrong[op % len] += 1;
      ASSERT_FALSE(rb.EndsWith(wrong)) << "len=" << len;
    }
    ASSERT_FALSE(
        rb.EndsWith(std::vector<int>(live + 1, 0)));  // longer than live
  }
}

// Clear resets to a pristine state: same behavior as a new buffer.
TEST(RingBuffer, ClearThenRefillMatchesFreshBuffer) {
  RingBuffer<int> used(4);
  for (int i = 0; i < 11; ++i) used.Push(i);  // wrapped nearly 3 times
  used.Clear();
  EXPECT_TRUE(used.empty());
  EXPECT_EQ(used.size(), 0u);
  EXPECT_THROW(used.At(0), std::out_of_range);
  RingBuffer<int> fresh(4);
  for (int v : {5, 6, 7}) {
    used.Push(v);
    fresh.Push(v);
  }
  ASSERT_EQ(used.size(), fresh.size());
  for (std::size_t i = 0; i < used.size(); ++i) {
    EXPECT_EQ(used.At(i), fresh.At(i));
  }
}

// --------------------------------------------------------------- stats

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(Stats, EmpiricalCdfMonotone) {
  Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.NextDouble());
  const auto cdf = EmpiricalCdf(v);
  ASSERT_EQ(cdf.size(), v.size());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cumulative_probability, cdf[i - 1].cumulative_probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
}

TEST(Stats, JainFairnessEqualFlowsIsOne) {
  const std::vector<double> v = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(JainFairnessIndex(v), 1.0);
}

TEST(Stats, JainFairnessSingleHogIsOneOverN) {
  const std::vector<double> v = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainFairnessIndex(v), 0.25);
}

TEST(Stats, JainFairnessBounds) {
  Rng rng(10);
  std::vector<double> v;
  for (int i = 0; i < 20; ++i) v.push_back(rng.NextDouble());
  const double j = JainFairnessIndex(v);
  EXPECT_GT(j, 1.0 / 20.0);
  EXPECT_LE(j, 1.0);
}

TEST(Stats, HistogramPdfSumsToOne) {
  Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.NextDouble() * 10.0);
  const auto pdf = HistogramPdf(v, 0.0, 10.0, 20);
  double sum = 0.0;
  for (double p : pdf) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --------------------------------------------------------------- units

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(DbToLinear(LinearToDb(123.0)), 123.0, 1e-9);
  EXPECT_NEAR(LinearToDb(100.0), 20.0, 1e-12);
}

TEST(Units, DbmWatts) {
  EXPECT_NEAR(DbmToWatts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(DbmToWatts(30.0), 1.0, 1e-9);
  EXPECT_NEAR(WattsToDbm(1e-6), -30.0, 1e-9);
}

TEST(Units, AmplitudeDb) {
  EXPECT_NEAR(AmplitudeToDb(10.0), 20.0, 1e-12);
  EXPECT_NEAR(DbToAmplitude(6.0206), 2.0, 1e-4);
}

}  // namespace
}  // namespace freerider
