#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/rng.h"
#include "core/redundancy.h"
#include "core/tag_frame.h"
#include "core/translator.h"
#include "core/xor_decoder.h"
#include "phy80211/constellation.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"
#include "phy802154/frame.h"
#include "phyble/frame.h"

namespace freerider::core {
namespace {

// -------------------------------------------------------------- table 1

TEST(Table1, XorLogic) {
  // decoded C2, excitation C1 -> 1 ; C1,C2 -> 1 ; C1,C1 -> 0 ; C2,C2 -> 0
  EXPECT_EQ(XorDecodeTable1(1, 0), 1);
  EXPECT_EQ(XorDecodeTable1(0, 1), 1);
  EXPECT_EQ(XorDecodeTable1(0, 0), 0);
  EXPECT_EQ(XorDecodeTable1(1, 1), 0);
}

// ------------------------------------------------------------ translator

TEST(Translator, CapacityMatchesWindows) {
  TranslateConfig cfg;
  cfg.radio = RadioType::kWifi;
  cfg.redundancy = 4;
  // 480 start + 10 windows of 4*80.
  EXPECT_EQ(TagBitCapacity(480 + 10 * 320, cfg), 10u);
  EXPECT_EQ(TagBitCapacity(480 + 10 * 320 + 319, cfg), 10u);
  EXPECT_EQ(TagBitCapacity(100, cfg), 0u);
}

TEST(Translator, QuaternaryDoublesCapacity) {
  TranslateConfig binary;
  binary.redundancy = 4;
  TranslateConfig quad = binary;
  quad.quaternary = true;
  EXPECT_EQ(TagBitCapacity(4000, quad), 2 * TagBitCapacity(4000, binary));
}

TEST(Translator, RatesMatchPaperHeadlines) {
  // WiFi N=4: 1 bit / 16 us = 62.5 kb/s (the paper's ~60 kb/s).
  TranslateConfig wifi;
  wifi.radio = RadioType::kWifi;
  wifi.redundancy = 4;
  EXPECT_NEAR(TagBitRateBps(wifi), 62500.0, 1.0);
  // ZigBee N=4: 1 bit / 64 us = 15.6 kb/s (the paper's ~15 kb/s).
  TranslateConfig zb;
  zb.radio = RadioType::kZigbee;
  zb.redundancy = 4;
  EXPECT_NEAR(TagBitRateBps(zb), 15625.0, 1.0);
  // Bluetooth N=18: ~55.6 kb/s (the paper's ~55 kb/s).
  TranslateConfig bt;
  bt.radio = RadioType::kBluetooth;
  bt.redundancy = 18;
  EXPECT_NEAR(TagBitRateBps(bt), 55555.6, 1.0);
}

TEST(Translator, RejectsBadConfigs) {
  IqBuffer wave(1000, Cplx{1.0, 0.0});
  BitVector bits = {1, 0};
  TranslateConfig cfg;
  cfg.redundancy = 0;
  EXPECT_THROW(Translate(wave, bits, cfg), std::invalid_argument);
  TranslateConfig quad_zb;
  quad_zb.radio = RadioType::kZigbee;
  quad_zb.quaternary = true;
  EXPECT_THROW(Translate(wave, bits, quad_zb), std::invalid_argument);
}

TEST(Translator, PreambleRegionUntouchedUpToScale) {
  Rng rng(1);
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 50), {});
  TranslateConfig cfg;
  const BitVector tag_bits = RandomBits(rng, 20);
  const IqBuffer out = Translate(frame.waveform, tag_bits, cfg);
  for (std::size_t n = 0; n < ModulationStartSamples(RadioType::kWifi); ++n) {
    EXPECT_NEAR(std::abs(out[n] - frame.waveform[n] * tag::kSidebandAmplitude),
                0.0, 1e-12);
  }
}

// --------------------------------------------- end-to-end WiFi translation

struct WifiLinkOutput {
  phy80211::RxResult reference;
  phy80211::RxResult backscatter;
  BitVector sent_tag_bits;
};

WifiLinkOutput RunWifiTagLink(double backscatter_rx_dbm, std::size_t redundancy,
                              Rng& rng, std::size_t payload_bytes = 200) {
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, payload_bytes), {});
  TranslateConfig cfg;
  cfg.radio = RadioType::kWifi;
  cfg.redundancy = redundancy;
  WifiLinkOutput out;
  out.sent_tag_bits =
      RandomBits(rng, TagBitCapacity(frame.waveform.size(), cfg));
  const IqBuffer backscattered =
      Translate(frame.waveform, out.sent_tag_bits, cfg);

  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = phy80211::kSampleRateHz;
  fe.noise_figure_db = 4.0;
  auto pad = [](const IqBuffer& w) {
    IqBuffer p(120, Cplx{0.0, 0.0});
    p.insert(p.end(), w.begin(), w.end());
    p.insert(p.end(), 120, Cplx{0.0, 0.0});
    return p;
  };
  // Reference receiver: strong direct link.
  out.reference =
      phy80211::ReceiveFrame(channel::ApplyLink(pad(frame.waveform), -50.0, fe, rng));
  // Backscatter receiver at the requested power.
  out.backscatter = phy80211::ReceiveFrame(
      channel::ApplyLink(pad(backscattered), backscatter_rx_dbm, fe, rng));
  return out;
}

TEST(EndToEndWifi, TagBitsRecoveredAtHighSnr) {
  Rng rng(2);
  const WifiLinkOutput out = RunWifiTagLink(-60.0, 4, rng);
  ASSERT_TRUE(out.reference.fcs_ok);
  ASSERT_TRUE(out.backscatter.signal_ok);
  // The backscattered frame decodes as a frame but with a bad FCS —
  // the tag modified the payload codewords.
  EXPECT_FALSE(out.backscatter.fcs_ok);
  const TagDecodeResult decoded = DecodeWifi(
      out.reference.data_bits, out.backscatter.data_bits,
      phy80211::ParamsFor(out.reference.rate).data_bits_per_symbol, 4);
  ASSERT_EQ(decoded.bits.size(), out.sent_tag_bits.size());
  EXPECT_EQ(decoded.bits, out.sent_tag_bits);
}

TEST(EndToEndWifi, AllZeroTagBitsPreserveFrame) {
  Rng rng(3);
  const phy80211::TxFrame frame = phy80211::BuildFrame(RandomBytes(rng, 80), {});
  TranslateConfig cfg;
  const BitVector zeros(TagBitCapacity(frame.waveform.size(), cfg), 0);
  const IqBuffer backscattered = Translate(frame.waveform, zeros, cfg);
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), backscattered.begin(), backscattered.end());
  const phy80211::RxResult rx = phy80211::ReceiveFrame(padded);
  // A tag sending all zeros leaves every codeword untranslated: the
  // backscattered frame is a *valid* WiFi frame (FCS passes).
  ASSERT_TRUE(rx.signal_ok);
  EXPECT_TRUE(rx.fcs_ok);
}

class WifiRedundancySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WifiRedundancySweep, RecoversAtModerateSnr) {
  Rng rng(100 + GetParam());
  const WifiLinkOutput out = RunWifiTagLink(-80.0, GetParam(), rng);
  ASSERT_TRUE(out.reference.fcs_ok);
  ASSERT_TRUE(out.backscatter.signal_ok);
  const TagDecodeResult decoded = DecodeWifi(
      out.reference.data_bits, out.backscatter.data_bits,
      phy80211::ParamsFor(out.reference.rate).data_bits_per_symbol, GetParam());
  EXPECT_LT(TagBitErrorRate(out.sent_tag_bits, decoded), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Ns, WifiRedundancySweep, ::testing::Values(4, 8, 16));

TEST(EndToEndWifi, QuaternaryModeOnQpskExcitation) {
  // Eq. 5: 90° steps are valid codeword translations when the
  // excitation constellation is QPSK or denser.
  Rng rng(4);
  phy80211::TxConfig txcfg;
  txcfg.rate = phy80211::Rate::k12Mbps;  // QPSK
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 150), txcfg);
  TranslateConfig cfg;
  cfg.quaternary = true;
  cfg.redundancy = 4;
  const BitVector tag_bits =
      RandomBits(rng, TagBitCapacity(frame.waveform.size(), cfg));
  const IqBuffer backscattered = Translate(frame.waveform, tag_bits, cfg);
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), backscattered.begin(), backscattered.end());
  phy80211::RxConfig rxcfg;
  rxcfg.collect_constellation = true;
  const phy80211::RxResult rx = phy80211::ReceiveFrame(padded, rxcfg);
  ASSERT_TRUE(rx.signal_ok);
  // Every equalized point must still be a valid QPSK codeword.
  std::size_t valid = 0;
  for (const Cplx& p : rx.constellation) {
    valid += phy80211::IsValidConstellationPoint(p, phy80211::Modulation::kQpsk,
                                                 0.2);
  }
  EXPECT_GT(static_cast<double>(valid) /
                static_cast<double>(rx.constellation.size()),
            0.99);
}

// ------------------------------------------- end-to-end ZigBee translation

TEST(EndToEndZigbee, TagBitsRecovered) {
  Rng rng(5);
  const phy802154::TxFrame frame =
      phy802154::BuildFrame(RandomBytes(rng, 60));
  TranslateConfig cfg;
  cfg.radio = RadioType::kZigbee;
  cfg.redundancy = 4;
  const BitVector tag_bits =
      RandomBits(rng, TagBitCapacity(frame.waveform.size(), cfg));
  const IqBuffer backscattered = Translate(frame.waveform, tag_bits, cfg);

  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = phy802154::kSampleRateHz;
  fe.noise_figure_db = 5.0;
  IqBuffer padded(150, Cplx{0.0, 0.0});
  padded.insert(padded.end(), backscattered.begin(), backscattered.end());
  const phy802154::RxResult rx =
      phy802154::ReceiveFrame(channel::ApplyLink(padded, -80.0, fe, rng));
  ASSERT_TRUE(rx.detected);
  const TagDecodeResult decoded =
      DecodeZigbee(frame.data_symbols, rx.data_symbols, 4);
  ASSERT_EQ(decoded.bits.size(), tag_bits.size());
  EXPECT_EQ(decoded.bits, tag_bits);
}

TEST(EndToEndZigbee, ZeroTagBitsKeepFcsValid) {
  Rng rng(6);
  const phy802154::TxFrame frame = phy802154::BuildFrame(RandomBytes(rng, 40));
  TranslateConfig cfg;
  cfg.radio = RadioType::kZigbee;
  const BitVector zeros(TagBitCapacity(frame.waveform.size(), cfg), 0);
  const IqBuffer backscattered = Translate(frame.waveform, zeros, cfg);
  IqBuffer padded(64, Cplx{0.0, 0.0});
  padded.insert(padded.end(), backscattered.begin(), backscattered.end());
  const phy802154::RxResult rx = phy802154::ReceiveFrame(padded);
  ASSERT_TRUE(rx.detected);
  EXPECT_TRUE(rx.fcs_ok);
}

// ---------------------------------------- end-to-end Bluetooth translation

TEST(EndToEndBluetooth, TagBitsRecovered) {
  Rng rng(7);
  const phyble::TxFrame frame = phyble::BuildFrame(RandomBytes(rng, 36));
  TranslateConfig cfg;
  cfg.radio = RadioType::kBluetooth;
  cfg.redundancy = 18;
  const BitVector tag_bits =
      RandomBits(rng, TagBitCapacity(frame.waveform.size(), cfg));
  const IqBuffer backscattered = Translate(frame.waveform, tag_bits, cfg);

  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = phyble::kSampleRateHz;
  fe.noise_figure_db = 6.0;
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), backscattered.begin(), backscattered.end());
  padded.insert(padded.end(), 100, Cplx{0.0, 0.0});
  const phyble::RxResult rx =
      phyble::ReceiveFrame(channel::ApplyLink(padded, -75.0, fe, rng));
  ASSERT_TRUE(rx.detected);
  const TagDecodeResult decoded =
      DecodeBluetooth(frame.stream_bits, rx.stream_bits, 18);
  ASSERT_EQ(decoded.bits.size(), tag_bits.size());
  EXPECT_EQ(decoded.bits, tag_bits);
}

// --------------------------------------------------------------- tag frame

TEST(TagFrame, EncodeFindRoundTrip) {
  Rng rng(8);
  const Bytes payload = RandomBytes(rng, 12);
  const BitVector bits = EncodeTagFrame(payload);
  EXPECT_EQ(bits.size(), TagFrameBits(payload.size()));
  const auto frame = FindTagFrame(bits);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->crc_ok);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(frame->start_bit, 0u);
}

TEST(TagFrame, FoundInsideNoise) {
  Rng rng(9);
  BitVector stream = RandomBits(rng, 200);
  const Bytes payload = RandomBytes(rng, 8);
  const BitVector frame_bits = EncodeTagFrame(payload);
  stream.insert(stream.end(), frame_bits.begin(), frame_bits.end());
  stream.insert(stream.end(), 50, 0);
  // Scan from past the random prefix (which could contain accidental
  // preamble patterns) to check placement.
  const auto frame = FindTagFrame(stream, 200);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->crc_ok);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(frame->start_bit, 200u);
}

TEST(TagFrame, CorruptedPayloadFailsCrc) {
  Rng rng(10);
  const Bytes payload = RandomBytes(rng, 10);
  BitVector bits = EncodeTagFrame(payload);
  bits[16 + 8 + 5] ^= 1;  // flip a payload bit
  const auto frame = FindTagFrame(bits);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->crc_ok);
}

TEST(TagFrame, ExtractMultipleFrames) {
  Rng rng(11);
  BitVector stream;
  for (int i = 0; i < 3; ++i) {
    const BitVector f = EncodeTagFrame(RandomBytes(rng, 4 + i));
    stream.insert(stream.end(), f.begin(), f.end());
    stream.insert(stream.end(), 7, 0);  // inter-frame gap
  }
  const auto frames = ExtractTagFrames(stream);
  ASSERT_EQ(frames.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(frames[i].crc_ok);
    EXPECT_EQ(frames[i].payload.size(), 4u + i);
  }
}

// -------------------------------------------------------------- redundancy

TEST(Redundancy, LaddersAreSorted) {
  for (auto radio :
       {RadioType::kWifi, RadioType::kZigbee, RadioType::kBluetooth}) {
    const auto ladder = RedundancyLadder(radio);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_LT(ladder[i - 1], ladder[i]);
    }
  }
}

TEST(Redundancy, RaisesOnFailures) {
  AdaptiveRedundancy ctrl(RadioType::kWifi);
  EXPECT_EQ(ctrl.current(), 4u);
  ctrl.Report(false);
  ctrl.Report(false);
  EXPECT_EQ(ctrl.current(), 8u);
  ctrl.Report(false);
  ctrl.Report(false);
  EXPECT_EQ(ctrl.current(), 16u);
}

TEST(Redundancy, LowersAfterSustainedSuccess) {
  AdaptiveRedundancyConfig cfg;
  cfg.lower_after_successes = 4;
  AdaptiveRedundancy ctrl(RadioType::kWifi, cfg);
  ctrl.Report(false);
  ctrl.Report(false);
  EXPECT_EQ(ctrl.current(), 8u);
  for (int i = 0; i < 4; ++i) ctrl.Report(true);
  EXPECT_EQ(ctrl.current(), 4u);
}

TEST(Redundancy, SaturatesAtLadderEnds) {
  AdaptiveRedundancy ctrl(RadioType::kWifi);
  for (int i = 0; i < 20; ++i) ctrl.Report(false);
  EXPECT_EQ(ctrl.current(), 32u);
  AdaptiveRedundancyConfig cfg;
  cfg.lower_after_successes = 1;
  AdaptiveRedundancy low(RadioType::kWifi, cfg);
  for (int i = 0; i < 5; ++i) low.Report(true);
  EXPECT_EQ(low.current(), 4u);
}

}  // namespace
}  // namespace freerider::core
