// Tests for the fault-tolerant multi-process sweep runtime
// (runtime/dist, DESIGN.md §12): the wire codec and FrameStream's
// truncation/bit-flip behavior, the LeaseTable dispatch policy
// (expiry, backoff, retry/quarantine, speculation, first-wins) plus a
// randomized-schedule property test, the named body registry, and
// end-to-end DistRunner campaigns against a real tools/sweep_worker
// fleet — including chaos injection, degraded execution against a
// broken worker binary, and checkpoint/resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "runtime/checkpoint.h"
#include "runtime/dist/coordinator.h"
#include "runtime/dist/lease.h"
#include "runtime/dist/registry.h"
#include "runtime/dist/wire.h"
#include "sim/dist_bodies.h"

namespace freerider::runtime::dist {
namespace {

// ------------------------------------------------------------ wire

TEST(WireMsgTest, RoundTripsEveryMessageType) {
  std::vector<WireMsg> msgs;
  {
    WireMsg m;
    m.type = MsgType::kStart;
    m.points = 8;
    m.trials = 3;
    m.body = "chaos_probe";
    m.params = "7:40";
    msgs.push_back(m);
  }
  {
    WireMsg m;
    m.type = MsgType::kStartAck;
    m.ok = false;
    m.error = "unknown body";
    msgs.push_back(m);
  }
  {
    WireMsg m;
    m.type = MsgType::kTask;
    m.index = 17;
    msgs.push_back(m);
  }
  {
    WireMsg m;
    m.type = MsgType::kResult;
    m.index = 17;
    m.status = ResultStatus::kThrew;
    m.payload = std::string("bin\0ary\xff", 8);
    msgs.push_back(m);
  }
  {
    WireMsg m;
    m.type = MsgType::kHeartbeat;
    m.seq = 42;
    msgs.push_back(m);
  }
  {
    WireMsg m;
    m.type = MsgType::kShutdown;
    msgs.push_back(m);
  }
  for (const WireMsg& m : msgs) {
    const std::string bytes = EncodeMsg(m);
    WireMsg out;
    ASSERT_TRUE(DecodeMsg(bytes, &out));
    EXPECT_EQ(out.type, m.type);
    EXPECT_EQ(out.points, m.points);
    EXPECT_EQ(out.trials, m.trials);
    EXPECT_EQ(out.body, m.body);
    EXPECT_EQ(out.params, m.params);
    EXPECT_EQ(out.ok, m.ok);
    EXPECT_EQ(out.error, m.error);
    EXPECT_EQ(out.index, m.index);
    EXPECT_EQ(out.status, m.status);
    EXPECT_EQ(out.payload, m.payload);
    EXPECT_EQ(out.seq, m.seq);
  }
}

TEST(WireMsgTest, RejectsMalformedPayloads) {
  WireMsg out;
  EXPECT_FALSE(DecodeMsg("", &out));
  EXPECT_FALSE(DecodeMsg("\xEE", &out));  // unknown type tag
  WireMsg m;
  m.type = MsgType::kResult;
  m.index = 3;
  m.payload = "payload";
  const std::string bytes = EncodeMsg(m);
  // Every strict prefix is short somewhere; none may decode.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeMsg(std::string_view(bytes.data(), cut), &out))
        << "prefix length " << cut;
  }
  EXPECT_FALSE(DecodeMsg(bytes + "x", &out)) << "trailing garbage";
}

std::vector<std::string> SamplePayloads() {
  return {
      EncodeMsg([] {
        WireMsg m;
        m.type = MsgType::kHeartbeat;
        m.seq = 1;
        return m;
      }()),
      std::string(),  // empty frame payload is legal
      std::string("bin\0\xff\x01", 6),
      std::string(300, 'z'),
  };
}

TEST(FrameStreamTest, TruncationAtEveryByteNeverCorruptsOrInvents) {
  const std::vector<std::string> payloads = SamplePayloads();
  std::string stream;
  std::vector<std::size_t> ends;  // cumulative frame end offsets
  for (const std::string& p : payloads) {
    stream += EncodeFrame(p);
    ends.push_back(stream.size());
  }
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameStream fs;
    fs.Feed(stream.data(), cut);
    const std::size_t expect_frames = static_cast<std::size_t>(
        std::count_if(ends.begin(), ends.end(),
                      [cut](std::size_t e) { return e <= cut; }));
    std::string payload;
    std::size_t got = 0;
    FrameStatus status;
    while ((status = fs.Next(&payload)) == FrameStatus::kFrame) {
      ASSERT_LT(got, payloads.size());
      EXPECT_EQ(payload, payloads[got]) << "cut=" << cut;
      ++got;
    }
    EXPECT_EQ(got, expect_frames) << "cut=" << cut;
    // A torn tail is incomplete, never corrupt: CRC is only judged on
    // whole frames.
    EXPECT_EQ(status, FrameStatus::kNeedMore) << "cut=" << cut;
    EXPECT_FALSE(fs.corrupt());
    // Feeding the remainder must recover every remaining frame — the
    // coordinator's read loop depends on frames resuming mid-byte.
    fs.Feed(stream.data() + cut, stream.size() - cut);
    while ((status = fs.Next(&payload)) == FrameStatus::kFrame) {
      ASSERT_LT(got, payloads.size());
      EXPECT_EQ(payload, payloads[got]);
      ++got;
    }
    EXPECT_EQ(got, payloads.size()) << "cut=" << cut;
    EXPECT_EQ(status, FrameStatus::kNeedMore);
  }
}

TEST(FrameStreamTest, SingleBitFlipNeverYieldsWrongBytes) {
  const std::vector<std::string> payloads = SamplePayloads();
  std::string stream;
  for (const std::string& p : payloads) stream += EncodeFrame(p);
  for (std::size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = stream;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      FrameStream fs;
      fs.Feed(flipped);
      std::string payload;
      std::size_t got = 0;
      FrameStatus status;
      while ((status = fs.Next(&payload)) == FrameStatus::kFrame) {
        // Whatever decodes must be an untouched prefix frame, byte for
        // byte — the CRC gate means a flip can drop frames but never
        // alter one.
        ASSERT_LT(got, payloads.size()) << "byte=" << byte << " bit=" << bit;
        ASSERT_EQ(payload, payloads[got]) << "byte=" << byte << " bit=" << bit;
        ++got;
      }
      // The flipped frame itself never decodes.
      EXPECT_LT(got, payloads.size()) << "byte=" << byte << " bit=" << bit;
      if (status == FrameStatus::kCorrupt) {
        // Corruption is sticky: frame boundaries are untrustworthy.
        EXPECT_TRUE(fs.corrupt());
        EXPECT_EQ(fs.Next(&payload), FrameStatus::kCorrupt);
      } else {
        EXPECT_EQ(status, FrameStatus::kNeedMore);
      }
    }
  }
}

TEST(FrameStreamTest, OversizedLengthFieldIsImmediatelyCorrupt) {
  std::string frame = EncodeFrame("x");
  frame[0] = frame[1] = frame[2] = frame[3] = '\xFF';  // len 0xFFFFFFFF
  FrameStream fs;
  fs.Feed(frame);
  std::string payload;
  EXPECT_EQ(fs.Next(&payload), FrameStatus::kCorrupt);
  EXPECT_TRUE(fs.corrupt());
}

// ----------------------------------------------------------- lease

LeaseOptions FastLeaseOptions() {
  LeaseOptions o;
  o.lease_timeout_s = 1.0;
  o.backoff_base_s = 0.5;
  o.backoff_max_s = 2.0;
  o.speculate_after_s = 0.0;  // individual tests opt in
  return o;
}

TEST(LeaseTableTest, DispatchesLowestPendingIndexFirst) {
  LeaseTable table(3, FastLeaseOptions());
  std::size_t task = 99;
  bool spec = true;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  EXPECT_EQ(task, 0u);
  EXPECT_FALSE(spec);
  ASSERT_TRUE(table.Acquire(1, 0.0, &task, &spec));
  EXPECT_EQ(task, 1u);
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  EXPECT_EQ(task, 2u);
  // Everything leased, speculation disabled: nothing dispatchable.
  EXPECT_FALSE(table.Acquire(1, 0.0, &task, &spec));
}

TEST(LeaseTableTest, CompleteIsFirstWins) {
  LeaseTable table(2, FastLeaseOptions());
  std::size_t task = 0;
  bool spec = false;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  EXPECT_EQ(table.Complete(task, 0.1), LeaseTable::CompleteResult::kAccepted);
  EXPECT_EQ(table.phase(task), TaskPhase::kDone);
  // A second result for the same task (late speculative twin, or a
  // worker that survived its own expiry) is counted and dropped.
  EXPECT_EQ(table.Complete(task, 0.2), LeaseTable::CompleteResult::kDuplicate);
  EXPECT_EQ(table.duplicate_results(), 1u);
  EXPECT_EQ(table.done(), 1u);
  // Hostile index from a worker pipe.
  EXPECT_EQ(table.Complete(999, 0.2), LeaseTable::CompleteResult::kInvalid);
}

TEST(LeaseTableTest, ExpiryRependsWithBackoff) {
  LeaseTable table(1, FastLeaseOptions());
  std::size_t task = 0;
  bool spec = false;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  EXPECT_EQ(table.ExpireLeases(0.5).size(), 0u);  // deadline not reached
  const std::vector<Lease> expired = table.ExpireLeases(1.5);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].task, 0u);
  EXPECT_EQ(expired[0].worker, 0);
  EXPECT_EQ(table.expiries(), 1u);
  EXPECT_EQ(table.phase(0), TaskPhase::kPending);
  // Re-dispatch waits out the exponential backoff (base * 2^0 = 0.5s
  // after the first dispatch), then hands the task out again.
  EXPECT_FALSE(table.Acquire(1, 1.6, &task, &spec));
  ASSERT_TRUE(table.Acquire(1, 2.1, &task, &spec));
  EXPECT_EQ(task, 0u);
  EXPECT_EQ(table.attempts(0), 2u);
  // A late result from the *expired* lease still wins: the payload is
  // deterministic, so it equals what the re-dispatch would compute.
  EXPECT_EQ(table.Complete(0, 2.2), LeaseTable::CompleteResult::kAccepted);
  EXPECT_TRUE(table.AllSettled());
}

TEST(LeaseTableTest, RenewExtendsDeadline) {
  LeaseTable table(1, FastLeaseOptions());
  std::size_t task = 0;
  bool spec = false;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  table.Renew(0, 0.9);  // heartbeat just before the deadline
  EXPECT_EQ(table.ExpireLeases(1.5).size(), 0u);
  EXPECT_EQ(table.ExpireLeases(2.0).size(), 1u);
}

TEST(LeaseTableTest, RetryableFailureRetriesThenQuarantines) {
  LeaseOptions opts = FastLeaseOptions();
  opts.max_retries = 1;
  opts.quarantine = true;
  LeaseTable table(1, opts);
  std::size_t task = 0;
  bool spec = false;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  EXPECT_EQ(table.Fail(task, 0.1, /*retryable=*/true),
            LeaseTable::FailResult::kRetry);
  EXPECT_EQ(table.phase(0), TaskPhase::kPending);
  ASSERT_TRUE(table.Acquire(0, 1.0, &task, &spec));
  EXPECT_EQ(table.Fail(task, 1.1, /*retryable=*/true),
            LeaseTable::FailResult::kQuarantined);
  EXPECT_EQ(table.phase(0), TaskPhase::kQuarantined);
  EXPECT_EQ(table.retries(), 1u);
  EXPECT_TRUE(table.AllSettled());
  // Stale failure after settlement is ignored.
  EXPECT_EQ(table.Fail(task, 1.2, true), LeaseTable::FailResult::kIgnored);
}

TEST(LeaseTableTest, NonRetryableFailureIsFatalInStrictMode) {
  LeaseOptions opts = FastLeaseOptions();
  opts.max_retries = 5;  // irrelevant: ok == false never retries
  LeaseTable table(1, opts);
  std::size_t task = 0;
  bool spec = false;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  EXPECT_EQ(table.Fail(task, 0.1, /*retryable=*/false),
            LeaseTable::FailResult::kFatal);
}

TEST(LeaseTableTest, SpeculationDuplicatesOldestStraggler) {
  LeaseOptions opts = FastLeaseOptions();
  opts.lease_timeout_s = 100.0;  // straggler, not dead
  opts.speculate_after_s = 2.0;
  opts.max_leases_per_task = 2;
  LeaseTable table(1, opts);
  std::size_t task = 0;
  bool spec = false;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  // Too young to duplicate.
  EXPECT_FALSE(table.Acquire(1, 1.0, &task, &spec));
  // Old enough — but never duplicated onto its own holder.
  EXPECT_FALSE(table.Acquire(0, 3.0, &task, &spec));
  ASSERT_TRUE(table.Acquire(1, 3.0, &task, &spec));
  EXPECT_EQ(task, 0u);
  EXPECT_TRUE(spec);
  EXPECT_EQ(table.speculative_dispatches(), 1u);
  // max_leases_per_task caps the duplicate count.
  EXPECT_FALSE(table.Acquire(2, 6.0, &task, &spec));
  // First result wins, twin's arrival is a counted duplicate.
  EXPECT_EQ(table.Complete(0, 6.5), LeaseTable::CompleteResult::kAccepted);
  EXPECT_EQ(table.Complete(0, 6.6), LeaseTable::CompleteResult::kDuplicate);
  EXPECT_TRUE(table.AllSettled());
}

TEST(LeaseTableTest, ReleaseWorkerRependsItsLeases) {
  LeaseTable table(3, FastLeaseOptions());
  std::size_t task = 0;
  bool spec = false;
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  ASSERT_TRUE(table.Acquire(0, 0.0, &task, &spec));
  ASSERT_TRUE(table.Acquire(1, 0.0, &task, &spec));
  EXPECT_EQ(table.ReleaseWorker(0, 0.5), 2u);
  EXPECT_EQ(table.phase(0), TaskPhase::kPending);
  EXPECT_EQ(table.phase(1), TaskPhase::kPending);
  EXPECT_EQ(table.phase(2), TaskPhase::kLeased);  // worker 1 unaffected
  const std::vector<std::size_t> unsettled = table.Unsettled();
  EXPECT_EQ(unsettled, (std::vector<std::size_t>{0, 1, 2}));
}

// Randomized schedules: whatever interleaving of acquire / complete /
// fail / worker-death / clock-jump the fleet produces, no task is ever
// lost, double-counted, or resurrected after settling.
TEST(LeaseTableTest, PropertyRandomSchedulesNeverLoseOrDoubleCountTasks) {
  constexpr std::size_t kTasks = 24;
  constexpr int kWorkers = 5;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919);
    LeaseOptions opts;
    opts.lease_timeout_s = 1.0;
    opts.backoff_base_s = 0.01;
    opts.backoff_max_s = 0.1;
    opts.max_retries = 1;
    opts.quarantine = true;
    opts.speculate_after_s = 0.5;
    opts.max_leases_per_task = 2;
    LeaseTable table(kTasks, opts);
    std::vector<int> accepted(kTasks, 0);
    std::vector<std::pair<int, std::size_t>> held;  // (worker, task)
    double now = 0.0;
    for (int iter = 0; iter < 4000 && !table.AllSettled(); ++iter) {
      now += 0.01 + rng.NextDouble() * 0.2;
      const std::uint64_t op = rng.NextBelow(100);
      const int w = static_cast<int>(rng.NextBelow(kWorkers));
      if (op < 45) {
        std::size_t task = 0;
        bool spec = false;
        if (table.Acquire(w, now, &task, &spec)) {
          ASSERT_LT(task, kTasks);
          held.emplace_back(w, task);
        }
      } else if (op < 75 && !held.empty()) {
        const std::size_t i = rng.NextBelow(held.size());
        if (table.Complete(held[i].second, now) ==
            LeaseTable::CompleteResult::kAccepted) {
          ++accepted[held[i].second];
        }
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (op < 85 && !held.empty()) {
        const std::size_t i = rng.NextBelow(held.size());
        table.Fail(held[i].second, now, rng.NextBelow(2) == 0);
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (op < 92) {
        table.ReleaseWorker(w, now);
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [w](const auto& h) { return h.first == w; }),
                   held.end());
      } else {
        now += opts.lease_timeout_s + 0.5;
        table.ExpireLeases(now);
        // Expired holders may still report results later (first-wins
        // dedup absorbs them), so `held` deliberately keeps the stale
        // entries.
      }
      // Inductive invariants after every operation.
      ASSERT_LE(table.done() + table.quarantined(), kTasks);
      ASSERT_EQ(table.Unsettled().size(),
                kTasks - table.done() - table.quarantined());
      for (std::size_t t = 0; t < kTasks; ++t) ASSERT_LE(accepted[t], 1);
    }
    // Deterministic drain so every schedule reaches settlement.
    for (int guard = 0; guard < 2000 && !table.AllSettled(); ++guard) {
      now += opts.lease_timeout_s + opts.backoff_max_s + 0.1;
      table.ExpireLeases(now);
      std::size_t task = 0;
      bool spec = false;
      while (table.Acquire(0, now, &task, &spec)) {
        table.Complete(task, now);
        ++accepted[task];
      }
    }
    ASSERT_TRUE(table.AllSettled()) << "seed " << seed;
    EXPECT_EQ(table.done() + table.quarantined(), kTasks);
    EXPECT_TRUE(table.Unsettled().empty());
    int total_accepted = 0;
    for (std::size_t t = 0; t < kTasks; ++t) {
      SCOPED_TRACE(t);
      const TaskPhase phase = table.phase(t);
      EXPECT_TRUE(phase == TaskPhase::kDone || phase == TaskPhase::kQuarantined);
      EXPECT_EQ(accepted[t], phase == TaskPhase::kDone ? 1 : 0);
      total_accepted += accepted[t];
    }
    EXPECT_EQ(table.done(), static_cast<std::size_t>(total_accepted));
  }
}

// -------------------------------------------------------- registry

TEST(RegistryTest, RegisterFindAndList) {
  RegisterDistBody("dist_test_body",
                   [](const std::string& params, const SweepGrid& grid) {
                     if (params != "good" || grid.tasks() == 0) {
                       return DistBody();
                     }
                     return DistBody([](std::size_t p, std::size_t t) {
                       RobustTaskResult out;
                       out.payload = std::to_string(p * 100 + t);
                       return out;
                     });
                   });
  const DistBodyFactory factory = FindDistBody("dist_test_body");
  ASSERT_TRUE(factory != nullptr);
  EXPECT_TRUE(factory("bad params", {2, 2}) == nullptr);
  const DistBody body = factory("good", {2, 2});
  ASSERT_TRUE(body != nullptr);
  EXPECT_EQ(body(1, 1).payload, "101");
  EXPECT_TRUE(FindDistBody("no_such_body") == nullptr);
  const std::vector<std::string> names = RegisteredDistBodies();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_TRUE(std::find(names.begin(), names.end(), "dist_test_body") !=
              names.end());
}

TEST(RegistryTest, SimBodiesValidateParamsAndGridShape) {
  sim::RegisterDistBodies();
  const DistBodyFactory fig14 = FindDistBody("fig14_range");
  ASSERT_TRUE(fig14 != nullptr);
  const SweepGrid fig14_grid{sim::Fig14TxTagDistances().size(), 1};
  EXPECT_TRUE(fig14("wifi", fig14_grid) != nullptr);
  EXPECT_TRUE(fig14("no_such_radio", fig14_grid) == nullptr);
  EXPECT_TRUE(fig14("wifi", {3, 3}) == nullptr);  // wrong grid shape

  const DistBodyFactory stress = FindDistBody("stress_supervisor");
  ASSERT_TRUE(stress != nullptr);
  EXPECT_TRUE(stress("600", {sim::StressBenchSeeds().size(), 2}) != nullptr);
  EXPECT_TRUE(stress("bogus", {sim::StressBenchSeeds().size(), 2}) == nullptr);
  EXPECT_TRUE(stress("600", {1, 1}) == nullptr);

  const DistBodyFactory probe = FindDistBody("chaos_probe");
  ASSERT_TRUE(probe != nullptr);
  EXPECT_TRUE(probe("7:40", {4, 2}) != nullptr);
  EXPECT_TRUE(probe("bogus", {4, 2}) == nullptr);
  EXPECT_TRUE(probe("7:0", {4, 2}) == nullptr);
}

// ------------------------------------------------------ end to end
//
// These tests run a real fleet: DistRunner spawns tools/sweep_worker
// subprocesses (path baked in via DIST_SWEEP_WORKER) and the digest of
// every fleet configuration must match the in-process baseline byte
// for byte.

// Sets an environment variable for one test, restoring on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

constexpr std::uint64_t kProbeSeed = 20260808;
constexpr std::size_t kProbeRounds = 40;
const SweepGrid kProbeGrid{4, 2};

DistOptions FleetOptions(std::size_t workers) {
  DistOptions dist;
  dist.workers = workers;
  dist.lease_timeout_s = 3.0;
  dist.spawn_grace_s = 10.0;
  dist.speculate_after_s = 20.0;  // keep e2e runs speculation-quiet
  dist.max_respawns = 8;
  return dist;
}

void ExpectAccountingInvariant(const DistReport& report) {
  EXPECT_EQ(report.robust.tasks_ok + report.robust.tasks_restored +
                report.robust.tasks_quarantined + report.robust.tasks_drained,
            report.robust.tasks_total);
  EXPECT_FALSE(report.robust.cancelled);
}

std::string InProcessDigest() {
  std::string digest;
  const DistReport report = sim::ChaosProbeDistributed(
      kProbeSeed, kProbeRounds, kProbeGrid, {}, FleetOptions(0), &digest);
  EXPECT_FALSE(report.distributed);
  ExpectAccountingInvariant(report);
  EXPECT_FALSE(digest.empty());
  return digest;
}

TEST(DistRunnerTest, FleetOutputIsByteIdenticalToInProcess) {
  sim::RegisterDistBodies();
  const std::string baseline = InProcessDigest();
  ScopedEnv bin("FREERIDER_WORKER_BIN", DIST_SWEEP_WORKER);
  std::string digest;
  const DistReport report = sim::ChaosProbeDistributed(
      kProbeSeed, kProbeRounds, kProbeGrid, {}, FleetOptions(2), &digest);
  EXPECT_TRUE(report.distributed);
  EXPECT_EQ(report.workers_requested, 2u);
  EXPECT_GE(report.workers_spawned, 2u);
  ExpectAccountingInvariant(report);
  EXPECT_EQ(digest, baseline);
}

TEST(DistRunnerTest, WorkerKillChaosDoesNotPerturbOutput) {
  sim::RegisterDistBodies();
  const std::string baseline = InProcessDigest();
  ScopedEnv bin("FREERIDER_WORKER_BIN", DIST_SWEEP_WORKER);
  ScopedEnv chaos("FREERIDER_CHAOS", "kill@0:1");
  std::string digest;
  const DistReport report = sim::ChaosProbeDistributed(
      kProbeSeed, kProbeRounds, kProbeGrid, {}, FleetOptions(2), &digest);
  ExpectAccountingInvariant(report);
  EXPECT_EQ(digest, baseline);
  // The directive actually fired and the coordinator recovered.
  EXPECT_GE(report.worker_deaths + report.lease_expiries, 1u);
  EXPECT_GE(report.respawns, 1u);
}

TEST(DistRunnerTest, FlippedResultFrameIsQuarantinedAtTheCrc) {
  sim::RegisterDistBodies();
  const std::string baseline = InProcessDigest();
  ScopedEnv bin("FREERIDER_WORKER_BIN", DIST_SWEEP_WORKER);
  ScopedEnv chaos("FREERIDER_CHAOS", "flip@0:1");
  std::string digest;
  const DistReport report = sim::ChaosProbeDistributed(
      kProbeSeed, kProbeRounds, kProbeGrid, {}, FleetOptions(2), &digest);
  ExpectAccountingInvariant(report);
  EXPECT_EQ(digest, baseline);
  // The corrupt frame was detected and never folded into the output.
  EXPECT_GE(report.corrupt_frames, 1u);
}

TEST(DistRunnerTest, UnusableWorkerBinaryDegradesToInProcess) {
  sim::RegisterDistBodies();
  const std::string baseline = InProcessDigest();
  // /bin/false exits immediately without speaking the protocol: the
  // fleet burns its respawn budget and the runner must finish the
  // campaign in-process with identical bytes.
  ScopedEnv bin("FREERIDER_WORKER_BIN", "/bin/false");
  std::string digest;
  const DistReport report = sim::ChaosProbeDistributed(
      kProbeSeed, kProbeRounds, kProbeGrid, {}, FleetOptions(2), &digest);
  ExpectAccountingInvariant(report);
  EXPECT_EQ(digest, baseline);
  EXPECT_GE(report.degraded_tasks, 1u);
}

TEST(DistRunnerTest, CheckpointResumeRestoresEveryTask) {
  sim::RegisterDistBodies();
  const std::string baseline = InProcessDigest();
  const std::string path = "dist_test_resume.ckpt";
  std::remove(path.c_str());
  ScopedEnv bin("FREERIDER_WORKER_BIN", DIST_SWEEP_WORKER);
  RobustSweepOptions robust;
  robust.checkpoint_path = path;
  robust.checkpoint_every = 1;
  {
    std::string digest;
    const DistReport report = sim::ChaosProbeDistributed(
        kProbeSeed, kProbeRounds, kProbeGrid, robust, FleetOptions(2),
        &digest);
    ExpectAccountingInvariant(report);
    EXPECT_EQ(digest, baseline);
    EXPECT_GE(report.robust.snapshots_written, 1u);
  }
  // Resume against the complete checkpoint: every task restores, no
  // worker computes anything, and the digest is still byte-identical.
  robust.resume = true;
  {
    std::string digest;
    const DistReport report = sim::ChaosProbeDistributed(
        kProbeSeed, kProbeRounds, kProbeGrid, robust, FleetOptions(2),
        &digest);
    ExpectAccountingInvariant(report);
    EXPECT_TRUE(report.robust.resumed);
    EXPECT_EQ(report.robust.tasks_restored, kProbeGrid.tasks());
    EXPECT_EQ(report.robust.tasks_ok, 0u);
    EXPECT_EQ(digest, baseline);
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace freerider::runtime::dist
