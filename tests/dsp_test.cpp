#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "dsp/fft.h"
#include "dsp/fir.h"
#include "dsp/signal_ops.h"
#include "dsp/spectrum.h"

namespace freerider::dsp {
namespace {

IqBuffer RandomSignal(Rng& rng, std::size_t n) {
  IqBuffer out(n);
  for (auto& x : out) x = rng.NextComplexGaussian();
  return out;
}

// ----------------------------------------------------------------- fft

TEST(Fft, ImpulseGivesFlatSpectrum) {
  IqBuffer x(64, Cplx{0.0, 0.0});
  x[0] = 1.0;
  Fft(x);
  for (const Cplx& bin : x) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  IqBuffer x(n);
  const int k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = kTwoPi * k * static_cast<double>(i) / n;
    x[i] = {std::cos(phase), std::sin(phase)};
  }
  Fft(x);
  for (std::size_t bin = 0; bin < n; ++bin) {
    const double expected = (bin == k) ? 64.0 : 0.0;
    EXPECT_NEAR(std::abs(x[bin]), expected, 1e-9) << "bin " << bin;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  Rng rng(GetParam());
  const IqBuffer original = RandomSignal(rng, GetParam());
  IqBuffer x = original;
  Fft(x);
  Ifft(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, ParsevalHolds) {
  Rng rng(21);
  const IqBuffer x = RandomSignal(rng, 128);
  IqBuffer spectrum = x;
  Fft(spectrum);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const Cplx& v : x) time_energy += std::norm(v);
  for (const Cplx& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, time_energy * 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  IqBuffer x(60);
  EXPECT_THROW(Fft(x), std::invalid_argument);
}

TEST(Fft, Linearity) {
  Rng rng(22);
  const IqBuffer a = RandomSignal(rng, 64);
  const IqBuffer b = RandomSignal(rng, 64);
  IqBuffer sum(64);
  for (int i = 0; i < 64; ++i) sum[i] = a[i] + 2.0 * b[i];
  IqBuffer fa = FftCopy(a);
  IqBuffer fb = FftCopy(b);
  IqBuffer fsum = FftCopy(sum);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(fsum[i] - (fa[i] + 2.0 * fb[i])), 0.0, 1e-9);
  }
}

// ----------------------------------------------------------------- fir

TEST(Fir, LowPassRejectsHighTone) {
  const double fs = 20e6;
  const auto taps = LowPassTaps(0.1, 63);
  FirFilter lp(taps);
  IqBuffer low(2000), high(2000);
  for (std::size_t n = 0; n < low.size(); ++n) {
    const double t = static_cast<double>(n);
    low[n] = {std::cos(kTwoPi * 0.02 * t), std::sin(kTwoPi * 0.02 * t)};
    high[n] = {std::cos(kTwoPi * 0.35 * t), std::sin(kTwoPi * 0.35 * t)};
  }
  const double low_gain = MeanPower(lp.Filter(low)) / MeanPower(low);
  const double high_gain = MeanPower(lp.Filter(high)) / MeanPower(high);
  EXPECT_GT(low_gain, 0.9);
  EXPECT_LT(high_gain, 0.01);
  (void)fs;
}

TEST(Fir, UnitDcGain) {
  const auto taps = LowPassTaps(0.2, 41);
  double sum = 0.0;
  for (double t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Fir, GaussianTapsSymmetricAndNormalized) {
  const auto taps = GaussianTaps(0.5, 8, 3);
  double sum = 0.0;
  for (double t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (std::size_t i = 0; i < taps.size() / 2; ++i) {
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-12);
  }
}

TEST(Fir, RejectsBadArgs) {
  EXPECT_THROW(LowPassTaps(0.6, 11), std::invalid_argument);
  EXPECT_THROW(FirFilter({}), std::invalid_argument);
}

// ---------------------------------------------------------- signal ops

TEST(SignalOps, MixFrequencyShiftsTone) {
  const double fs = 20e6;
  const std::size_t n = 2048;
  IqBuffer dc(n, Cplx{1.0, 0.0});
  const IqBuffer shifted = MixFrequency(dc, fs / 8.0, fs);
  // The result should be a complex exponential at fs/8: check a few
  // samples against the closed form.
  for (std::size_t i : {1u, 100u, 1000u}) {
    const double phase = kTwoPi * (fs / 8.0) * static_cast<double>(i) / fs;
    EXPECT_NEAR(shifted[i].real(), std::cos(phase), 1e-6);
    EXPECT_NEAR(shifted[i].imag(), std::sin(phase), 1e-6);
  }
}

TEST(SignalOps, MixPreservesPower) {
  Rng rng(30);
  IqBuffer x(4096);
  for (auto& v : x) v = rng.NextComplexGaussian();
  const IqBuffer y = MixFrequency(x, 3.7e6, 20e6);
  EXPECT_NEAR(MeanPower(y), MeanPower(x), MeanPower(x) * 1e-6);
}

TEST(SignalOps, SquareWaveMixProducesBothSidebands) {
  // A square-wave mixer applied to DC produces tones at ±f (and odd
  // harmonics) — the double-sideband behaviour of paper Fig. 8.
  const double fs = 64.0;
  const double f = 8.0;
  IqBuffer dc(64, Cplx{1.0, 0.0});
  IqBuffer mixed = SquareWaveMix(dc, f, fs);
  Fft(mixed);
  const double upper = std::abs(mixed[8]);   // +8 cycles
  const double lower = std::abs(mixed[64 - 8]);
  EXPECT_GT(upper, 30.0);  // ~ 64 * 2/pi ≈ 40.7
  EXPECT_GT(lower, 30.0);
  EXPECT_NEAR(upper, lower, 1.0);
  // Fundamental carries (2/pi)^2 of power per sideband: amplitude 2/pi.
  EXPECT_NEAR(upper / 64.0, 2.0 / kPi, 0.02);
}

TEST(SignalOps, SquareWaveConversionLossNear3p9Db) {
  // Offset the initial phase so samples never land exactly on the
  // zero crossings (which would skew the duty cycle).
  const double fs = 256.0;
  IqBuffer dc(256, Cplx{1.0, 0.0});
  IqBuffer mixed = SquareWaveMix(dc, 32.0, fs, kPi / 8.0);
  Fft(mixed);
  const double sideband_power = std::norm(mixed[32]) / (256.0 * 256.0);
  // Continuous-time fundamental is (2/pi)^2 = -3.92 dB per sideband; at
  // 8 samples/cycle the sampled fundamental is slightly stronger
  // (-3.70 dB). Accept the neighbourhood.
  EXPECT_NEAR(LinearToDb(sideband_power), -3.8, 0.35);
}

TEST(SignalOps, RotatePhase) {
  IqBuffer x(4, Cplx{1.0, 0.0});
  const IqBuffer y = RotatePhase(x, kPi);
  for (const Cplx& v : y) {
    EXPECT_NEAR(v.real(), -1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(SignalOps, PowerDbm) {
  IqBuffer x(100, Cplx{1.0, 0.0});  // |x|^2 = 1 W -> 30 dBm
  EXPECT_NEAR(PowerDbm(x), 30.0, 1e-9);
  const IqBuffer y = ScaleAmplitude(x, std::sqrt(1e-6));  // 1 uW -> -30 dBm
  EXPECT_NEAR(PowerDbm(y), -30.0, 1e-6);
}

TEST(SignalOps, CorrelatePeaksAtLag) {
  Rng rng(31);
  IqBuffer pattern(32);
  for (auto& v : pattern) v = rng.NextComplexGaussian();
  IqBuffer signal(200, Cplx{0.0, 0.0});
  const std::size_t offset = 77;
  for (std::size_t i = 0; i < pattern.size(); ++i) signal[offset + i] = pattern[i];
  const IqBuffer corr = Correlate(signal, pattern);
  EXPECT_EQ(PeakIndex(corr), offset);
}

TEST(SignalOps, AddSignalsSuperposes) {
  IqBuffer a(3, Cplx{1.0, 0.0});
  IqBuffer b(5, Cplx{0.0, 1.0});
  const IqBuffer sum = AddSignals(a, b);
  ASSERT_EQ(sum.size(), 5u);
  EXPECT_NEAR(sum[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(sum[0].imag(), 1.0, 1e-12);
  EXPECT_NEAR(sum[4].real(), 0.0, 1e-12);
  EXPECT_NEAR(sum[4].imag(), 1.0, 1e-12);
}

TEST(SignalOps, DelaySamples) {
  IqBuffer x = {Cplx{1.0, 0.0}, Cplx{2.0, 0.0}};
  const IqBuffer y = DelaySamples(x, 3);
  ASSERT_EQ(y.size(), 5u);
  EXPECT_NEAR(std::abs(y[0]), 0.0, 1e-12);
  EXPECT_NEAR(y[3].real(), 1.0, 1e-12);
  EXPECT_NEAR(y[4].real(), 2.0, 1e-12);
}

// -------------------------------------------------------------- spectrum

TEST(Spectrum, TonePeaksAtItsFrequency) {
  const double fs = 8e6;
  IqBuffer tone(8192);
  for (std::size_t n = 0; n < tone.size(); ++n) {
    tone[n] = std::polar(1.0, kTwoPi * 1e6 * static_cast<double>(n) / fs);
  }
  const Spectrum s = EstimateSpectrum(tone, fs);
  // The 1 MHz bin dominates everything else by tens of dB.
  const double peak = s.PowerAtDb(1e6);
  EXPECT_GT(peak, s.PowerAtDb(-1e6) + 30.0);
  EXPECT_GT(peak, s.PowerAtDb(2e6) + 30.0);
}

TEST(Spectrum, SquareWaveImagesVisible) {
  // The Fig. 8 double-sideband: mixing DC with a square wave puts equal
  // power at ±f and odd harmonics ~9.5 dB down.
  const double fs = 8e6;
  IqBuffer dc(8192, Cplx{1.0, 0.0});
  const IqBuffer mixed = SquareWaveMix(dc, 1e6, fs, 0.3);
  const Spectrum s = EstimateSpectrum(mixed, fs);
  EXPECT_NEAR(s.PowerAtDb(1e6), s.PowerAtDb(-1e6), 1.0);
  EXPECT_NEAR(s.PowerAtDb(1e6) - s.PowerAtDb(3e6), 9.5, 2.0);
}

TEST(Spectrum, FrequencyMapping) {
  Rng rng(40);
  IqBuffer x(1024);
  for (auto& v : x) v = rng.NextComplexGaussian();
  const Spectrum s = EstimateSpectrum(x, 1e6);
  EXPECT_DOUBLE_EQ(s.FrequencyOf(0), 0.0);
  EXPECT_LT(s.FrequencyOf(s.psd_db.size() / 2), 0.0);  // wraps negative
  EXPECT_NEAR(s.bin_hz, 1e6 / 256.0, 1e-9);
}

TEST(Spectrum, RejectsBadInput) {
  IqBuffer tiny(10, Cplx{1.0, 0.0});
  EXPECT_THROW(EstimateSpectrum(tiny, 1e6), std::invalid_argument);
  SpectrumConfig cfg;
  cfg.fft_size = 100;  // not a power of two
  IqBuffer ok(256, Cplx{1.0, 0.0});
  EXPECT_THROW(EstimateSpectrum(ok, 1e6, cfg), std::invalid_argument);
}

TEST(Spectrum, RenderContainsBars) {
  IqBuffer tone(2048);
  for (std::size_t n = 0; n < tone.size(); ++n) {
    tone[n] = std::polar(1.0, kTwoPi * 0.1 * static_cast<double>(n));
  }
  const std::string art = RenderSpectrum(EstimateSpectrum(tone, 1e6), 8, 20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("kHz"), std::string::npos);
}

}  // namespace
}  // namespace freerider::dsp
