// Fuzz-style robustness tests: random garbage into every parser and
// receiver in the system. Nothing may crash, hang, or fabricate valid
// frames out of noise at meaningful rates.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/tag_frame.h"
#include "health/wire.h"
#include "impair/impair.h"
#include "impair/rogue.h"
#include "mac/plm.h"
#include "mac/tag_mac.h"
#include "phy80211/mpdu.h"
#include "phy80211/receiver.h"
#include "phy80211b/frame11b.h"
#include "phy802154/frame.h"
#include "phyble/frame.h"
#include "runtime/checkpoint.h"
#include "sim/link.h"
#include "sim/multitag.h"
#include "sim/soak.h"
#include "sim/sweep.h"
#include "transport/ack.h"
#include "transport/arq.h"

namespace freerider {
namespace {

IqBuffer RandomIq(Rng& rng, std::size_t n, double scale = 1.0) {
  IqBuffer out(n);
  for (auto& x : out) x = rng.NextComplexGaussian() * scale;
  return out;
}

TEST(Fuzz, MpduParserNeverCrashes) {
  Rng rng(1);
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    const Bytes junk = RandomBytes(rng, rng.NextBelow(64));
    const auto parsed = phy80211::ParseMpdu(junk);
    accepted += parsed.has_value();
  }
  // Random type/subtype combinations are mostly invalid; a small
  // accept rate is fine (5/64 type-subtype pairs are recognized).
  EXPECT_LT(accepted, 600);
}

TEST(Fuzz, WifiReceiverOnNoiseBuffers) {
  Rng rng(2);
  int detections = 0;
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 2000 + rng.NextBelow(4000));
    detections += phy80211::ReceiveFrame(noise).fcs_ok;
  }
  EXPECT_EQ(detections, 0);
}

TEST(Fuzz, ZigbeeReceiverOnNoiseBuffers) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 2000 + rng.NextBelow(3000));
    EXPECT_FALSE(phy802154::ReceiveFrame(noise).fcs_ok);
  }
}

TEST(Fuzz, BleReceiverOnNoiseBuffers) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 1500 + rng.NextBelow(2000));
    EXPECT_FALSE(phyble::ReceiveFrame(noise).crc_ok);
  }
}

TEST(Fuzz, Dsss11bReceiverOnNoiseBuffers) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 3000 + rng.NextBelow(3000));
    EXPECT_FALSE(phy80211b::ReceiveFrame(noise).fcs_ok);
  }
}

TEST(Fuzz, TagFrameScannerOnRandomBits) {
  Rng rng(6);
  std::size_t crc_valid = 0;
  std::size_t frames = 0;
  for (int i = 0; i < 200; ++i) {
    const BitVector junk = RandomBits(rng, 2000);
    for (const auto& f : core::ExtractTagFrames(junk)) {
      ++frames;
      crc_valid += f.crc_ok;
    }
  }
  // Preamble false matches happen (16-bit pattern in 400k bits), but a
  // 16-bit CRC passes by luck only ~1/65536 of the time.
  EXPECT_LT(crc_valid, 3u);
  (void)frames;
}

TEST(Fuzz, PlmReceiverOnRandomBits) {
  Rng rng(7);
  mac::PlmMessageReceiver receiver(16);
  int messages = 0;
  for (int i = 0; i < 100000; ++i) {
    if (receiver.PushBit(rng.NextBit()).has_value()) ++messages;
  }
  // 8-bit preamble in random bits: matches are expected (~1/256), the
  // receiver just hands the payload up — the announcement parser and
  // round sequence filtering reject garbage upstream.
  EXPECT_GT(messages, 0);
}

TEST(Fuzz, TagControllerOnRandomPulses) {
  Rng rng(8);
  mac::TagController controller(1);
  for (int i = 0; i < 20000; ++i) {
    controller.OnPulse({0.0, rng.NextDouble() * 3e-3});
    controller.OnSlotBoundary();
  }
  // Must end in a sane state whatever arrived.
  SUCCEED();
}

// Draw a random point in the impairment-config space: random subset of
// fault classes enabled, parameters spanning benign to absurd.
impair::ImpairmentConfig RandomImpairments(Rng& rng) {
  impair::ImpairmentConfig config;
  config.cfo.enabled = rng.NextBit();
  config.cfo.cfo_hz = (rng.NextDouble() - 0.5) * 100e3;
  config.cfo.cfo_sigma_hz = rng.NextDouble() * 10e3;
  config.cfo.tag_clock_ppm = (rng.NextDouble() - 0.5) * 60000.0;
  config.cfo.tag_clock_ppm_sigma = rng.NextDouble() * 5000.0;
  config.cfo.start_slip_sigma_samples = rng.NextDouble() * 200.0;
  config.interferer.enabled = rng.NextBit();
  config.interferer.burst_probability = rng.NextDouble();
  config.interferer.burst_power_dbm = -100.0 + rng.NextDouble() * 60.0;
  config.interferer.min_fraction = rng.NextDouble() * 0.5;
  config.interferer.max_fraction =
      config.interferer.min_fraction + rng.NextDouble() * 0.5;
  config.dropout.enabled = rng.NextBit();
  config.dropout.dropout_probability = rng.NextDouble();
  config.dropout.min_keep_fraction = rng.NextDouble() * 0.5;
  config.dropout.max_keep_fraction =
      config.dropout.min_keep_fraction + rng.NextDouble() * 0.5;
  config.envelope.enabled = rng.NextBit();
  config.envelope.miss_probability = rng.NextDouble();
  config.envelope.spurious_probability = rng.NextDouble();
  config.envelope.extra_jitter_s = rng.NextDouble() * 100e-6;
  return config;
}

TEST(Fuzz, FaultInjectorOnRandomConfigs) {
  Rng rng(20);
  for (int i = 0; i < 200; ++i) {
    impair::FaultInjector injector(RandomImpairments(rng), rng.NextU64());
    IqBuffer wave = RandomIq(rng, 200 + rng.NextBelow(800), 1e-4);
    for (int f = 0; f < 20; ++f) {
      const impair::FrameFaults faults = injector.DrawFrame();
      EXPECT_TRUE(std::isfinite(faults.cfo_hz));
      EXPECT_TRUE(std::isfinite(faults.tag_clock_ppm));
      EXPECT_GE(faults.keep_fraction, 0.0);
      EXPECT_LE(faults.keep_fraction, 1.0);
      injector.ApplyDropout(wave, faults);
      wave = injector.ApplyCfo(std::move(wave), faults.cfo_hz,
                               20e6);
      injector.ApplyInterferer(wave, faults);
      for (const Cplx& x : wave) {
        ASSERT_TRUE(std::isfinite(x.real()) && std::isfinite(x.imag()));
      }
    }
    std::vector<tag::MeasuredPulse> pulses;
    for (int p = 0; p < 30; ++p) {
      pulses.push_back({rng.NextDouble(), rng.NextDouble() * 2e-3});
    }
    for (const auto& m : injector.ImpairPulses(std::move(pulses))) {
      EXPECT_TRUE(std::isfinite(m.start_s));
      EXPECT_TRUE(std::isfinite(m.duration_s));
    }
  }
}

TEST(Fuzz, LinkSimulatorOnRandomImpairments) {
  Rng rng(21);
  for (int i = 0; i < 6; ++i) {
    sim::LinkConfig config;
    config.radio = core::RadioType::kWifi;
    config.deployment = channel::LosDeployment();
    config.tag_to_rx_m = 1.0 + rng.NextDouble() * 10.0;
    config.num_packets = 2;
    config.profile = sim::DefaultProfile(config.radio);
    config.profile.excitation_payload_bytes = 120;
    config.impairments = RandomImpairments(rng);
    Rng sim_rng(rng.NextU64());
    const sim::LinkStats stats = sim::SimulateTagLink(config, sim_rng);
    EXPECT_TRUE(std::isfinite(stats.packet_reception_rate));
    EXPECT_TRUE(std::isfinite(stats.tag_ber));
    EXPECT_TRUE(std::isfinite(stats.tag_throughput_bps));
    EXPECT_GE(stats.packet_reception_rate, 0.0);
    EXPECT_LE(stats.packet_reception_rate, 1.0);
    EXPECT_GE(stats.tag_ber, 0.0);
    EXPECT_LE(stats.tag_ber, 1.0);
  }
}

TEST(Fuzz, FullStackOnRandomImpairments) {
  Rng rng(22);
  for (int i = 0; i < 3; ++i) {
    sim::FullStackConfig config;
    config.num_tags = 1 + rng.NextBelow(3);
    config.rounds = 2;
    config.excitation_payload_bytes = 120;
    config.impairments = RandomImpairments(rng);
    Rng sim_rng(rng.NextU64());
    const sim::FullStackStats stats =
        sim::RunFullStackCampaign(config, sim_rng);
    EXPECT_EQ(stats.rounds, 2u);
    EXPECT_TRUE(std::isfinite(stats.goodput_bps));
    EXPECT_TRUE(std::isfinite(stats.airtime_s));
    EXPECT_TRUE(std::isfinite(stats.jain_fairness));
    EXPECT_GE(stats.goodput_bps, 0.0);
  }
}

TEST(Fuzz, CsvEscapesQuotesAndCommas) {
  sim::TablePrinter table({"a,b", "c\"d"});
  table.AddRow({"1,2", "say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"c\"\"d\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Fuzz, CsvPlainCellsUnquoted) {
  sim::TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n");
}

TEST(Fuzz, ExtendedAnnouncementParserOnRandomBits) {
  // Arbitrary bit soup: the parser must never crash, and must never
  // report a valid extension whose blocks it did not CRC-verify.
  Rng rng(777);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = rng.NextBelow(360);
    const BitVector bits = RandomBits(rng, n);
    const auto parsed = transport::ParseAnnouncementExtended(bits);
    if (parsed.has_value() && parsed->ext.has_value()) {
      EXPECT_LE(parsed->ext->acks.size(), transport::kMaxAckBlocks);
    }
  }
}

TEST(Fuzz, ExtendedAnnouncementParserOnMutatedValidPayloads) {
  // Start from a valid extended announcement and flip random bits:
  // either the extension still decodes to exactly what was sent, or it
  // is rejected — corrupt downlinks must never fabricate ACK state.
  Rng rng(778);
  transport::AckExtension ext;
  ext.acks.push_back({1, 17, 0x0404});
  ext.acks.push_back({2, 200, 0x8001});
  mac::RoundAnnouncement round;
  round.slots = 10;
  round.sequence = 5;
  const BitVector clean = transport::BuildAnnouncementExtended(round, ext);
  for (int iter = 0; iter < 500; ++iter) {
    BitVector mutated = clean;
    const std::size_t flips = 1 + rng.NextBelow(6);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^= 1;
    }
    const auto parsed = transport::ParseAnnouncementExtended(mutated);
    if (parsed.has_value() && parsed->ext.has_value()) {
      EXPECT_EQ(parsed->ext->acks, ext.acks);
    }
  }
}

namespace {

/// A loaded, valid version-2 (health) announcement for mutation fuzz.
BitVector ValidHealthAnnouncement() {
  mac::RoundAnnouncement round;
  round.slots = 12;
  round.sequence = 201;
  transport::AckExtension acks;
  acks.acks.push_back({1, 9, 0x0021});
  acks.acks.push_back({4, 250, 0x8000});
  health::HealthExtension cmds;
  health::TagCommand cmd;
  cmd.tag_id = 3;
  cmd.admit = true;
  cmd.probe = true;
  cmd.boost_steps = 2;
  cmds.commands.push_back(cmd);
  cmd.tag_id = 5;
  cmd.admit = false;
  cmd.probe = false;
  cmd.boost_steps = 0;
  cmds.commands.push_back(cmd);
  return health::BuildAnnouncementHealth(round, acks, cmds);
}

/// Bounds every accepted parse must respect regardless of input.
void ExpectHealthParseBounded(const health::HealthParseResult& parsed) {
  if (parsed.acks.has_value()) {
    EXPECT_LE(parsed.acks->acks.size(), health::kMaxAckBlocksV2);
  }
  if (parsed.health.has_value()) {
    EXPECT_LE(parsed.health->commands.size(), health::kMaxHealthBlocks);
    for (const health::TagCommand& cmd : parsed.health->commands) {
      EXPECT_LE(cmd.boost_steps, health::kMaxBoostSteps);
    }
  }
}

}  // namespace

TEST(Fuzz, HealthAnnouncementParserOnRandomBits) {
  // Arbitrary bit soup into the version-2 parser: never crash, and any
  // extension it does accept obeys every structural bound.
  Rng rng(881);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = rng.NextBelow(400);
    const auto parsed = health::ParseAnnouncementHealth(RandomBits(rng, n));
    if (parsed.has_value()) ExpectHealthParseBounded(*parsed);
  }
}

TEST(Fuzz, HealthAnnouncementTruncatedAtEveryPosition) {
  // A hostile or collision-cut downlink can end mid-extension at any
  // bit. Every prefix must parse without crashing, and no truncation
  // may yield a *different* accepted extension: either the cut lands
  // before the extension starts (bare announcement, nothing parsed) or
  // the length equation / CRC rejects it.
  const BitVector clean = ValidHealthAnnouncement();
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const BitVector cut(clean.begin(), clean.begin() + len);
    const auto parsed = health::ParseAnnouncementHealth(cut);
    if (len < 16) {
      EXPECT_FALSE(parsed.has_value()) << "len " << len;
      continue;
    }
    ASSERT_TRUE(parsed.has_value()) << "len " << len;
    EXPECT_FALSE(parsed->acks.has_value()) << "len " << len;
    EXPECT_FALSE(parsed->health.has_value()) << "len " << len;
  }
  // The untruncated payload still parses whole (the loop above really
  // was cutting a valid message).
  const auto whole = health::ParseAnnouncementHealth(clean);
  ASSERT_TRUE(whole.has_value());
  EXPECT_TRUE(whole->acks.has_value());
  EXPECT_TRUE(whole->health.has_value());
}

TEST(Fuzz, HealthAnnouncementOnRandomDoubleBitFlips) {
  // CRC-8 catches every single-bit error (health_test proves that
  // exhaustively); multi-bit patterns are where a weak checksum would
  // leak forged commands through. 2000 random double flips: anything
  // accepted must decode to exactly what was sent.
  Rng rng(882);
  const BitVector clean = ValidHealthAnnouncement();
  const auto reference = health::ParseAnnouncementHealth(clean);
  ASSERT_TRUE(reference.has_value());
  std::size_t rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    BitVector mutated = clean;
    const std::size_t a = 16 + rng.NextBelow(mutated.size() - 16);
    std::size_t b = 16 + rng.NextBelow(mutated.size() - 16);
    while (b == a) b = 16 + rng.NextBelow(mutated.size() - 16);
    mutated[a] ^= 1;
    mutated[b] ^= 1;
    const auto parsed = health::ParseAnnouncementHealth(mutated);
    ASSERT_TRUE(parsed.has_value());
    ExpectHealthParseBounded(*parsed);
    if (parsed->ext_rejected) {
      ++rejected;
    } else if (parsed->acks.has_value() || parsed->health.has_value()) {
      // An undetected double flip must at least not alter the content
      // the coordinator acts on.
      ASSERT_TRUE(parsed->acks.has_value());
      ASSERT_TRUE(parsed->health.has_value());
      EXPECT_EQ(parsed->acks->acks, reference->acks->acks);
      EXPECT_EQ(parsed->health->commands, reference->health->commands);
    }
  }
  // The codec must be doing real work, not waving everything through.
  EXPECT_GT(rejected, 1900u);
}

TEST(Fuzz, HealthAnnouncementOnForgedCrcCorpus) {
  // The forger rogue's corpus: random bodies under *correct* CRC-8s,
  // plus corrupted and intact well-formed extensions. The checksum is
  // no authenticator, so structural validation carries the load — no
  // crash, and every acceptance stays inside the caps.
  impair::RogueConfig config;
  config.seed = 0xF0F0;
  config.tags.resize(2);
  config.tags[1].model = impair::RogueModel::kForger;
  config.tags[1].forge_probability = 1.0;
  impair::RogueEngine engine(config, 2);
  std::size_t parsed_total = 0;
  for (std::size_t round = 0; round < 600; ++round) {
    engine.BeginRound(round);
    ASSERT_TRUE(engine.ForgesThisRound(1));
    const auto parsed =
        health::ParseAnnouncementHealth(engine.ForgedExtension(1));
    ASSERT_TRUE(parsed.has_value()) << "round " << round;
    ExpectHealthParseBounded(*parsed);
    ++parsed_total;
  }
  EXPECT_EQ(parsed_total, 600u);
}

TEST(Fuzz, ExtendedPlmReceiverOnRandomBits) {
  // The variable-length receiver reads a length field from the air; a
  // hostile header must neither crash it nor park it past the bounded
  // maximum payload.
  Rng rng(779);
  mac::PlmMessageReceiver receiver = mac::PlmMessageReceiver::ExtendedReceiver();
  for (int i = 0; i < 20000; ++i) {
    if (const auto message = receiver.PushBit(rng.NextBit())) {
      EXPECT_GE(message->size(), 16u);
      EXPECT_LE(message->size(), mac::kMaxExtendedPayloadBits);
    }
  }
}

TEST(Fuzz, SoakReplayParserOnGarbage) {
  Rng rng(780);
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsnl \n\t";
  for (int iter = 0; iter < 300; ++iter) {
    std::string text;
    const std::size_t n = rng.NextBelow(200);
    for (std::size_t i = 0; i < n; ++i) {
      text += alphabet[rng.NextBelow(sizeof alphabet - 1)];
    }
    // Must not crash; acceptance is fine only if it really parsed.
    (void)sim::ParseSoakReplay(text);
  }
}

TEST(Fuzz, CheckpointDecoderOnGarbage) {
  // Raw noise, including strings that begin with plausible length
  // fields, must never crash the frame decoder or make it allocate
  // from an untrusted length.
  Rng rng(790);
  for (int iter = 0; iter < 400; ++iter) {
    std::string bytes;
    const std::size_t n = rng.NextBelow(512);
    for (std::size_t i = 0; i < n; ++i) {
      bytes += static_cast<char>(rng.NextBelow(256));
    }
    const auto decoded = runtime::DecodeCheckpoint(bytes);
    if (decoded.ok) {
      // Random noise should essentially never fake a CRC-framed
      // header; if it does, the grid must still be within bounds.
      EXPECT_LE(decoded.header.points, 1u << 24);
      EXPECT_LE(decoded.header.trials, 1u << 24);
    }
    // Determinism: decoding the same bytes twice gives the same story.
    const auto again = runtime::DecodeCheckpoint(bytes);
    EXPECT_EQ(again.ok, decoded.ok);
    EXPECT_EQ(again.frames_kept, decoded.frames_kept);
    EXPECT_EQ(again.dropped_bytes, decoded.dropped_bytes);
  }
}

TEST(Fuzz, CheckpointDecoderOnMutatedValidImages) {
  // Start from a real checkpoint and apply the failure modes a torn
  // write or disk rot produces: truncation, single bit flips, and
  // duplicated frames. Decode must never crash, never keep an invalid
  // frame, and stay deterministic.
  Rng rng(791);
  runtime::CheckpointHeader header;
  header.campaign = runtime::CampaignId("fuzz_ckpt", 7);
  header.points = 6;
  header.trials = 2;
  std::vector<runtime::TaskRecord> records;
  for (std::uint64_t i = 0; i < 12; ++i) {
    runtime::TaskRecord r;
    r.index = i;
    r.state = (i == 5) ? runtime::TaskState::kQuarantined
                       : runtime::TaskState::kDone;
    runtime::PayloadWriter w;
    w.U64(i * 17);
    w.F64(1.0 / (1.0 + static_cast<double>(i)));
    r.payload = w.Take();
    records.push_back(r);
  }
  const std::string image = runtime::EncodeCheckpoint(header, records);
  ASSERT_TRUE(runtime::DecodeCheckpoint(image).ok);
  ASSERT_EQ(runtime::DecodeCheckpoint(image).frames_kept, records.size());

  // Truncation at every byte keeps a valid prefix, never more records
  // than the intact image, and reports the dropped tail.
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    const auto decoded =
        runtime::DecodeCheckpoint(std::string_view(image).substr(0, cut));
    EXPECT_LE(decoded.frames_kept, records.size());
    if (decoded.ok && cut < image.size()) {
      for (const auto& rec : decoded.records) {
        EXPECT_LT(rec.index, header.points * header.trials);
      }
    }
  }

  // Random single bit flips: decode both never crashes and is
  // deterministic; a flip in frame k's span loses frames >= k only.
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = image;
    const std::size_t at = rng.NextBelow(mutated.size());
    mutated[at] = static_cast<char>(
        static_cast<unsigned char>(mutated[at]) ^ (1u << rng.NextBelow(8)));
    const auto a = runtime::DecodeCheckpoint(mutated);
    const auto b = runtime::DecodeCheckpoint(mutated);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.frames_kept, b.frames_kept);
    EXPECT_EQ(a.duplicates, b.duplicates);
    EXPECT_EQ(a.dropped_bytes, b.dropped_bytes);
    for (std::size_t i = 0; i < a.frames_kept; ++i) {
      // Kept records are bit-identical to the originals they claim to
      // be (CRC caught everything else).
      EXPECT_EQ(a.records[i].payload, records[a.records[i].index].payload);
    }
  }

  // Duplicated frames: re-append a random slice of record frames; the
  // decoder keeps first occurrences and counts the rest.
  {
    std::string doubled = image + image;
    // Appending a second full image re-presents the header frame as a
    // record frame; that is malformed, so everything after the first
    // image is salvage-dropped — still no crash, still deterministic.
    const auto decoded = runtime::DecodeCheckpoint(doubled);
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.frames_kept, records.size());

    // Proper duplicate records (encoded once, records repeated twice)
    // are first-wins deduped and counted.
    std::vector<runtime::TaskRecord> twice = records;
    twice.insert(twice.end(), records.begin(), records.end());
    const auto deduped =
        runtime::DecodeCheckpoint(runtime::EncodeCheckpoint(header, twice));
    EXPECT_TRUE(deduped.ok);
    EXPECT_EQ(deduped.frames_kept, records.size());
    EXPECT_EQ(deduped.duplicates, records.size());
  }
}

TEST(Fuzz, TransportQueuesOnAdversarialAckStream) {
  // Random ACK blocks, including nonsense cumulative points and NACK
  // bitmaps for frames never sent: the queue must stay bounded and
  // never double-acknowledge.
  Rng rng(781);
  for (int trial = 0; trial < 20; ++trial) {
    transport::TransportConfig config;
    config.enabled = true;
    config.queue_capacity = 16;
    transport::TagTransport tx(config);
    std::size_t accepted = 0;
    for (std::size_t round = 0; round < 300; ++round) {
      tx.OnRoundStart(round);
      if (tx.Enqueue(round)) ++accepted;
      (void)tx.NextFrame(round);
      transport::TagAck ack;
      ack.tag_id = 1;
      ack.cumulative = static_cast<std::uint8_t>(rng.NextBelow(256));
      ack.nack_bitmap = static_cast<std::uint16_t>(rng.NextBelow(65536));
      tx.OnAck(ack, round);
      ASSERT_LE(tx.pending(), config.queue_capacity);
    }
    EXPECT_LE(tx.stats().acked + tx.stats().expired + tx.pending(), accepted);
  }
}

}  // namespace
}  // namespace freerider
