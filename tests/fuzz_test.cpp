// Fuzz-style robustness tests: random garbage into every parser and
// receiver in the system. Nothing may crash, hang, or fabricate valid
// frames out of noise at meaningful rates.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tag_frame.h"
#include "mac/plm.h"
#include "mac/tag_mac.h"
#include "phy80211/mpdu.h"
#include "phy80211/receiver.h"
#include "phy80211b/frame11b.h"
#include "phy802154/frame.h"
#include "phyble/frame.h"
#include "sim/sweep.h"

namespace freerider {
namespace {

IqBuffer RandomIq(Rng& rng, std::size_t n, double scale = 1.0) {
  IqBuffer out(n);
  for (auto& x : out) x = rng.NextComplexGaussian() * scale;
  return out;
}

TEST(Fuzz, MpduParserNeverCrashes) {
  Rng rng(1);
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    const Bytes junk = RandomBytes(rng, rng.NextBelow(64));
    const auto parsed = phy80211::ParseMpdu(junk);
    accepted += parsed.has_value();
  }
  // Random type/subtype combinations are mostly invalid; a small
  // accept rate is fine (5/64 type-subtype pairs are recognized).
  EXPECT_LT(accepted, 600);
}

TEST(Fuzz, WifiReceiverOnNoiseBuffers) {
  Rng rng(2);
  int detections = 0;
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 2000 + rng.NextBelow(4000));
    detections += phy80211::ReceiveFrame(noise).fcs_ok;
  }
  EXPECT_EQ(detections, 0);
}

TEST(Fuzz, ZigbeeReceiverOnNoiseBuffers) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 2000 + rng.NextBelow(3000));
    EXPECT_FALSE(phy802154::ReceiveFrame(noise).fcs_ok);
  }
}

TEST(Fuzz, BleReceiverOnNoiseBuffers) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 1500 + rng.NextBelow(2000));
    EXPECT_FALSE(phyble::ReceiveFrame(noise).crc_ok);
  }
}

TEST(Fuzz, Dsss11bReceiverOnNoiseBuffers) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const IqBuffer noise = RandomIq(rng, 3000 + rng.NextBelow(3000));
    EXPECT_FALSE(phy80211b::ReceiveFrame(noise).fcs_ok);
  }
}

TEST(Fuzz, TagFrameScannerOnRandomBits) {
  Rng rng(6);
  std::size_t crc_valid = 0;
  std::size_t frames = 0;
  for (int i = 0; i < 200; ++i) {
    const BitVector junk = RandomBits(rng, 2000);
    for (const auto& f : core::ExtractTagFrames(junk)) {
      ++frames;
      crc_valid += f.crc_ok;
    }
  }
  // Preamble false matches happen (16-bit pattern in 400k bits), but a
  // 16-bit CRC passes by luck only ~1/65536 of the time.
  EXPECT_LT(crc_valid, 3u);
  (void)frames;
}

TEST(Fuzz, PlmReceiverOnRandomBits) {
  Rng rng(7);
  mac::PlmMessageReceiver receiver(16);
  int messages = 0;
  for (int i = 0; i < 100000; ++i) {
    if (receiver.PushBit(rng.NextBit()).has_value()) ++messages;
  }
  // 8-bit preamble in random bits: matches are expected (~1/256), the
  // receiver just hands the payload up — the announcement parser and
  // round sequence filtering reject garbage upstream.
  EXPECT_GT(messages, 0);
}

TEST(Fuzz, TagControllerOnRandomPulses) {
  Rng rng(8);
  mac::TagController controller(1);
  for (int i = 0; i < 20000; ++i) {
    controller.OnPulse({0.0, rng.NextDouble() * 3e-3});
    controller.OnSlotBoundary();
  }
  // Must end in a sane state whatever arrived.
  SUCCEED();
}

TEST(Fuzz, CsvEscapesQuotesAndCommas) {
  sim::TablePrinter table({"a,b", "c\"d"});
  table.AddRow({"1,2", "say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"c\"\"d\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Fuzz, CsvPlainCellsUnquoted) {
  sim::TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace freerider
