#include <gtest/gtest.h>

#include "tag/harvester.h"
#include "tag/power_model.h"

namespace freerider::tag {
namespace {

TEST(Harvester, EfficiencyMonotoneAndBounded) {
  double prev = 0.0;
  for (double p = -40.0; p <= 0.0; p += 1.0) {
    const double eff = HarvestEfficiency(p);
    EXPECT_GE(eff, prev - 1e-12);
    EXPECT_LE(eff, 0.28 + 1e-12);
    prev = eff;
  }
}

TEST(Harvester, DeadZoneYieldsNothing) {
  EXPECT_DOUBLE_EQ(HarvestEfficiency(-40.0), 0.0);
  EXPECT_DOUBLE_EQ(HarvestedPowerUw(-35.0), 0.0);
  EXPECT_DOUBLE_EQ(SustainableDutyCycle(-35.0, 30.0), 0.0);
}

TEST(Harvester, PeakEfficiencyAboveKnee) {
  EXPECT_NEAR(HarvestEfficiency(0.0), 0.28, 0.02);
  EXPECT_NEAR(HarvestEfficiency(-10.0), 0.28 / 2.0 * 2.0 * 0.5 * 2.0, 0.15);
}

TEST(Harvester, HarvestedPowerScalesWithInput) {
  // +10 dB of input is 10x the power; efficiency saturates above the
  // knee so harvested power grows ~10x there.
  const double a = HarvestedPowerUw(-5.0);
  const double b = HarvestedPowerUw(5.0);
  EXPECT_NEAR(b / a, 10.0, 1.5);
}

TEST(Harvester, DutyCycleClamped) {
  EXPECT_DOUBLE_EQ(SustainableDutyCycle(10.0, 1.0), 1.0);   // plenty
  EXPECT_GT(SustainableDutyCycle(-20.0, 30.0), 0.0);
  EXPECT_LT(SustainableDutyCycle(-20.0, 30.0), 0.2);
}

TEST(Harvester, SelfPoweredRangeOrdering) {
  const double load = EstimatePower(TranslatorKind::kWifiPhase, 20e6).total();
  const double weak = SelfPoweredRangeM(3.0, load);
  const double ap = SelfPoweredRangeM(14.0, load);
  const double strong = SelfPoweredRangeM(33.0, load);
  EXPECT_LE(weak, ap);
  EXPECT_LT(ap, strong);
  // A 30+ dBm EIRP source powers the tag out to meter scale; an AP at
  // ~14 dBm only to tens of centimeters.
  EXPECT_LT(ap, 1.0);
  EXPECT_GT(strong, 1.0);
}

TEST(Harvester, ZeroLoadAlwaysSustained) {
  EXPECT_DOUBLE_EQ(SustainableDutyCycle(-50.0, 0.0), 1.0);
}

}  // namespace
}  // namespace freerider::tag
