// Self-healing link supervisor (src/health/): model-based state-machine
// checks, the quarantine detection bound, the version-2 announcement
// extension codec, and byte-exact state serialization.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "health/supervisor.h"
#include "health/wire.h"
#include "mac/tag_mac.h"
#include "transport/ack.h"

using namespace freerider;
using health::HealthTransition;
using health::LinkSupervisor;
using health::RoundObservation;
using health::SupervisorConfig;
using health::TagHealth;
using health::TagRoundObservation;

namespace {

SupervisorConfig Enabled() {
  SupervisorConfig config;
  config.enabled = true;
  return config;
}

RoundObservation MakeObs(std::size_t round,
                         const std::vector<std::size_t>& frames_heard) {
  RoundObservation obs;
  obs.round = round;
  obs.singles = 0;
  for (std::size_t f : frames_heard) obs.singles += f;
  obs.tags.resize(frames_heard.size());
  for (std::size_t t = 0; t < frames_heard.size(); ++t) {
    obs.tags[t].frames_heard = frames_heard[t];
  }
  return obs;
}

/// The documented legal-transition table — the FSM may move along
/// these edges and no others. The misbehavior evidence channel adds
/// exactly one family of edges: an evidence-driven jump straight to
/// Quarantined from any other state (a flagrant offender must not get
/// to serve out Degraded/Probation first).
bool LegalTransition(TagHealth from, TagHealth to, bool misbehavior = false) {
  using H = TagHealth;
  if (misbehavior) return to == H::kQuarantined && from != H::kQuarantined;
  static const std::set<std::pair<H, H>> kLegal = {
      {H::kHealthy, H::kDegraded},    {H::kDegraded, H::kHealthy},
      {H::kDegraded, H::kProbation},  {H::kProbation, H::kRecovered},
      {H::kProbation, H::kQuarantined}, {H::kQuarantined, H::kRecovered},
      {H::kRecovered, H::kProbation}, {H::kRecovered, H::kHealthy}};
  return kLegal.count({from, to}) > 0;
}

RoundObservation MakeObsEv(std::size_t round,
                           const std::vector<std::size_t>& frames_heard,
                           const std::vector<std::size_t>& evidence) {
  RoundObservation obs = MakeObs(round, frames_heard);
  for (std::size_t t = 0; t < evidence.size(); ++t) {
    obs.tags[t].misbehavior_evidence = evidence[t];
  }
  return obs;
}

}  // namespace

// ----------------------------------------------------- detection bound

TEST(QuarantineBoundTest, MatchesDocumentedFormula) {
  SupervisorConfig config = Enabled();
  config.silent_to_probation = 6;
  config.probe_interval_rounds = 3;
  config.probe_response_rounds = 2;
  config.probe_failures_to_quarantine = 3;
  EXPECT_EQ(health::QuarantineDetectionBound(config), 6u + 3u * (3u + 2u) + 2u);
}

// ------------------------------------------------- model-based checks

// Random heard/silent sequences over several tags: every transition the
// supervisor logs must be an edge of the reference table, transitions
// into Probation must be preceded by the configured run of
// expected-but-silent rounds, and transitions into Recovered must
// coincide with a round the tag was actually heard.
TEST(HealthFsmModelTest, RandomSequencesFollowTheTransitionTable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t num_tags = 4;
    SupervisorConfig config = Enabled();
    LinkSupervisor sup(num_tags, config);
    Rng rng(seed * 977);

    std::vector<std::size_t> model_silent(num_tags, 0);
    std::vector<TagHealth> prev_state(num_tags, TagHealth::kHealthy);
    std::size_t transitions_seen = 0;

    for (std::size_t round = 0; round < 400; ++round) {
      std::vector<std::size_t> heard(num_tags, 0);
      std::vector<bool> expected(num_tags, false);
      for (std::size_t t = 0; t < num_tags; ++t) {
        const health::TagCommand cmd = sup.command(t);
        expected[t] = cmd.admit || cmd.probe;
        // Epochs of good and bad link keep every state reachable:
        // 60-round alternation per tag, plus per-round noise.
        const bool bad_epoch = ((round / 60) + t) % 2 == 1;
        const std::size_t loss_pct = bad_epoch ? 92 : 8;
        if (expected[t] && rng.NextBelow(100) >= loss_pct) heard[t] = 1;
      }
      sup.ObserveRound(MakeObs(round, heard));
      sup.BuildExtension();

      for (std::size_t t = 0; t < num_tags; ++t) {
        if (expected[t]) {
          model_silent[t] = heard[t] > 0 ? 0 : model_silent[t] + 1;
        }
      }
      const auto& log = sup.transitions();
      for (; transitions_seen < log.size(); ++transitions_seen) {
        const HealthTransition& tr = log[transitions_seen];
        ASSERT_LT(tr.tag_id - 1, num_tags);
        const std::size_t t = tr.tag_id - 1;
        EXPECT_TRUE(LegalTransition(tr.from, tr.to, tr.misbehavior))
            << "seed " << seed << " round " << tr.round << " tag "
            << int{tr.tag_id} << ": " << health::TagHealthName(tr.from)
            << " -> " << health::TagHealthName(tr.to);
        EXPECT_EQ(tr.from, prev_state[t]);
        prev_state[t] = tr.to;
        if (tr.to == TagHealth::kProbation) {
          EXPECT_GE(model_silent[t], config.silent_to_probation)
              << "seed " << seed << " round " << tr.round;
        }
        if (tr.to == TagHealth::kRecovered) {
          EXPECT_GT(heard[t], 0u)
              << "seed " << seed << " round " << tr.round;
        }
      }
      for (std::size_t t = 0; t < num_tags; ++t) {
        EXPECT_EQ(sup.health(t), prev_state[t]);
      }
    }
    // The schedule flips between good and bad epochs, so the machinery
    // must actually have engaged.
    EXPECT_GT(transitions_seen, 0u) << "seed " << seed;
  }
}

// Quarantined is reachable only from Probation and only once the
// probe-failure budget is exhausted: with a single tag the supervisor's
// global probe-failure counter is the tag's, so every transition into
// Quarantined must be preceded by >= probe_failures_to_quarantine fresh
// failures since Probation was entered.
TEST(HealthFsmModelTest, QuarantinedOnlyAfterProbeFailureBudget) {
  SupervisorConfig config = Enabled();
  LinkSupervisor sup(1, config);
  Rng rng(4242);

  std::size_t transitions_seen = 0;
  std::size_t failures_at_probation_entry = 0;
  for (std::size_t round = 0; round < 600; ++round) {
    const health::TagCommand cmd = sup.command(0);
    const bool expected = cmd.admit || cmd.probe;
    // Long silent stretches with occasional comebacks exercise the
    // full probation -> quarantine -> recovered cycle repeatedly.
    const bool silent_epoch = (round / 45) % 2 == 1;
    std::size_t heard = 0;
    if (expected && !silent_epoch && rng.NextBelow(100) < 80) heard = 1;
    sup.ObserveRound(MakeObs(round, {heard}));
    sup.BuildExtension();

    const auto& log = sup.transitions();
    for (; transitions_seen < log.size(); ++transitions_seen) {
      const HealthTransition& tr = log[transitions_seen];
      if (tr.to == TagHealth::kProbation) {
        failures_at_probation_entry = sup.stats().probe_failures;
      }
      if (tr.to == TagHealth::kQuarantined) {
        EXPECT_EQ(tr.from, TagHealth::kProbation);
        EXPECT_GE(sup.stats().probe_failures - failures_at_probation_entry,
                  config.probe_failures_to_quarantine)
            << "round " << tr.round;
      }
    }
  }
  EXPECT_GT(sup.stats().quarantines, 0u);
  EXPECT_GT(sup.stats().recoveries, 0u);
}

// ------------------------------------------ misbehavior evidence edges

TEST(MisbehaviorBoundTest, MatchesDocumentedFormula) {
  SupervisorConfig config = Enabled();
  // Defaults: alpha 0.4, threshold 0.7 -> ceil(ln 0.3 / ln 0.6) = 3
  // evidence rounds, doubled for every-other-round evidence, +4 slack.
  EXPECT_EQ(health::MisbehaviorDetectionBound(config), 10u);
  config.misbehavior_alpha = 0.5;
  EXPECT_EQ(health::MisbehaviorDetectionBound(config), 8u);
}

// Random heard/evidence sequences: every misbehavior-marked transition
// must be an evidence-driven jump to Quarantined (the one edge family
// the channel adds), scores stay in [0, 1], and a banned tag is parked
// for good — never admitted, never probed.
TEST(HealthFsmModelTest, MisbehaviorEdgesFollowTheExtendedTable) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t num_tags = 4;
    SupervisorConfig config = Enabled();
  config.policing_enabled = true;
    LinkSupervisor sup(num_tags, config);
    Rng rng(seed * 1511);

    std::vector<TagHealth> prev_state(num_tags, TagHealth::kHealthy);
    std::size_t transitions_seen = 0;
    std::size_t misbehavior_transitions = 0;

    for (std::size_t round = 0; round < 400; ++round) {
      std::vector<std::size_t> heard(num_tags, 0);
      std::vector<std::size_t> evidence(num_tags, 0);
      for (std::size_t t = 0; t < num_tags; ++t) {
        const health::TagCommand cmd = sup.command(t);
        if ((cmd.admit || cmd.probe) && rng.NextBelow(100) < 85) heard[t] = 1;
        // Tag 1 offends in bursts, tag 3 occasionally and flagrantly;
        // the others stay honest.
        if (t == 1 && (round / 25) % 3 == 1 && rng.NextBelow(100) < 70) {
          evidence[t] = 1 + rng.NextBelow(2);
        }
        if (t == 3 && rng.NextBelow(100) < 4) evidence[t] = 5;
      }
      sup.ObserveRound(MakeObsEv(round, heard, evidence));
      sup.BuildExtension();

      const auto& log = sup.transitions();
      for (; transitions_seen < log.size(); ++transitions_seen) {
        const HealthTransition& tr = log[transitions_seen];
        ASSERT_LT(tr.tag_id - 1, num_tags);
        const std::size_t t = tr.tag_id - 1;
        EXPECT_TRUE(LegalTransition(tr.from, tr.to, tr.misbehavior))
            << "seed " << seed << " round " << tr.round << " tag "
            << int{tr.tag_id} << ": " << health::TagHealthName(tr.from)
            << " -> " << health::TagHealthName(tr.to)
            << (tr.misbehavior ? " (misbehavior)" : "");
        EXPECT_EQ(tr.from, prev_state[t]);
        prev_state[t] = tr.to;
        if (tr.misbehavior) {
          ++misbehavior_transitions;
          EXPECT_GT(evidence[t] + 1, 1u);  // evidence this round drove it
        }
      }
      for (std::size_t t = 0; t < num_tags; ++t) {
        const double score = sup.misbehavior_score(t);
        EXPECT_GE(score, 0.0);
        EXPECT_LE(score, 1.0);
        if (sup.banned(t)) {
          EXPECT_FALSE(sup.command(t).admit);
          EXPECT_FALSE(sup.command(t).probe);
          EXPECT_EQ(sup.health(t), TagHealth::kQuarantined);
        }
        // Honest tags never accumulate score, let alone strikes.
        if (t == 0 || t == 2) {
          EXPECT_EQ(sup.misbehavior_score(t), 0.0);
          EXPECT_EQ(sup.misbehavior_strikes(t), 0u);
        }
      }
    }
    EXPECT_GT(misbehavior_transitions, 0u) << "seed " << seed;
    EXPECT_GE(sup.stats().misbehavior_quarantines, misbehavior_transitions)
        << "seed " << seed;
  }
}

// The bound's two legs: continuous evidence (the EWMA leg alone) and
// evidence landing only every other round (the doubling the formula
// prices in). Both must quarantine within MisbehaviorDetectionBound of
// the *first* evidence round.
TEST(MisbehaviorBoundTest, EvidenceQuarantinesWithinBound) {
  for (const std::size_t stride : {std::size_t{1}, std::size_t{2}}) {
    SupervisorConfig config = Enabled();
  config.policing_enabled = true;
    LinkSupervisor sup(1, config);
    const std::size_t first_evidence = 20;
    for (std::size_t round = 0; round < 80; ++round) {
      const bool offending =
          round >= first_evidence && (round - first_evidence) % stride == 0;
      sup.ObserveRound(MakeObsEv(round, {1}, {offending ? 1u : 0u}));
      sup.BuildExtension();
    }
    std::size_t quarantine_round = 0;
    bool found = false;
    for (const HealthTransition& tr : sup.transitions()) {
      if (tr.to == TagHealth::kQuarantined && tr.misbehavior) {
        quarantine_round = tr.round;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "stride " << stride;
    EXPECT_LE(quarantine_round - first_evidence + 1,
              health::MisbehaviorDetectionBound(config))
        << "stride " << stride;
    EXPECT_GE(sup.stats().misbehavior_quarantines, 1u);
  }
}

// A flagrant burst (evidence >= flagrant_evidence in one round) must
// not wait for the EWMA to integrate: the score saturates and the tag
// is quarantined immediately, even straight out of Healthy.
TEST(MisbehaviorBoundTest, FlagrantEvidenceQuarantinesImmediately) {
  SupervisorConfig config = Enabled();
  config.policing_enabled = true;
  LinkSupervisor sup(1, config);
  for (std::size_t round = 0; round < 5; ++round) {
    sup.ObserveRound(MakeObsEv(round, {1}, {0}));
    sup.BuildExtension();
  }
  sup.ObserveRound(MakeObsEv(5, {1}, {config.flagrant_evidence}));
  sup.BuildExtension();
  EXPECT_EQ(sup.health(0), TagHealth::kQuarantined);
  ASSERT_FALSE(sup.transitions().empty());
  const HealthTransition& tr = sup.transitions().back();
  EXPECT_TRUE(tr.misbehavior);
  EXPECT_EQ(tr.from, TagHealth::kHealthy);
  EXPECT_EQ(tr.round, 5u);
}

// Strike escalation: offend -> quarantine (strike 1) -> rehabilitate
// through decay, probation probes and readmission -> offend again ->
// strike 2 -> banned. A banned tag is parked forever: no admit, no
// probes, no way back.
TEST(HealthFsmTest, RepeatOffenderIsBannedForGood) {
  SupervisorConfig config = Enabled();
  config.policing_enabled = true;
  ASSERT_EQ(config.misbehavior_strikes_to_ban, 2u);
  LinkSupervisor sup(1, config);
  std::size_t round = 0;
  // An honest tag answering whenever the coordinator wants it.
  const auto drive = [&](std::size_t evidence) {
    const health::TagCommand cmd = sup.command(0);
    const std::size_t heard = (cmd.admit || cmd.probe) ? 1u : 0u;
    sup.ObserveRound(MakeObsEv(round++, {heard}, {evidence}));
    sup.BuildExtension();
  };
  for (; round < 10;) drive(0);
  // First offense: evidence until the misbehavior quarantine lands.
  while (sup.health(0) != TagHealth::kQuarantined) {
    ASSERT_LT(round, 60u);
    drive(1);
  }
  EXPECT_EQ(sup.misbehavior_strikes(0), 1u);
  EXPECT_FALSE(sup.banned(0));
  // Clean conduct: the score decays, the hold lifts, probes resume and
  // the tag earns readmission.
  while (sup.health(0) == TagHealth::kQuarantined) {
    ASSERT_LT(round, 300u);
    drive(0);
  }
  EXPECT_EQ(sup.health(0), TagHealth::kRecovered);
  // Relapse: the second strike is the last.
  while (!sup.banned(0)) {
    ASSERT_LT(round, 400u);
    drive(1);
  }
  EXPECT_EQ(sup.misbehavior_strikes(0), 2u);
  EXPECT_EQ(sup.health(0), TagHealth::kQuarantined);
  EXPECT_GE(sup.stats().misbehavior_quarantines, 2u);
  // Parked for good: whatever happens on the air, the ban holds.
  const std::size_t banned_at = round;
  for (; round < banned_at + 100;) drive(0);
  EXPECT_TRUE(sup.banned(0));
  EXPECT_EQ(sup.health(0), TagHealth::kQuarantined);
  EXPECT_FALSE(sup.command(0).admit);
  EXPECT_FALSE(sup.command(0).probe);
  EXPECT_EQ(sup.admitted_tags(), 0u);
}

// Misbehavior state (scores, strikes, bans, hold) is part of the
// snapshot contract: a restored supervisor continues bit-identically
// through an offense cycle in progress.
TEST(SupervisorSerializeTest, MisbehaviorStateSurvivesSnapshot) {
  const std::size_t num_tags = 2;
  SupervisorConfig config = Enabled();
  config.policing_enabled = true;
  LinkSupervisor original(num_tags, config);
  std::size_t round = 0;
  const auto drive = [&round, num_tags](LinkSupervisor& sup,
                                        std::size_t at) {
    std::vector<std::size_t> heard(num_tags, 0);
    for (std::size_t t = 0; t < num_tags; ++t) {
      const health::TagCommand cmd = sup.command(t);
      heard[t] = (cmd.admit || cmd.probe) ? 1u : 0u;
    }
    // Tag 1 offends in a 30-round cycle: quarantine, decay, relapse.
    std::vector<std::size_t> evidence(num_tags, 0);
    if (at % 30 < 6) evidence[1] = 1;
    sup.ObserveRound(MakeObsEv(at, heard, evidence));
    sup.BuildExtension();
  };
  // Stop mid-cycle with a live score and at least one strike on tag 1.
  for (; round < 40; ++round) drive(original, round);
  EXPECT_GE(original.misbehavior_strikes(1), 1u);
  EXPECT_GT(original.misbehavior_score(1), 0.0);
  const std::string snapshot = original.Serialize();

  LinkSupervisor restored(num_tags, config);
  ASSERT_TRUE(restored.Deserialize(snapshot));
  EXPECT_EQ(restored.Serialize(), snapshot);
  for (std::size_t r2 = round; r2 < round + 120; ++r2) {
    drive(original, r2);
    drive(restored, r2);
    ASSERT_EQ(original.Serialize(), restored.Serialize())
        << "diverged at round " << r2;
    ASSERT_EQ(original.misbehavior_score(1), restored.misbehavior_score(1));
  }
  EXPECT_EQ(original.banned(1), restored.banned(1));
  EXPECT_EQ(original.misbehavior_strikes(1), restored.misbehavior_strikes(1));
}

TEST(HealthFsmTest, DeadTagQuarantinedWithinBound) {
  SupervisorConfig config = Enabled();
  LinkSupervisor sup(2, config);
  const std::size_t dead_round = 30;
  for (std::size_t round = 0; round < 100; ++round) {
    const std::size_t tag0_heard = round < dead_round ? 1 : 0;
    sup.ObserveRound(MakeObs(round, {tag0_heard, 1}));
    sup.BuildExtension();
  }
  std::size_t quarantine_round = 0;
  bool found = false;
  for (const HealthTransition& tr : sup.transitions()) {
    if (tr.tag_id == 1 && tr.to == TagHealth::kQuarantined) {
      quarantine_round = tr.round;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_LE(quarantine_round,
            dead_round - 1 + health::QuarantineDetectionBound(config));
  EXPECT_EQ(sup.health(0), TagHealth::kQuarantined);
  // The healthy neighbour never left Healthy.
  EXPECT_EQ(sup.health(1), TagHealth::kHealthy);
  // A quarantined tag is parked: not admitted, max boost for probes.
  EXPECT_FALSE(sup.command(0).admit);
  EXPECT_TRUE(sup.command(1).admit);
  EXPECT_EQ(sup.admitted_tags(), 1u);
}

TEST(HealthFsmTest, QuarantinedTagRecoversAndIsReadmittedOnce) {
  SupervisorConfig config = Enabled();
  config.quarantine_reprobe_rounds = 5;
  LinkSupervisor sup(1, config);
  std::size_t round = 0;
  // Heard, then dead long enough to be quarantined.
  for (; round < 10; ++round) {
    sup.ObserveRound(MakeObs(round, {1}));
    sup.BuildExtension();
  }
  while (sup.health(0) != TagHealth::kQuarantined) {
    ASSERT_LT(round, 200u);
    sup.ObserveRound(MakeObs(round++, {0}));
    sup.BuildExtension();
  }
  (void)sup.TakeFreshQuarantines();
  // The tag comes back: the next answered probe readmits it.
  std::vector<std::size_t> readmitted;
  while (sup.health(0) == TagHealth::kQuarantined) {
    ASSERT_LT(round, 400u);
    sup.ObserveRound(MakeObs(round++, {1}));
    sup.BuildExtension();
    const auto fresh = sup.TakeFreshReadmissions();
    readmitted.insert(readmitted.end(), fresh.begin(), fresh.end());
  }
  EXPECT_EQ(sup.health(0), TagHealth::kRecovered);
  ASSERT_EQ(readmitted.size(), 1u);
  EXPECT_EQ(readmitted[0], 0u);
  // Consumed on read: a second take is empty.
  EXPECT_TRUE(sup.TakeFreshReadmissions().empty());
  // Sustained clean service completes the recovery.
  for (std::size_t i = 0; i < 4 * config.recovered_hold_rounds; ++i) {
    sup.ObserveRound(MakeObs(round++, {1}));
    sup.BuildExtension();
  }
  EXPECT_EQ(sup.health(0), TagHealth::kHealthy);
  EXPECT_GE(sup.stats().readmissions, 1u);
}

// --------------------------------------------------- state snapshots

TEST(SupervisorSerializeTest, SnapshotContinuesBitIdentically) {
  const std::size_t num_tags = 3;
  SupervisorConfig config = Enabled();
  LinkSupervisor original(num_tags, config);
  Rng rng(777);

  auto step = [&](LinkSupervisor& sup, Rng& r, std::size_t round) {
    std::vector<std::size_t> heard(num_tags, 0);
    for (std::size_t t = 0; t < num_tags; ++t) {
      const bool bad = ((round / 40) + t) % 2 == 0;
      if (r.NextBelow(100) < (bad ? 15u : 85u)) heard[t] = 1;
    }
    sup.ObserveRound(MakeObs(round, heard));
    return sup.BuildExtension();
  };

  std::size_t round = 0;
  for (; round < 120; ++round) step(original, rng, round);
  const std::string snapshot = original.Serialize();
  const std::uint64_t rng_fork_seed = 31337;

  LinkSupervisor restored(num_tags, config);
  ASSERT_TRUE(restored.Deserialize(snapshot));
  EXPECT_EQ(restored.Serialize(), snapshot);

  Rng rng_a(rng_fork_seed);
  Rng rng_b(rng_fork_seed);
  for (std::size_t r2 = round; r2 < round + 120; ++r2) {
    const health::HealthExtension ext_a = step(original, rng_a, r2);
    const health::HealthExtension ext_b = step(restored, rng_b, r2);
    ASSERT_EQ(ext_a, ext_b) << "diverged at round " << r2;
  }
  EXPECT_EQ(original.Serialize(), restored.Serialize());
}

TEST(SupervisorSerializeTest, RejectsCorruptPayloads) {
  SupervisorConfig config = Enabled();
  LinkSupervisor sup(2, config);
  for (std::size_t round = 0; round < 40; ++round) {
    sup.ObserveRound(MakeObs(round, {round % 3 == 0 ? 0u : 1u, 1u}));
    sup.BuildExtension();
  }
  const std::string good = sup.Serialize();

  LinkSupervisor victim(2, config);
  // Truncations at every prefix length must be rejected, never crash.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(victim.Deserialize(good.substr(0, cut))) << "cut " << cut;
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(victim.Deserialize(good + std::string(1, '\0')));
  // A snapshot for a different fleet size never loads.
  LinkSupervisor wrong_size(3, config);
  EXPECT_FALSE(wrong_size.Deserialize(good));
  // And a rejected load leaves the victim fully functional.
  ASSERT_TRUE(victim.Deserialize(good));
  EXPECT_EQ(victim.Serialize(), good);
}

// -------------------------------------------------------- wire format

TEST(HealthWireTest, RoundTripsAcksAndCommands) {
  mac::RoundAnnouncement round;
  round.slots = 9;
  round.sequence = 123;
  transport::AckExtension acks;
  for (std::size_t i = 0; i < health::kMaxAckBlocksV2; ++i) {
    acks.acks.push_back({static_cast<std::uint8_t>(i + 1),
                         static_cast<std::uint8_t>(40 * i + 7),
                         static_cast<std::uint16_t>(0xC3A5u >> i)});
  }
  health::HealthExtension cmds;
  for (std::size_t i = 0; i < health::kMaxHealthBlocks; ++i) {
    health::TagCommand cmd;
    cmd.tag_id = static_cast<std::uint8_t>(i + 1);
    cmd.admit = i % 2 == 0;
    cmd.probe = i % 3 == 0;
    cmd.boost_steps = static_cast<std::uint8_t>(i % (health::kMaxBoostSteps + 1));
    cmds.commands.push_back(cmd);
  }
  const BitVector payload =
      health::BuildAnnouncementHealth(round, acks, cmds);
  const auto parsed = health::ParseAnnouncementHealth(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ext_rejected);
  EXPECT_EQ(parsed->round.slots, round.slots);
  EXPECT_EQ(parsed->round.sequence, round.sequence);
  ASSERT_TRUE(parsed->acks.has_value());
  ASSERT_EQ(parsed->acks->acks.size(), acks.acks.size());
  for (std::size_t i = 0; i < acks.acks.size(); ++i) {
    EXPECT_EQ(parsed->acks->acks[i].tag_id, acks.acks[i].tag_id);
    EXPECT_EQ(parsed->acks->acks[i].cumulative, acks.acks[i].cumulative);
    EXPECT_EQ(parsed->acks->acks[i].nack_bitmap, acks.acks[i].nack_bitmap);
  }
  ASSERT_TRUE(parsed->health.has_value());
  EXPECT_EQ(parsed->health->commands, cmds.commands);
}

TEST(HealthWireTest, DropsBlocksBeyondTheCaps) {
  mac::RoundAnnouncement round;
  round.slots = 4;
  round.sequence = 1;
  transport::AckExtension acks;
  for (std::size_t i = 0; i < health::kMaxAckBlocksV2 + 3; ++i) {
    acks.acks.push_back({static_cast<std::uint8_t>(i + 1), 0, 0});
  }
  health::HealthExtension cmds;
  for (std::size_t i = 0; i < health::kMaxHealthBlocks + 3; ++i) {
    health::TagCommand cmd;
    cmd.tag_id = static_cast<std::uint8_t>(i + 1);
    cmds.commands.push_back(cmd);
  }
  const auto parsed = health::ParseAnnouncementHealth(
      health::BuildAnnouncementHealth(round, acks, cmds));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->acks.has_value());
  ASSERT_TRUE(parsed->health.has_value());
  EXPECT_EQ(parsed->acks->acks.size(), health::kMaxAckBlocksV2);
  EXPECT_EQ(parsed->health->commands.size(), health::kMaxHealthBlocks);
}

// Every single-bit corruption of the extension is either caught by the
// CRC (ext_rejected, good prefix) or hits the prefix itself — it must
// never parse as a *different* valid extension.
TEST(HealthWireTest, SingleBitFlipsNeverForgeAnExtension) {
  mac::RoundAnnouncement round;
  round.slots = 7;
  round.sequence = 55;
  transport::AckExtension acks;
  acks.acks.push_back({1, 10, 0x0003});
  health::HealthExtension cmds;
  health::TagCommand cmd;
  cmd.tag_id = 2;
  cmd.admit = false;
  cmd.probe = true;
  cmd.boost_steps = 3;
  cmds.commands.push_back(cmd);
  const BitVector payload =
      health::BuildAnnouncementHealth(round, acks, cmds);
  const std::size_t prefix_bits = 16;
  for (std::size_t bit = prefix_bits; bit < payload.size(); ++bit) {
    BitVector corrupted = payload;
    corrupted[bit] ^= 1;
    const auto parsed = health::ParseAnnouncementHealth(corrupted);
    ASSERT_TRUE(parsed.has_value()) << "bit " << bit;
    EXPECT_TRUE(parsed->ext_rejected) << "bit " << bit;
    EXPECT_FALSE(parsed->acks.has_value()) << "bit " << bit;
    EXPECT_FALSE(parsed->health.has_value()) << "bit " << bit;
    EXPECT_EQ(parsed->round.slots, round.slots);
    EXPECT_EQ(parsed->round.sequence, round.sequence);
  }
}

TEST(HealthWireTest, LegacyAndVersion1PayloadsStillParse) {
  mac::RoundAnnouncement round;
  round.slots = 11;
  round.sequence = 77;
  // Bare 16-bit legacy announcement: no extension, nothing rejected.
  const auto legacy = health::ParseAnnouncementHealth(
      mac::BuildAnnouncement(round));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_FALSE(legacy->ext_rejected);
  EXPECT_FALSE(legacy->acks.has_value());
  EXPECT_FALSE(legacy->health.has_value());
  EXPECT_EQ(legacy->round.slots, round.slots);

  // Version-1 (pure ACK) extension from a pre-supervisor coordinator:
  // the upgraded receiver still gets the ACK feedback.
  transport::AckExtension acks;
  acks.acks.push_back({3, 200, 0x00F0});
  const auto v1 = health::ParseAnnouncementHealth(
      transport::BuildAnnouncementExtended(round, acks));
  ASSERT_TRUE(v1.has_value());
  EXPECT_FALSE(v1->ext_rejected);
  ASSERT_TRUE(v1->acks.has_value());
  ASSERT_EQ(v1->acks->acks.size(), 1u);
  EXPECT_EQ(v1->acks->acks[0].tag_id, 3);
  EXPECT_EQ(v1->acks->acks[0].cumulative, 200);
  EXPECT_FALSE(v1->health.has_value());
}
