// Fault-injection subsystem tests: every fault class must (a) leave a
// disabled run bit-for-bit identical to the un-impaired simulator,
// (b) be deterministic from the simulation seed, and (c) degrade the
// link without ever crashing or producing NaN/inf statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/redundancy.h"
#include "impair/impair.h"
#include "sim/link.h"
#include "sim/multitag.h"

namespace freerider::sim {
namespace {

LinkConfig BaseLink(core::RadioType radio = core::RadioType::kWifi,
                    double distance = 5.0, std::size_t packets = 5) {
  LinkConfig config;
  config.radio = radio;
  config.deployment = channel::LosDeployment();
  config.tag_to_rx_m = distance;
  config.num_packets = packets;
  config.profile = DefaultProfile(radio);
  config.profile.excitation_payload_bytes = 200;  // keep tests fast
  return config;
}

void ExpectSaneStats(const LinkStats& stats) {
  EXPECT_TRUE(std::isfinite(stats.packet_reception_rate));
  EXPECT_TRUE(std::isfinite(stats.tag_ber));
  EXPECT_TRUE(std::isfinite(stats.tag_throughput_bps));
  EXPECT_TRUE(std::isfinite(stats.rssi_dbm));
  EXPECT_TRUE(std::isfinite(stats.snr_db));
  EXPECT_GE(stats.packet_reception_rate, 0.0);
  EXPECT_LE(stats.packet_reception_rate, 1.0);
  EXPECT_GE(stats.tag_ber, 0.0);
  EXPECT_LE(stats.tag_ber, 1.0);
  EXPECT_GE(stats.tag_throughput_bps, 0.0);
  EXPECT_LE(stats.packets_decoded, stats.packets_attempted);
}

void ExpectIdentical(const LinkStats& a, const LinkStats& b) {
  EXPECT_EQ(a.packets_attempted, b.packets_attempted);
  EXPECT_EQ(a.packets_decoded, b.packets_decoded);
  EXPECT_EQ(a.redundancy_used, b.redundancy_used);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  // Doubles compared bit-for-bit on purpose: same seed, same code
  // path, same arithmetic — anything else is nondeterminism.
  EXPECT_EQ(a.packet_reception_rate, b.packet_reception_rate);
  EXPECT_EQ(a.tag_ber, b.tag_ber);
  EXPECT_EQ(a.tag_throughput_bps, b.tag_throughput_bps);
  EXPECT_EQ(a.rssi_dbm, b.rssi_dbm);
  EXPECT_EQ(a.snr_db, b.snr_db);
}

// ------------------------------------------------ baseline preservation

TEST(Impair, DisabledConfigIsBitForBitBaseline) {
  // A config whose fault classes carry aggressive parameters but are
  // all *disabled* must not draw a single random number: the result
  // equals the default (no impairment structure at all).
  LinkConfig plain = BaseLink();
  LinkConfig armed_but_off = BaseLink();
  armed_but_off.impairments.cfo.cfo_hz = 50e3;
  armed_but_off.impairments.cfo.tag_clock_ppm = 20000.0;
  armed_but_off.impairments.interferer.burst_probability = 1.0;
  armed_but_off.impairments.dropout.dropout_probability = 1.0;
  armed_but_off.impairments.envelope.miss_probability = 1.0;
  ASSERT_FALSE(armed_but_off.impairments.AnyEnabled());

  Rng rng_a(77);
  Rng rng_b(77);
  const LinkStats a = SimulateTagLink(plain, rng_a);
  const LinkStats b = SimulateTagLink(armed_but_off, rng_b);
  ExpectIdentical(a, b);
  EXPECT_EQ(a.faults_injected, 0u);
  EXPECT_EQ(a.fault_counters.total(), 0u);
}

TEST(Impair, DisabledConfigAdaptiveBaseline) {
  LinkConfig plain = BaseLink(core::RadioType::kWifi, 3.0, 4);
  LinkConfig off = plain;
  off.impairments.dropout.dropout_probability = 1.0;  // disabled anyway
  Rng rng_a(5);
  Rng rng_b(5);
  ExpectIdentical(SimulateTagLinkAdaptive(plain, rng_a, 3),
                  SimulateTagLinkAdaptive(off, rng_b, 3));
}

TEST(Impair, FullStackDisabledConfigBaseline) {
  FullStackConfig plain;
  plain.num_tags = 2;
  plain.rounds = 2;
  plain.excitation_payload_bytes = 150;
  FullStackConfig off = plain;
  off.impairments.interferer.burst_probability = 1.0;  // not enabled
  Rng rng_a(9);
  Rng rng_b(9);
  const FullStackStats a = RunFullStackCampaign(plain, rng_a);
  const FullStackStats b = RunFullStackCampaign(off, rng_b);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.goodput_bps, b.goodput_bps);
  EXPECT_EQ(a.observed_collisions, b.observed_collisions);
  EXPECT_EQ(a.faults_injected, 0u);
  EXPECT_EQ(b.faults_injected, 0u);
}

// ------------------------------------------------------- determinism

TEST(Impair, IdenticalSeedsIdenticalStatsUnderInjection) {
  LinkConfig config = BaseLink();
  config.impairments.cfo.enabled = true;
  config.impairments.cfo.cfo_hz = 2e3;
  config.impairments.cfo.cfo_sigma_hz = 500.0;
  config.impairments.cfo.tag_clock_ppm = 5000.0;
  config.impairments.interferer.enabled = true;
  config.impairments.interferer.burst_probability = 0.5;
  config.impairments.dropout.enabled = true;
  config.impairments.dropout.dropout_probability = 0.4;

  Rng rng_a(123);
  Rng rng_b(123);
  const LinkStats a = SimulateTagLink(config, rng_a);
  const LinkStats b = SimulateTagLink(config, rng_b);
  ExpectIdentical(a, b);
  EXPECT_EQ(a.fault_counters.cfo_rotations, b.fault_counters.cfo_rotations);
  EXPECT_EQ(a.fault_counters.interferer_bursts,
            b.fault_counters.interferer_bursts);
  EXPECT_EQ(a.fault_counters.excitation_dropouts,
            b.fault_counters.excitation_dropouts);
}

TEST(Impair, FullStackDeterministicUnderInjection) {
  FullStackConfig config;
  config.num_tags = 2;
  config.rounds = 3;
  config.excitation_payload_bytes = 150;
  config.impairments.envelope.enabled = true;
  config.impairments.envelope.miss_probability = 0.2;
  config.impairments.envelope.spurious_probability = 0.2;
  config.impairments.dropout.enabled = true;
  config.impairments.dropout.dropout_probability = 0.3;

  Rng rng_a(31);
  Rng rng_b(31);
  const FullStackStats a = RunFullStackCampaign(config, rng_a);
  const FullStackStats b = RunFullStackCampaign(config, rng_b);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.desync_events, b.desync_events);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.goodput_bps, b.goodput_bps);
}

// ----------------------------------------------- fault classes: link

TEST(Impair, CfoAndDriftInjectsAndStaysSane) {
  LinkConfig config = BaseLink();
  config.impairments.cfo.enabled = true;
  config.impairments.cfo.cfo_hz = 10e3;
  config.impairments.cfo.tag_clock_ppm = 20000.0;  // 2% ring oscillator
  config.impairments.cfo.start_slip_sigma_samples = 40.0;
  Rng rng(11);
  const LinkStats stats = SimulateTagLink(config, rng);
  ExpectSaneStats(stats);
  EXPECT_GT(stats.fault_counters.cfo_rotations, 0u);
  EXPECT_GT(stats.fault_counters.window_slips, 0u);
  EXPECT_GT(stats.faults_injected, 0u);
}

TEST(Impair, HeavyClockDriftCorruptsTagBits) {
  // 2% clock error slides the window boundaries by whole windows over
  // a frame: the decoded tag stream must be visibly worse than the
  // clean run's (which is error-free at 5 m).
  LinkConfig clean = BaseLink();
  LinkConfig drifted = BaseLink();
  drifted.impairments.cfo.enabled = true;
  drifted.impairments.cfo.tag_clock_ppm = 20000.0;
  Rng rng_a(13);
  Rng rng_b(13);
  const LinkStats clean_stats = SimulateTagLink(clean, rng_a);
  const LinkStats drift_stats = SimulateTagLink(drifted, rng_b);
  ExpectSaneStats(drift_stats);
  EXPECT_GT(drift_stats.tag_ber, clean_stats.tag_ber);
}

TEST(Impair, InterfererBurstInjectsAndStaysSane) {
  LinkConfig config = BaseLink();
  config.impairments.interferer.enabled = true;
  config.impairments.interferer.burst_probability = 1.0;
  config.impairments.interferer.burst_power_dbm = -65.0;
  config.impairments.interferer.min_fraction = 0.2;
  config.impairments.interferer.max_fraction = 0.5;
  Rng rng(17);
  const LinkStats stats = SimulateTagLink(config, rng);
  ExpectSaneStats(stats);
  EXPECT_EQ(stats.fault_counters.interferer_bursts, stats.packets_attempted);
}

TEST(Impair, ExcitationDropoutCorruptsTagStreamGracefully) {
  // The frame's head (preamble, header) survives a mid-frame dropout,
  // so the receiver still syncs — the damage lands on the tag bits
  // riding the silenced tail, which decode from pure noise.
  LinkConfig clean = BaseLink();
  LinkConfig config = BaseLink();
  config.impairments.dropout.enabled = true;
  config.impairments.dropout.dropout_probability = 1.0;
  config.impairments.dropout.min_keep_fraction = 0.1;
  config.impairments.dropout.max_keep_fraction = 0.3;
  Rng rng_a(19);
  Rng rng_b(19);
  const LinkStats clean_stats = SimulateTagLink(clean, rng_a);
  const LinkStats stats = SimulateTagLink(config, rng_b);
  ExpectSaneStats(stats);
  EXPECT_EQ(stats.fault_counters.excitation_dropouts,
            stats.packets_attempted);
  EXPECT_GT(stats.tag_ber, clean_stats.tag_ber);
  EXPECT_LT(stats.tag_throughput_bps, clean_stats.tag_throughput_bps);
}

TEST(Impair, AllFaultClassesAtOnceOnEveryRadio) {
  for (core::RadioType radio :
       {core::RadioType::kWifi, core::RadioType::kZigbee,
        core::RadioType::kBluetooth}) {
    LinkConfig config = BaseLink(radio, 4.0, 4);
    config.impairments.cfo.enabled = true;
    config.impairments.cfo.cfo_hz = 5e3;
    config.impairments.cfo.tag_clock_ppm = 8000.0;
    config.impairments.cfo.start_slip_sigma_samples = 20.0;
    config.impairments.interferer.enabled = true;
    config.impairments.interferer.burst_probability = 0.6;
    config.impairments.dropout.enabled = true;
    config.impairments.dropout.dropout_probability = 0.4;
    Rng rng(23);
    const LinkStats stats = SimulateTagLink(config, rng);
    ExpectSaneStats(stats);
    EXPECT_GT(stats.faults_injected, 0u) << "radio " << static_cast<int>(radio);
  }
}

// ------------------------------------- graceful adaptive degradation

TEST(Impair, AdaptiveFallsBackToMaxRedundancyWhenNothingDecodes) {
  // Way past the sensitivity gate nothing ever decodes; the adaptive
  // probe must degrade to the most redundant rung instead of the
  // fastest, and every statistic must stay finite.
  LinkConfig config = BaseLink(core::RadioType::kBluetooth, 60.0, 4);
  Rng rng(29);
  const LinkStats stats = SimulateTagLinkAdaptive(config, rng, 2);
  ExpectSaneStats(stats);
  EXPECT_EQ(stats.packets_decoded, 0u);
  EXPECT_DOUBLE_EQ(stats.tag_throughput_bps, 0.0);
  EXPECT_EQ(stats.redundancy_used,
            core::RedundancyLadder(core::RadioType::kBluetooth).back());
}

TEST(Impair, AdaptiveSurvivesTotalDropout) {
  LinkConfig config = BaseLink(core::RadioType::kWifi, 3.0, 4);
  config.impairments.dropout.enabled = true;
  config.impairments.dropout.dropout_probability = 1.0;
  config.impairments.dropout.min_keep_fraction = 0.02;
  config.impairments.dropout.max_keep_fraction = 0.05;
  Rng rng(37);
  const LinkStats stats = SimulateTagLinkAdaptive(config, rng, 2);
  ExpectSaneStats(stats);
  // With 95-98% of every frame gone, nothing should decode — and the
  // controller must fall to the safest rung without dividing by zero.
  EXPECT_EQ(stats.packets_decoded, 0u);
  EXPECT_EQ(stats.redundancy_used,
            core::RedundancyLadder(core::RadioType::kWifi).back());
}

// -------------------------------------------- fault classes: full stack

TEST(Impair, EnvelopeFaultsPerturbPlmButCampaignCompletes) {
  FullStackConfig config;
  config.num_tags = 3;
  config.rounds = 4;
  config.excitation_payload_bytes = 150;
  config.impairments.envelope.enabled = true;
  config.impairments.envelope.miss_probability = 0.3;
  config.impairments.envelope.spurious_probability = 0.3;
  config.impairments.envelope.extra_jitter_s = 10e-6;
  Rng rng(41);
  const FullStackStats stats = RunFullStackCampaign(config, rng);
  EXPECT_EQ(stats.rounds, 4u);
  EXPECT_TRUE(std::isfinite(stats.goodput_bps));
  EXPECT_GE(stats.goodput_bps, 0.0);
  EXPECT_TRUE(std::isfinite(stats.jain_fairness));
  EXPECT_GT(stats.fault_counters.pulses_dropped +
                stats.fault_counters.pulses_spurious +
                stats.fault_counters.pulses_jittered,
            0u);
}

TEST(Impair, FullStackSurvivesCombinedFaults) {
  FullStackConfig config;
  config.num_tags = 3;
  config.rounds = 5;
  config.excitation_payload_bytes = 150;
  config.impairments.envelope.enabled = true;
  config.impairments.envelope.miss_probability = 0.4;
  config.impairments.dropout.enabled = true;
  config.impairments.dropout.dropout_probability = 0.5;
  config.impairments.interferer.enabled = true;
  config.impairments.interferer.burst_probability = 0.5;
  config.impairments.interferer.burst_power_dbm = -60.0;
  config.impairments.cfo.enabled = true;
  config.impairments.cfo.tag_clock_ppm = 5000.0;
  Rng rng(43);
  const FullStackStats stats = RunFullStackCampaign(config, rng);
  EXPECT_EQ(stats.rounds, 5u);
  EXPECT_TRUE(std::isfinite(stats.goodput_bps));
  EXPECT_TRUE(std::isfinite(stats.airtime_s));
  EXPECT_GT(stats.faults_injected, 0u);
  for (std::size_t d : stats.per_tag_deliveries) {
    EXPECT_LE(d, config.rounds * 2);
  }
}

}  // namespace
}  // namespace freerider::sim
