// Integration tests: cross-module flows exercising the public API the
// way the examples and benches do — multi-packet tag streams, adaptive
// redundancy loops, the MAC-to-tag control path, and failure injection
// (truncated captures, corrupted fields, wrong channels).
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/rng.h"
#include "core/redundancy.h"
#include "core/tag_frame.h"
#include "core/translator.h"
#include "core/xor_decoder.h"
#include "mac/plm.h"
#include "mac/repacketizer.h"
#include "mac/slotted_aloha.h"
#include "phy80211/mpdu.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"
#include "phy802154/frame.h"
#include "phyble/frame.h"
#include "sim/link.h"
#include "tag/envelope_detector.h"

namespace freerider {
namespace {

// ------------------------------------------------- multi-packet streams

/// Deliver a framed tag message over consecutive WiFi excitation frames
/// and reassemble it at the decoder.
TEST(Integration, TagFrameAcrossMultipleWifiPackets) {
  Rng rng(1);
  const Bytes message = RandomBytes(rng, 40);
  const BitVector stream = core::EncodeTagFrame(message);

  core::TranslateConfig tcfg;  // WiFi N=4
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = phy80211::kSampleRateHz;
  fe.noise_figure_db = 5.0;

  BitVector received;
  std::size_t sent = 0;
  int packets = 0;
  while (sent < stream.size() && packets < 20) {
    ++packets;
    const phy80211::TxFrame frame =
        phy80211::BuildFrame(RandomBytes(rng, 500), {});
    const std::size_t cap = core::TagBitCapacity(frame.waveform.size(), tcfg);
    BitVector chunk(stream.begin() + static_cast<std::ptrdiff_t>(sent),
                    stream.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(sent + cap, stream.size())));
    sent += chunk.size();
    const IqBuffer bs = core::Translate(
        channel::ToAbsolutePower(frame.waveform, -75.0), chunk, tcfg);
    IqBuffer padded(120, Cplx{0.0, 0.0});
    padded.insert(padded.end(), bs.begin(), bs.end());
    const phy80211::RxResult rx =
        phy80211::ReceiveFrame(channel::AddThermalNoise(padded, fe, rng));
    ASSERT_TRUE(rx.signal_ok);
    const core::TagDecodeResult decoded = core::DecodeWifi(
        frame.data_bits, rx.data_bits,
        phy80211::ParamsFor(frame.rate).data_bits_per_symbol, tcfg.redundancy);
    // Only the bits actually carried in this frame are meaningful.
    received.insert(received.end(), decoded.bits.begin(),
                    decoded.bits.begin() +
                        static_cast<std::ptrdiff_t>(chunk.size()));
  }
  ASSERT_EQ(received.size(), stream.size());
  const auto frames = core::ExtractTagFrames(received);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].crc_ok);
  EXPECT_EQ(frames[0].payload, message);
}

/// The adaptive redundancy controller settles at a higher N on a noisy
/// link and back at the base N on a clean one, end to end.
TEST(Integration, AdaptiveControllerConvergesEndToEnd) {
  Rng rng(2);
  core::AdaptiveRedundancyConfig acfg;
  acfg.lower_after_successes = 3;
  core::AdaptiveRedundancy controller(core::RadioType::kWifi, acfg);

  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = phy80211::kSampleRateHz;
  fe.noise_figure_db = 5.0;

  auto run_exchange = [&](double rx_dbm) {
    const phy80211::TxFrame frame =
        phy80211::BuildFrame(RandomBytes(rng, 300), {});
    core::TranslateConfig tcfg;
    tcfg.redundancy = controller.current();
    const BitVector bits =
        RandomBits(rng, core::TagBitCapacity(frame.waveform.size(), tcfg));
    const IqBuffer bs = core::Translate(
        channel::ToAbsolutePower(frame.waveform, rx_dbm), bits, tcfg);
    IqBuffer padded(120, Cplx{0.0, 0.0});
    padded.insert(padded.end(), bs.begin(), bs.end());
    const phy80211::RxResult rx =
        phy80211::ReceiveFrame(channel::AddThermalNoise(padded, fe, rng));
    bool success = false;
    if (rx.signal_ok) {
      const core::TagDecodeResult decoded = core::DecodeWifi(
          frame.data_bits, rx.data_bits,
          phy80211::ParamsFor(frame.rate).data_bits_per_symbol,
          tcfg.redundancy);
      success = HammingDistance(bits, decoded.bits) == 0;
    }
    controller.Report(success);
  };

  // Very noisy: the controller must climb the ladder.
  for (int i = 0; i < 12; ++i) run_exchange(-93.5);
  EXPECT_GT(controller.current(), 4u);

  // Clean link: it probes back down to the fastest setting.
  for (int i = 0; i < 40; ++i) run_exchange(-60.0);
  EXPECT_EQ(controller.current(), 4u);
}

// ----------------------------------------------- MAC-to-tag control path

/// Full downlink: coordinator encodes a slot announcement with PLM, the
/// tag's envelope detector measures the pulses, the message receiver
/// reassembles the payload.
TEST(Integration, PlmControlPathDeliversSlotCount) {
  Rng rng(3);
  const mac::PlmConfig plm;
  const tag::EnvelopeDetector detector;

  // Announce 12 slots in an 8-bit field.
  BitVector payload;
  for (int i = 0; i < 8; ++i) payload.push_back((12 >> i) & 1);
  const BitVector message = mac::BuildPlmMessage(payload);
  const auto pulses = mac::EncodePlm(message, 0.0, -35.0, plm);
  const auto measured = detector.DetectAll(pulses, rng);
  const BitVector bits = mac::DecodePlm(measured, plm);

  mac::PlmMessageReceiver receiver(8);
  std::optional<BitVector> got;
  for (Bit b : bits) {
    if (auto r = receiver.PushBit(b)) got = r;
  }
  ASSERT_TRUE(got.has_value());
  std::size_t slots = 0;
  for (int i = 0; i < 8; ++i) slots |= static_cast<std::size_t>((*got)[i]) << i;
  EXPECT_EQ(slots, 12u);
}

/// Productive PLM end-to-end (§2.4.2): queued traffic is re-packetized
/// into frames whose *real* airtimes encode the control message; the
/// tag's envelope detector measures those airtimes and recovers it.
TEST(Integration, ProductivePlmCarriesRealTraffic) {
  Rng rng(20);
  const mac::RepacketizerConfig config;
  const BitVector payload = RandomBits(rng, 16);
  const BitVector message = mac::BuildPlmMessage(payload);

  // Deep transmit queue: every control frame carries user bytes.
  const auto plan = mac::PlanFrames(1 << 20, message, config);
  EXPECT_DOUBLE_EQ(mac::ProductiveFraction(plan, config), 1.0);

  // Build the actual frames and convert their real airtimes to pulses.
  std::vector<tag::AirPulse> pulses;
  double t = 0.0;
  for (const auto& planned : plan.frames) {
    const phy80211::TxFrame frame = phy80211::BuildFrame(
        RandomBytes(rng, planned.payload_bytes), {});
    const double airtime = phy80211::FrameDurationS(frame);
    pulses.push_back({t, airtime, -40.0});
    t += airtime + config.plm.gap_s;
  }

  const tag::EnvelopeDetector detector;
  const auto measured = detector.DetectAll(pulses, rng);
  const BitVector bits = mac::DecodePlm(measured, config.plm);

  mac::PlmMessageReceiver receiver(16);
  std::optional<BitVector> got;
  for (Bit b : bits) {
    if (auto r = receiver.PushBit(b)) got = r;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

/// The same but with real MPDU headers inside the frames: header bytes
/// count toward the airtime budget, and the client can reassemble the
/// user stream from the decoded frames.
TEST(Integration, RepacketizedFramesStillDecodeAsWifi) {
  Rng rng(21);
  const mac::RepacketizerConfig config;
  const BitVector message = mac::BuildPlmMessage(RandomBits(rng, 8));
  const auto plan = mac::PlanFrames(1 << 20, message, config);

  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = phy80211::kSampleRateHz;
  fe.noise_figure_db = 5.0;
  std::uint16_t seq = 0;
  for (const auto& planned : plan.frames) {
    phy80211::MpduHeader header;
    header.type = phy80211::FrameType::kData;
    header.addr1 = phy80211::MakeAddress(1);
    header.addr2 = phy80211::MakeAddress(2);
    header.addr3 = phy80211::MakeAddress(3);
    header.sequence = seq++;
    const std::size_t body = planned.payload_bytes -
                             phy80211::MpduHeaderBytes(header.type);
    const Bytes mpdu =
        phy80211::BuildMpdu(header, RandomBytes(rng, body));
    const phy80211::TxFrame frame = phy80211::BuildFrame(mpdu, {});
    IqBuffer padded(100, Cplx{0.0, 0.0});
    padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
    const phy80211::RxResult rx =
        phy80211::ReceiveFrame(channel::ApplyLink(padded, -60.0, fe, rng));
    ASSERT_TRUE(rx.fcs_ok);
    const auto parsed = phy80211::ParseMpdu(std::span<const std::uint8_t>(
        rx.psdu.data(), rx.psdu.size() - 4));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.sequence, seq - 1);
  }
}

// -------------------------------------------------- failure injection

TEST(FailureInjection, TruncatedWifiCaptureDoesNotCrash) {
  Rng rng(4);
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 200), {});
  // Cut the capture mid-payload.
  IqBuffer truncated(frame.waveform.begin(),
                     frame.waveform.begin() + 1200);
  const phy80211::RxResult rx = phy80211::ReceiveFrame(truncated);
  EXPECT_FALSE(rx.fcs_ok);
}

TEST(FailureInjection, CorruptedSignalFieldRejected) {
  Rng rng(5);
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 100), {});
  IqBuffer modified = frame.waveform;
  // Invert the SIGNAL symbol (samples 320..400): rate/parity garbage.
  for (std::size_t i = 320; i < 400; ++i) modified[i] = -modified[i];
  const phy80211::RxResult rx = phy80211::ReceiveFrame(modified);
  EXPECT_TRUE(rx.detected);
  EXPECT_FALSE(rx.signal_ok);
}

TEST(FailureInjection, TinyBuffersAreSafe) {
  IqBuffer empty;
  EXPECT_FALSE(phy80211::ReceiveFrame(empty).detected);
  EXPECT_FALSE(phy802154::ReceiveFrame(empty).detected);
  EXPECT_FALSE(phyble::ReceiveFrame(empty).detected);
  IqBuffer tiny(10, Cplx{1.0, 0.0});
  EXPECT_FALSE(phy80211::ReceiveFrame(tiny).detected);
  EXPECT_FALSE(phy802154::ReceiveFrame(tiny).detected);
  EXPECT_FALSE(phyble::ReceiveFrame(tiny).detected);
}

TEST(FailureInjection, WrongBleChannelFailsCrc) {
  Rng rng(6);
  phyble::TxConfig txcfg;
  txcfg.channel_index = 37;
  const phyble::TxFrame frame = phyble::BuildFrame(RandomBytes(rng, 12), txcfg);
  phyble::RxConfig rxcfg;
  rxcfg.channel_index = 10;  // wrong whitening sequence
  IqBuffer padded(64, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  padded.insert(padded.end(), 64, Cplx{0.0, 0.0});
  const phyble::RxResult rx = phyble::ReceiveFrame(padded, rxcfg);
  // Detection (header) still works — whitening only covers the PDU —
  // but the payload is wrongly de-whitened.
  EXPECT_FALSE(rx.crc_ok);
}

TEST(FailureInjection, WrongAccessAddressNotDetected) {
  Rng rng(7);
  const phyble::TxFrame frame = phyble::BuildFrame(RandomBytes(rng, 12), {});
  phyble::RxConfig rxcfg;
  rxcfg.access_address = 0xDEADBEEF;
  IqBuffer padded(64, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  padded.insert(padded.end(), 64, Cplx{0.0, 0.0});
  EXPECT_FALSE(phyble::ReceiveFrame(padded, rxcfg).detected);
}

TEST(FailureInjection, ZigbeeGarbagePhrRejected) {
  Rng rng(8);
  const phy802154::TxFrame frame = phy802154::BuildFrame(RandomBytes(rng, 30));
  IqBuffer modified = frame.waveform;
  // Stomp the PHR region with noise-like garbage.
  for (std::size_t i = frame.shr_samples;
       i < frame.shr_samples + 2 * phy802154::kSamplesPerSymbol; ++i) {
    modified[i] = rng.NextComplexGaussian() * 0.5;
  }
  const phy802154::RxResult rx = phy802154::ReceiveFrame(modified);
  // Either the length no longer matches a decodable frame or the FCS
  // fails; it must not return a valid frame.
  EXPECT_FALSE(rx.fcs_ok);
}

TEST(FailureInjection, TagStreamWithBurstErrorsStillFramesLater) {
  // A burst of errors destroys one tag frame but the scanner locks onto
  // the next frame's preamble.
  Rng rng(9);
  const Bytes lost = RandomBytes(rng, 10);
  const Bytes kept = RandomBytes(rng, 10);
  BitVector stream = core::EncodeTagFrame(lost);
  for (std::size_t i = 20; i < 60; ++i) stream[i] ^= 1;  // burst
  const BitVector second = core::EncodeTagFrame(kept);
  stream.insert(stream.end(), second.begin(), second.end());
  const auto frames = core::ExtractTagFrames(stream);
  bool found_kept = false;
  for (const auto& f : frames) {
    if (f.crc_ok && f.payload == kept) found_kept = true;
    if (f.crc_ok) {
      EXPECT_NE(f.payload, lost);
    }
  }
  EXPECT_TRUE(found_kept);
}

// --------------------------------------------------- cross-radio parity

TEST(Integration, AllRadiosCarrySameTagPayload) {
  // The same 16-bit tag payload rides each of the three radios.
  Rng rng(10);
  const BitVector tag_bits = RandomBits(rng, 16);

  // WiFi.
  {
    core::TranslateConfig tcfg;
    const phy80211::TxFrame frame =
        phy80211::BuildFrame(RandomBytes(rng, 250), {});
    ASSERT_GE(core::TagBitCapacity(frame.waveform.size(), tcfg), 16u);
    const IqBuffer bs = core::Translate(
        channel::ToAbsolutePower(frame.waveform, -70.0), tag_bits, tcfg);
    IqBuffer padded(100, Cplx{0.0, 0.0});
    padded.insert(padded.end(), bs.begin(), bs.end());
    const phy80211::RxResult rx = phy80211::ReceiveFrame(padded);
    ASSERT_TRUE(rx.signal_ok);
    const auto decoded = core::DecodeWifi(
        frame.data_bits, rx.data_bits,
        phy80211::ParamsFor(frame.rate).data_bits_per_symbol, tcfg.redundancy);
    EXPECT_EQ(BitVector(decoded.bits.begin(), decoded.bits.begin() + 16),
              tag_bits);
  }
  // ZigBee.
  {
    core::TranslateConfig tcfg;
    tcfg.radio = core::RadioType::kZigbee;
    const phy802154::TxFrame frame =
        phy802154::BuildFrame(RandomBytes(rng, 40));
    ASSERT_GE(core::TagBitCapacity(frame.waveform.size(), tcfg), 16u);
    const IqBuffer bs = core::Translate(frame.waveform, tag_bits, tcfg);
    IqBuffer padded(100, Cplx{0.0, 0.0});
    padded.insert(padded.end(), bs.begin(), bs.end());
    const phy802154::RxResult rx = phy802154::ReceiveFrame(padded);
    ASSERT_TRUE(rx.detected);
    const auto decoded = core::DecodeZigbee(frame.data_symbols,
                                            rx.data_symbols, tcfg.redundancy);
    EXPECT_EQ(BitVector(decoded.bits.begin(), decoded.bits.begin() + 16),
              tag_bits);
  }
  // Bluetooth.
  {
    core::TranslateConfig tcfg;
    tcfg.radio = core::RadioType::kBluetooth;
    const phyble::TxFrame frame = phyble::BuildFrame(RandomBytes(rng, 48));
    ASSERT_GE(core::TagBitCapacity(frame.waveform.size(), tcfg), 16u);
    const IqBuffer bs = core::Translate(frame.waveform, tag_bits, tcfg);
    IqBuffer padded(100, Cplx{0.0, 0.0});
    padded.insert(padded.end(), bs.begin(), bs.end());
    padded.insert(padded.end(), 100, Cplx{0.0, 0.0});
    const phyble::RxResult rx = phyble::ReceiveFrame(padded);
    ASSERT_TRUE(rx.detected);
    const auto decoded = core::DecodeBluetooth(frame.stream_bits,
                                               rx.stream_bits, tcfg.redundancy);
    EXPECT_EQ(BitVector(decoded.bits.begin(), decoded.bits.begin() + 16),
              tag_bits);
  }
}

}  // namespace
}  // namespace freerider
