// Adversarial and recovery tests for the tag-side MAC: malformed
// announcement handling, desync detection, bounded slot-wait, stale
// rejection, and the coordinator's re-announcement backoff.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "mac/plm.h"
#include "mac/tag_mac.h"
#include "sim/multitag.h"

namespace freerider::mac {
namespace {

// Feed a perfectly-received announcement into a controller: encode it
// as PLM and hand each pulse over verbatim (zero-loss detector).
void Deliver(TagController& controller, const RoundAnnouncement& announcement,
             double start_s = 0.0) {
  const BitVector message = BuildPlmMessage(BuildAnnouncement(announcement));
  for (const auto& p : EncodePlm(message, start_s, -30.0)) {
    controller.OnPulse(tag::MeasuredPulse{p.start_s, p.duration_s});
  }
}

// Run a full round of slot boundaries; returns how often the tag fired.
std::size_t RunRound(TagController& controller, std::size_t slots) {
  std::size_t fires = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    if (controller.OnSlotBoundary()) ++fires;
  }
  return fires;
}

// --------------------------------------------- ParseAnnouncement hardening

TEST(ParseAnnouncement, RejectsEveryWrongSize) {
  for (std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                           std::size_t{15}, std::size_t{17}, std::size_t{64},
                           std::size_t{1000}}) {
    const BitVector payload(size, 1);
    EXPECT_FALSE(ParseAnnouncement(payload).has_value()) << "size " << size;
  }
}

TEST(ParseAnnouncement, RejectsZeroSlots) {
  const BitVector payload(16, 0);
  EXPECT_FALSE(ParseAnnouncement(payload).has_value());
}

TEST(ParseAnnouncement, MasksNonBinaryCells) {
  // A corrupted producer can hand cells > 1; only the LSB may count,
  // otherwise eight 0xFF cells would smear into a gigantic slot count.
  const BitVector payload(16, 0xFF);
  const auto a = ParseAnnouncement(payload);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->slots, 255u);
  EXPECT_EQ(a->sequence, 255u);
}

TEST(ParseAnnouncement, RoundTripsBuildAnnouncement) {
  for (std::size_t slots : {std::size_t{1}, std::size_t{8}, std::size_t{255}}) {
    RoundAnnouncement in;
    in.slots = slots;
    in.sequence = static_cast<std::uint8_t>(slots * 7);
    const auto out = ParseAnnouncement(BuildAnnouncement(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->slots, in.slots);
    EXPECT_EQ(out->sequence, in.sequence);
  }
}

// ----------------------------------------------------- PLM hardening

TEST(PlmReceiver, ClampsDegeneratePayloadSizes) {
  // Zero payload bits would make the receiver emit empty messages
  // forever; a huge request would park it collecting until heat death.
  PlmMessageReceiver zero(0);
  const BitVector& preamble = PlmPreamble();
  for (Bit b : preamble) EXPECT_FALSE(zero.PushBit(b).has_value());
  const auto message = zero.PushBit(1);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->size(), 1u);

  PlmMessageReceiver huge(std::numeric_limits<std::size_t>::max());
  for (Bit b : preamble) EXPECT_FALSE(huge.PushBit(b).has_value());
  std::optional<BitVector> out;
  for (std::size_t i = 0; i < kMaxPlmPayloadBits; ++i) {
    out = huge.PushBit(static_cast<Bit>(i & 1u));
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), kMaxPlmPayloadBits);
}

TEST(Plm, ClassifyPulseRejectsGarbageDurations) {
  const PlmConfig config;
  for (double duration : {-1.0, 0.0, 1e9, std::nan(""),
                          std::numeric_limits<double>::infinity()}) {
    EXPECT_FALSE(
        ClassifyPulse(tag::MeasuredPulse{0.0, duration}, config).has_value())
        << "duration " << duration;
  }
}

// --------------------------------------------- TagController recovery

TEST(TagRecovery, RejectsImplausibleSlotCounts) {
  TagRecoveryConfig recovery;
  recovery.max_announced_slots = 16;
  TagController controller(1, {}, recovery);
  Deliver(controller, {.slots = 100, .sequence = 0});
  EXPECT_EQ(controller.state(), TagState::kListening);
  EXPECT_EQ(controller.malformed_rejected(), 1u);
  EXPECT_EQ(controller.announcements_accepted(), 0u);
}

TEST(TagRecovery, DesyncsAndRejoinsOnNewerAnnouncement) {
  TagController controller(2);
  Deliver(controller, {.slots = 8, .sequence = 0});
  ASSERT_EQ(controller.state(), TagState::kSlotWait);
  // The round moves on without this tag ever seeing its slot
  // boundaries (it only saw 3 of 8)...
  for (int s = 0; s < 3; ++s) controller.OnSlotBoundary();
  // ...and the next round's announcement arrives. The tag must abandon
  // the dead round and rejoin instead of hanging.
  Deliver(controller, {.slots = 8, .sequence = 1}, 0.05);
  EXPECT_EQ(controller.desync_events(), 1u);
  EXPECT_EQ(controller.state(), TagState::kSlotWait);
  ASSERT_TRUE(controller.current_round().has_value());
  EXPECT_EQ(controller.current_round()->sequence, 1u);
  // And it transmits exactly once in the new round.
  EXPECT_EQ(RunRound(controller, 8), 1u);
  EXPECT_EQ(controller.state(), TagState::kListening);
}

TEST(TagRecovery, HoldsSlotOnSameSequenceReannouncement) {
  TagController controller(3);
  Deliver(controller, {.slots = 8, .sequence = 4});
  const std::size_t slot = controller.chosen_slot();
  // Coordinator backoff re-announces the same round: re-drawing the
  // slot would make the tag transmit twice (or miss its draw).
  Deliver(controller, {.slots = 8, .sequence = 4}, 0.05);
  EXPECT_EQ(controller.stale_rejected(), 1u);
  EXPECT_EQ(controller.desync_events(), 0u);
  EXPECT_EQ(controller.chosen_slot(), slot);
  EXPECT_EQ(RunRound(controller, 8), 1u);
}

TEST(TagRecovery, IgnoresReplayOfCompletedRound) {
  TagController controller(4);
  Deliver(controller, {.slots = 4, .sequence = 9});
  EXPECT_EQ(RunRound(controller, 4), 1u);
  ASSERT_EQ(controller.state(), TagState::kListening);
  // A replay of the round we already served must not trigger a second
  // transmission.
  Deliver(controller, {.slots = 4, .sequence = 9}, 0.05);
  EXPECT_EQ(controller.stale_rejected(), 1u);
  EXPECT_EQ(controller.state(), TagState::kListening);
}

TEST(TagRecovery, CountsSequenceGaps) {
  TagController controller(5);
  Deliver(controller, {.slots = 4, .sequence = 0});
  RunRound(controller, 4);
  // Rounds 1 and 2 were slept through (announcements lost); round 3's
  // announcement reveals the gap.
  Deliver(controller, {.slots = 4, .sequence = 3}, 0.05);
  EXPECT_EQ(controller.sequence_gaps(), 1u);
  EXPECT_EQ(controller.announcements_accepted(), 2u);
  EXPECT_EQ(controller.state(), TagState::kSlotWait);
}

TEST(TagRecovery, SequenceGapAcrossWraparound) {
  TagController controller(6);
  Deliver(controller, {.slots = 4, .sequence = 254});
  RunRound(controller, 4);
  // 254 -> 1 wraps the uint8 sequence; the gap (3) must still be seen
  // as a gap, not as a huge negative jump.
  Deliver(controller, {.slots = 4, .sequence = 1}, 0.05);
  EXPECT_EQ(controller.sequence_gaps(), 1u);
  EXPECT_EQ(controller.state(), TagState::kSlotWait);
}

TEST(TagRecovery, BoundedSlotWaitTimesOut) {
  TagController controller(7);
  Deliver(controller, {.slots = 8, .sequence = 0});
  ASSERT_EQ(controller.state(), TagState::kSlotWait);
  // Way past the round's worst-case end an ambient pulse goes by. The
  // slot boundaries are never coming — the tag must give up on the
  // round rather than wait forever.
  controller.OnPulse(tag::MeasuredPulse{1.0, 300e-6});
  EXPECT_EQ(controller.state(), TagState::kListening);
  EXPECT_EQ(controller.desync_events(), 1u);
  EXPECT_FALSE(controller.current_round().has_value());
}

TEST(TagRecovery, AmbientPulsesDuringSlotWaitAreHarmless) {
  TagController controller(8);
  Deliver(controller, {.slots = 8, .sequence = 0});
  const std::size_t slot = controller.chosen_slot();
  // Ambient traffic (durations outside both PLM bit lengths) within
  // the round's deadline: no state change, no counters.
  for (int i = 0; i < 20; ++i) {
    controller.OnPulse(tag::MeasuredPulse{0.03 + 1e-3 * i, 200e-6});
  }
  EXPECT_EQ(controller.state(), TagState::kSlotWait);
  EXPECT_EQ(controller.chosen_slot(), slot);
  EXPECT_EQ(controller.desync_events(), 0u);
  EXPECT_EQ(RunRound(controller, 8), 1u);
}

TEST(TagRecovery, DisabledListeningReproducesFireAndForget) {
  TagRecoveryConfig recovery;
  recovery.listen_during_slot_wait = false;
  TagController controller(9, {}, recovery);
  Deliver(controller, {.slots = 8, .sequence = 0});
  ASSERT_EQ(controller.state(), TagState::kSlotWait);
  // With recovery off the tag is deaf mid-round: a newer announcement
  // changes nothing (the fragile baseline behaviour).
  Deliver(controller, {.slots = 8, .sequence = 1}, 0.05);
  EXPECT_EQ(controller.desync_events(), 0u);
  ASSERT_TRUE(controller.current_round().has_value());
  EXPECT_EQ(controller.current_round()->sequence, 0u);
}

// ------------------------------------------- coordinator backoff (E2E)

TEST(CoordinatorRecovery, BacksOffWhenNoTagEverJoins) {
  sim::FullStackConfig config;
  config.num_tags = 2;
  config.rounds = 4;
  config.excitation_payload_bytes = 150;
  // PLM pulses arrive 30 dB under the envelope detector threshold: no
  // tag ever hears an announcement, every round decodes nothing.
  config.plm_power_at_tag_dbm = -90.0;
  Rng rng(51);
  const sim::FullStackStats stats = sim::RunFullStackCampaign(config, rng);
  EXPECT_EQ(stats.deliveries, 0u);
  EXPECT_EQ(stats.rounds, 4u);
  // Backoff precedes every announcement after the first failed round.
  EXPECT_EQ(stats.reannouncements, 3u);
  EXPECT_GT(stats.backoff_airtime_s, 0.0);
  EXPECT_EQ(stats.rounds_recovered, 0u);
  EXPECT_TRUE(std::isfinite(stats.goodput_bps));
}

TEST(CoordinatorRecovery, BackoffDisabledAddsNoIdleTime) {
  sim::FullStackConfig config;
  config.num_tags = 2;
  config.rounds = 3;
  config.excitation_payload_bytes = 150;
  config.plm_power_at_tag_dbm = -90.0;
  config.recovery.enabled = false;
  Rng rng(52);
  const sim::FullStackStats stats = sim::RunFullStackCampaign(config, rng);
  EXPECT_EQ(stats.reannouncements, 0u);
  EXPECT_DOUBLE_EQ(stats.backoff_airtime_s, 0.0);
}

TEST(CoordinatorRecovery, RecoversAfterTransientOutage) {
  // Heavy mid-frame excitation dropout makes some rounds decode
  // nothing; when a later round delivers again it must be counted as a
  // recovery (backoff armed, then released).
  sim::FullStackConfig config;
  config.num_tags = 1;
  config.rounds = 10;
  config.impairments.dropout.enabled = true;
  config.impairments.dropout.dropout_probability = 0.7;
  config.impairments.dropout.min_keep_fraction = 0.05;
  config.impairments.dropout.max_keep_fraction = 0.15;
  Rng rng(53);
  const sim::FullStackStats stats = sim::RunFullStackCampaign(config, rng);
  EXPECT_EQ(stats.rounds, 10u);
  EXPECT_GT(stats.deliveries, 0u);
  EXPECT_GT(stats.reannouncements, 0u);
  EXPECT_GE(stats.rounds_recovered, 1u);
  EXPECT_TRUE(std::isfinite(stats.goodput_bps));
}

}  // namespace
}  // namespace freerider::mac
