#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/rng.h"
#include "common/stats.h"
#include "mac/ambient_traffic.h"
#include "mac/coexistence.h"
#include "mac/plm.h"
#include "mac/slotted_aloha.h"

namespace freerider::mac {
namespace {

// ------------------------------------------------------------------- plm

TEST(Plm, EncodeDurations) {
  const PlmConfig config;
  const BitVector bits = BitsFromString("0110");
  const auto pulses = EncodePlm(bits, 0.0, -40.0, config);
  ASSERT_EQ(pulses.size(), 4u);
  EXPECT_DOUBLE_EQ(pulses[0].duration_s, config.l0_s);
  EXPECT_DOUBLE_EQ(pulses[1].duration_s, config.l1_s);
  EXPECT_DOUBLE_EQ(pulses[2].duration_s, config.l1_s);
  EXPECT_DOUBLE_EQ(pulses[3].duration_s, config.l0_s);
  // Pulses do not overlap and respect the gap.
  for (std::size_t i = 1; i < pulses.size(); ++i) {
    EXPECT_GE(pulses[i].start_s,
              pulses[i - 1].start_s + pulses[i - 1].duration_s + config.gap_s -
                  1e-12);
  }
}

TEST(Plm, ClassifyWithinTolerance) {
  const PlmConfig config;
  EXPECT_EQ(ClassifyPulse({0.0, config.l0_s + 20e-6}, config), Bit{0});
  EXPECT_EQ(ClassifyPulse({0.0, config.l1_s - 20e-6}, config), Bit{1});
  EXPECT_FALSE(ClassifyPulse({0.0, config.l0_s + 60e-6}, config).has_value());
  EXPECT_FALSE(ClassifyPulse({0.0, 2.0e-3}, config).has_value());
}

TEST(Plm, RoundTripThroughEnvelopeDetector) {
  Rng rng(1);
  const tag::EnvelopeDetector detector;
  const PlmConfig config;
  const BitVector message = BuildPlmMessage(BitsFromString("1100101011110000"));
  const auto pulses = EncodePlm(message, 0.0, -40.0, config);
  const auto measured = detector.DetectAll(pulses, rng);
  const BitVector decoded = DecodePlm(measured, config);
  EXPECT_EQ(decoded, message);
}

TEST(Plm, AmbientPulsesIgnored) {
  Rng rng(2);
  const PlmConfig config;
  // Interleave PLM pulses with ambient junk; decode must drop the junk.
  std::vector<tag::MeasuredPulse> pulses;
  const BitVector bits = BitsFromString("101");
  double t = 0.0;
  for (Bit b : bits) {
    pulses.push_back({t, 0.3e-3});  // ambient short packet
    t += 0.4e-3;
    pulses.push_back({t, b ? config.l1_s : config.l0_s});
    t += 1.3e-3;
    pulses.push_back({t, 2.0e-3});  // ambient long packet
    t += 2.2e-3;
  }
  EXPECT_EQ(DecodePlm(pulses, config), bits);
}

TEST(Plm, MessageReceiverFindsPreamble) {
  PlmMessageReceiver receiver(4);
  const BitVector payload = BitsFromString("1011");
  const BitVector message = BuildPlmMessage(payload);
  // Feed noise bits first, then the message.
  std::optional<BitVector> got;
  for (Bit b : BitsFromString("001101")) {
    got = receiver.PushBit(b);
    EXPECT_FALSE(got.has_value());
  }
  for (Bit b : message) {
    const auto r = receiver.PushBit(b);
    if (r.has_value()) got = r;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(Plm, BitRateNear500bps) {
  // The paper's prototype PLM runs at ~500 b/s.
  EXPECT_NEAR(PlmBitRateBps(), 500.0, 600.0);
  EXPECT_GT(PlmBitRateBps(), 300.0);
  EXPECT_LT(PlmBitRateBps(), 1500.0);
}

// -------------------------------------------------------- ambient traffic

TEST(Ambient, DurationDistributionIsBimodal) {
  Rng rng(3);
  const AmbientTrafficConfig config;
  std::size_t short_count = 0;
  std::size_t long_count = 0;
  std::size_t valley_count = 0;
  const std::size_t n = 100000;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = SampleAmbientDuration(config, rng);
    if (d < 0.5e-3) {
      ++short_count;
    } else if (d >= 1.5e-3) {
      ++long_count;
    } else {
      ++valley_count;
    }
  }
  // Fig. 3: ~78% short, ~18-22% long, valley nearly empty.
  EXPECT_NEAR(static_cast<double>(short_count) / n, 0.78, 0.01);
  EXPECT_NEAR(static_cast<double>(long_count) / n, 0.217, 0.01);
  EXPECT_LT(static_cast<double>(valley_count) / n, 0.01);
}

TEST(Ambient, FalseMatchProbabilityNearPaper) {
  Rng rng(4);
  const AmbientTrafficConfig config;
  const PlmConfig plm;
  const double p = AmbientFalseMatchProbability(config, plm.l0_s, plm.l1_s,
                                                plm.tolerance_s, rng, 400000);
  // Paper: ~0.03 %.
  EXPECT_LT(p, 0.002);
  EXPECT_GT(p, 0.00001);
}

TEST(Ambient, TrafficPulsesSortedAndNonOverlapping) {
  Rng rng(5);
  const AmbientTrafficConfig config;
  const auto pulses = GenerateAmbientTraffic(config, 1.0, rng);
  EXPECT_GT(pulses.size(), 100u);
  for (std::size_t i = 1; i < pulses.size(); ++i) {
    EXPECT_GE(pulses[i].start_s,
              pulses[i - 1].start_s + pulses[i - 1].duration_s - 1e-12);
  }
}

// ---------------------------------------------------------- slotted aloha

TEST(Aloha, SchedulerTracksPopulation) {
  SlotScheduler scheduler;
  // Lots of collisions: slots must grow.
  scheduler.ReportRound(2, 10, 0);
  EXPECT_GT(scheduler.current_slots(), 8u);
  // All empties: slots shrink to the floor.
  scheduler.ReportRound(0, 0, 30);
  EXPECT_EQ(scheduler.current_slots(), 4u);
}

TEST(Aloha, RoundConservesTags) {
  Rng rng(6);
  CampaignConfig config;
  config.plm_delivery_probability = 1.0;
  FramedSlottedAlohaSimulator sim(config);
  const RoundResult round = sim.RunRound(10, rng);
  EXPECT_EQ(round.singles + round.collisions + round.empties, round.slots);
  std::size_t succeeded = 0;
  for (bool s : round.tag_succeeded) succeeded += s;
  EXPECT_EQ(succeeded, round.singles);
}

TEST(Aloha, SingleTagAlwaysSucceedsWithPerfectPlm) {
  Rng rng(7);
  CampaignConfig config;
  config.plm_delivery_probability = 1.0;
  FramedSlottedAlohaSimulator sim(config);
  for (int r = 0; r < 20; ++r) {
    const RoundResult round = sim.RunRound(1, rng);
    EXPECT_TRUE(round.tag_succeeded[0]);
  }
}

TEST(Aloha, AggregateThroughputRisesWithTagCount) {
  Rng rng(8);
  CampaignConfig config;
  double prev = 0.0;
  for (std::size_t tags : {4u, 12u, 20u}) {
    FramedSlottedAlohaSimulator sim(config);
    Rng campaign_rng = rng.Split();
    const CampaignStats stats = sim.RunCampaign(tags, 400, campaign_rng);
    EXPECT_GT(stats.aggregate_throughput_bps, prev);
    prev = stats.aggregate_throughput_bps;
  }
}

TEST(Aloha, FairnessHighAcrossTagCounts) {
  Rng rng(9);
  CampaignConfig config;
  for (std::size_t tags : {4u, 8u, 12u, 16u, 20u}) {
    FramedSlottedAlohaSimulator sim(config);
    Rng campaign_rng = rng.Split();
    const CampaignStats stats = sim.RunCampaign(tags, 400, campaign_rng);
    // Paper Fig. 17b: ~0.85 at 20 tags, similar across counts.
    EXPECT_GT(stats.jain_fairness, 0.75) << tags << " tags";
    EXPECT_LE(stats.jain_fairness, 1.0);
  }
}

TEST(Aloha, MeasuredTracksAnalyticExpectation) {
  Rng rng(10);
  CampaignConfig config;
  config.plm_delivery_probability = 1.0;
  FramedSlottedAlohaSimulator sim(config);
  const CampaignStats stats = sim.RunCampaign(12, 600, rng);
  const double expected = ExpectedAlohaThroughputBps(12, config.timing);
  EXPECT_NEAR(stats.aggregate_throughput_bps, expected, expected * 0.25);
}

TEST(Aloha, TdmBeatsAlohaAndAsymptotes) {
  const MacTimingConfig timing;
  for (std::size_t tags : {4u, 20u, 100u}) {
    EXPECT_GT(TdmThroughputBps(tags, timing),
              ExpectedAlohaThroughputBps(tags, timing));
  }
  // Paper: Aloha asymptote ~18 kb/s, TDM ~40 kb/s.
  const double aloha_inf = ExpectedAlohaThroughputBps(300, timing);
  const double tdm_inf = TdmThroughputBps(300, timing);
  EXPECT_NEAR(aloha_inf, 16000.0, 4000.0);
  EXPECT_NEAR(tdm_inf, 41000.0, 5000.0);
}

// ------------------------------------------------------------ coexistence

TEST(Coexistence, BackscatterDoesNotHurtWifi) {
  Rng rng(11);
  const CoexistenceConfig config;
  const auto baseline = SimulateWifiThroughput(config, nullptr, 2000, rng);
  for (ExciterKind exciter : {ExciterKind::kWifi, ExciterKind::kZigbee,
                              ExciterKind::kBluetooth}) {
    Rng local = rng.Split();
    const auto with_tag = SimulateWifiThroughput(config, &exciter, 2000, local);
    // Fig. 15: medians within ~1 Mb/s of each other.
    EXPECT_NEAR(Median(with_tag), Median(baseline), 1.0);
  }
}

TEST(Coexistence, WifiTrafficDegradesWifiBackscatterTail) {
  Rng rng(12);
  const CoexistenceConfig config;
  const auto absent = SimulateBackscatterThroughput(
      config, ExciterKind::kWifi, false, 3000, rng);
  const auto present = SimulateBackscatterThroughput(
      config, ExciterKind::kWifi, true, 3000, rng);
  // Fig. 16a: medians similar, low tail clearly worse with WiFi present.
  EXPECT_NEAR(Median(present), Median(absent), 6.0);
  EXPECT_LT(Percentile(present, 10), Percentile(absent, 10) - 3.0);
}

TEST(Coexistence, NarrowbandBackscatterBarelyAffected) {
  Rng rng(13);
  const CoexistenceConfig config;
  for (ExciterKind exciter : {ExciterKind::kZigbee, ExciterKind::kBluetooth}) {
    Rng local = rng.Split();
    const auto absent =
        SimulateBackscatterThroughput(config, exciter, false, 3000, local);
    const auto present =
        SimulateBackscatterThroughput(config, exciter, true, 3000, local);
    // Fig. 16bc: within 1-2 kb/s.
    EXPECT_NEAR(Median(present), Median(absent), 2.0);
  }
}

TEST(Coexistence, LeakageOrdering) {
  const CoexistenceConfig config;
  // WiFi backscatter channel (13) is closer to the interferer than the
  // ZigBee/BT 2.48 GHz channels and its receiver is wideband.
  EXPECT_GT(
      WifiLeakageIntoBackscatterChannelDbm(config, ExciterKind::kWifi),
      WifiLeakageIntoBackscatterChannelDbm(config, ExciterKind::kZigbee));
}

}  // namespace
}  // namespace freerider::mac
