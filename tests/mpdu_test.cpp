#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "mac/repacketizer.h"
#include "phy80211/mpdu.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

namespace freerider {
namespace {

using phy80211::FrameType;
using phy80211::MakeAddress;
using phy80211::MpduHeader;

// ----------------------------------------------------------------- mpdu

TEST(Mpdu, DataFrameRoundTrip) {
  Rng rng(1);
  MpduHeader header;
  header.type = FrameType::kData;
  header.duration_us = 44;
  header.addr1 = MakeAddress(1);
  header.addr2 = MakeAddress(2);
  header.addr3 = MakeAddress(3);
  header.sequence = 1234;
  header.to_ds = true;
  const Bytes payload = RandomBytes(rng, 100);
  const Bytes mpdu = phy80211::BuildMpdu(header, payload);
  EXPECT_EQ(mpdu.size(), 24u + payload.size());

  const auto parsed = phy80211::ParseMpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.type, FrameType::kData);
  EXPECT_EQ(parsed->header.duration_us, 44);
  EXPECT_EQ(parsed->header.addr1, MakeAddress(1));
  EXPECT_EQ(parsed->header.addr2, MakeAddress(2));
  EXPECT_EQ(parsed->header.addr3, MakeAddress(3));
  EXPECT_EQ(parsed->header.sequence, 1234);
  EXPECT_TRUE(parsed->header.to_ds);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Mpdu, QosDataHasLargerHeader) {
  MpduHeader header;
  header.type = FrameType::kQosData;
  const Bytes mpdu = phy80211::BuildMpdu(header, Bytes(10, 0xAB));
  EXPECT_EQ(mpdu.size(), 26u + 10u);
  const auto parsed = phy80211::ParseMpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.type, FrameType::kQosData);
}

TEST(Mpdu, ControlFramesRoundTrip) {
  for (FrameType type : {FrameType::kRts, FrameType::kCts, FrameType::kAck}) {
    MpduHeader header;
    header.type = type;
    header.duration_us = 300;
    header.addr1 = MakeAddress(9);
    if (type == FrameType::kRts) header.addr2 = MakeAddress(8);
    const Bytes mpdu = phy80211::BuildMpdu(header, {});
    EXPECT_EQ(mpdu.size(), phy80211::MpduHeaderBytes(type));
    const auto parsed = phy80211::ParseMpdu(mpdu);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.type, type);
    EXPECT_EQ(parsed->header.duration_us, 300);
    EXPECT_EQ(parsed->header.addr1, MakeAddress(9));
  }
}

TEST(Mpdu, ControlFramesRejectPayload) {
  MpduHeader header;
  header.type = FrameType::kCts;
  EXPECT_THROW(phy80211::BuildMpdu(header, Bytes(4, 0)), std::invalid_argument);
}

TEST(Mpdu, ParseRejectsGarbage) {
  EXPECT_FALSE(phy80211::ParseMpdu(Bytes{}).has_value());
  EXPECT_FALSE(phy80211::ParseMpdu(Bytes(5, 0xFF)).has_value());
  // Valid length but bogus frame control type.
  Bytes junk(24, 0);
  junk[0] = 0xFC;
  EXPECT_FALSE(phy80211::ParseMpdu(junk).has_value());
}

TEST(Mpdu, RidesThroughThePhy) {
  // An MPDU survives the full PHY chain: build → OFDM TX → RX → parse.
  Rng rng(2);
  MpduHeader header;
  header.type = FrameType::kData;
  header.addr1 = MakeAddress(1);
  header.addr2 = MakeAddress(2);
  header.addr3 = MakeAddress(3);
  header.sequence = 77;
  const Bytes payload = RandomBytes(rng, 64);
  const Bytes mpdu = phy80211::BuildMpdu(header, payload);
  const phy80211::TxFrame frame = phy80211::BuildFrame(mpdu, {});
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  const phy80211::RxResult rx = phy80211::ReceiveFrame(padded);
  ASSERT_TRUE(rx.fcs_ok);
  // Strip the PHY's FCS and re-parse.
  const auto parsed = phy80211::ParseMpdu(
      std::span<const std::uint8_t>(rx.psdu).subspan(0, rx.psdu.size() - 4));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.sequence, 77);
  EXPECT_EQ(parsed->payload, payload);
}

// --------------------------------------------------------- repacketizer

TEST(Repacketizer, FrameAirtimesEncodeTheBits) {
  const mac::RepacketizerConfig config;
  const BitVector bits = BitsFromString("0110");
  const auto plan = mac::PlanFrames(1 << 20, bits, config);
  ASSERT_EQ(plan.frames.size(), 4u);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(plan.frames[i].plm_bit, bits[i]);
    // Check the airtime a frame of that size actually has.
    const phy80211::TxFrame frame = phy80211::BuildFrame(
        Bytes(plan.frames[i].payload_bytes, 0xAA), {});
    const double target = bits[i] ? config.plm.l1_s : config.plm.l0_s;
    EXPECT_NEAR(phy80211::FrameDurationS(frame), target, 6e-6) << i;
  }
}

TEST(Repacketizer, CarriesRealTrafficWhenQueueIsDeep) {
  const BitVector bits = BitsFromString("10101010");
  const auto plan = mac::PlanFrames(1 << 20, bits);
  EXPECT_EQ(plan.pad_bytes, 0u);
  EXPECT_GT(plan.user_bytes_carried, 4000u);
  EXPECT_DOUBLE_EQ(mac::ProductiveFraction(plan), 1.0);
}

TEST(Repacketizer, PadsWhenQueueRunsDry) {
  const BitVector bits = BitsFromString("1111");
  const auto plan = mac::PlanFrames(100, bits);
  EXPECT_EQ(plan.user_bytes_carried, 100u);
  EXPECT_GT(plan.pad_bytes, 0u);
  EXPECT_LT(mac::ProductiveFraction(plan), 0.1);
  // All four frames still exist — the control message must go out.
  EXPECT_EQ(plan.frames.size(), 4u);
}

TEST(Repacketizer, BitLengthsDiffer) {
  const mac::RepacketizerConfig config;
  EXPECT_GT(mac::PayloadBytesForBit(1, config),
            mac::PayloadBytesForBit(0, config));
}

TEST(Repacketizer, HigherRateCarriesMoreBytesPerBit) {
  mac::RepacketizerConfig slow;
  mac::RepacketizerConfig fast;
  fast.rate = phy80211::Rate::k54Mbps;
  EXPECT_GT(mac::PayloadBytesForBit(0, fast), mac::PayloadBytesForBit(0, slow));
}

}  // namespace
}  // namespace freerider
