#include <gtest/gtest.h>

#include "sim/multitag.h"

namespace freerider::sim {
namespace {

TEST(FullStack, SingleTagDeliversEveryRound) {
  Rng rng(1);
  FullStackConfig config;
  config.num_tags = 1;
  config.rounds = 4;
  config.adjust.initial_slots = 4;
  const FullStackStats stats = RunFullStackCampaign(config, rng);
  // One tag, strong link: it should deliver in (almost) every round it
  // heard the announcement; PLM at -38 dBm is essentially lossless.
  EXPECT_GE(stats.deliveries, 3u);
  EXPECT_EQ(stats.observed_collisions, 0u);
  EXPECT_EQ(stats.per_tag_deliveries[0], stats.deliveries);
}

TEST(FullStack, MultipleTagsAllDeliverEventually) {
  Rng rng(2);
  FullStackConfig config;
  config.num_tags = 5;
  config.rounds = 8;
  const FullStackStats stats = RunFullStackCampaign(config, rng);
  // Every tag gets through at least once over 8 rounds.
  for (std::size_t t = 0; t < config.num_tags; ++t) {
    EXPECT_GE(stats.per_tag_deliveries[t], 1u) << "tag " << t;
  }
  EXPECT_GT(stats.goodput_bps, 0.0);
  EXPECT_GT(stats.jain_fairness, 0.5);
}

TEST(FullStack, CollisionsAreObservedNotOracular) {
  // With many tags and few slots, collisions must show up in the
  // coordinator's *decode-based* observations.
  Rng rng(3);
  FullStackConfig config;
  config.num_tags = 8;
  config.rounds = 3;
  config.adjust.initial_slots = 4;
  config.adjust.min_slots = 4;
  config.adjust.max_slots = 4;  // force congestion
  const FullStackStats stats = RunFullStackCampaign(config, rng);
  EXPECT_GT(stats.observed_collisions, 0u);
}

TEST(FullStack, SchedulerGrowsUnderCongestion) {
  Rng rng(4);
  FullStackConfig congested;
  congested.num_tags = 10;
  congested.rounds = 5;
  congested.adjust.initial_slots = 4;
  const FullStackStats stats = RunFullStackCampaign(congested, rng);
  // With 10 tags starting at 4 slots, the scheduler must have widened
  // the frame: total slots exceed rounds * initial.
  EXPECT_GT(stats.slots_total, congested.rounds * 4u);
}

TEST(FullStack, WeakLinkKillsDeliveries) {
  Rng rng(5);
  FullStackConfig config;
  config.num_tags = 2;
  config.rounds = 3;
  config.backscatter_rx_dbm = -120.0;  // far below the noise floor
  const FullStackStats stats = RunFullStackCampaign(config, rng);
  EXPECT_EQ(stats.deliveries, 0u);
}

}  // namespace
}  // namespace freerider::sim
