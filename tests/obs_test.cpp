// Observability subsystem (src/obs/): metrics registry determinism,
// flight-recorder ring + codec round-trips, structure-aware decoder
// fuzzing, profiler Chrome-trace shape, and the stress-campaign trace
// export the benches byte-diff in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/codec.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "sim/stress.h"

namespace freerider {
namespace {

// ---- Metrics registry -------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramMerge) {
  obs::MetricsRegistry registry(4);
  obs::SetCurrentShard(0);
  registry.Count("frames", 3);
  registry.SetGauge("ratio", 0.25);
  registry.Observe("latency", 5);
  obs::SetCurrentShard(2);
  registry.Count("frames", 7);
  registry.Observe("latency", 9);
  obs::SetCurrentShard(-1);  // restore the unset-thread default

  const std::vector<obs::MergedMetric> merged = registry.Merge();
  ASSERT_EQ(merged.size(), 3u);  // sorted: frames, latency, ratio
  EXPECT_EQ(merged[0].name, "frames");
  EXPECT_EQ(merged[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(merged[0].value, 10u);
  EXPECT_EQ(merged[1].name, "latency");
  EXPECT_EQ(merged[1].kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(merged[1].value, 2u);
  EXPECT_EQ(merged[1].sum, 14u);
  EXPECT_EQ(merged[1].min, 5u);
  EXPECT_EQ(merged[1].max, 9u);
  EXPECT_EQ(merged[2].name, "ratio");
  EXPECT_EQ(merged[2].kind, obs::MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(merged[2].gauge, 0.25);
}

// The determinism claim itself: the identical deterministic workload,
// run serial and run on 8 workers (tasks stolen who-knows-how), must
// produce byte-identical merged exports.
TEST(MetricsTest, MergeIsByteIdenticalAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    runtime::Executor executor(threads);
    obs::MetricsRegistry registry;
    executor.ParallelFor(256, [&](std::size_t i) {
      registry.Count("tasks");
      registry.Count("work", i);
      registry.Observe("size", i * i);
      if (i % 3 == 0) registry.Count("thirds");
    });
    return obs::MetricsToJson("x", registry);
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"tasks\""), std::string::npos);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds exactly the value 0.
  EXPECT_EQ(obs::HistogramBucket(0), 0u);
  EXPECT_EQ(obs::HistogramBucketLow(0), 0u);
  // Bucket i (i >= 1) holds [2^(i-1), 2^i): both edges of each power.
  EXPECT_EQ(obs::HistogramBucket(1), 1u);
  EXPECT_EQ(obs::HistogramBucket(2), 2u);
  EXPECT_EQ(obs::HistogramBucket(3), 2u);
  EXPECT_EQ(obs::HistogramBucket(4), 3u);
  for (std::size_t i = 1; i < 63; ++i) {
    const std::uint64_t low = std::uint64_t{1} << (i - 1);
    EXPECT_EQ(obs::HistogramBucket(low), i) << "low edge of bucket " << i;
    EXPECT_EQ(obs::HistogramBucket((low << 1) - 1), i)
        << "high edge of bucket " << i;
    EXPECT_EQ(obs::HistogramBucketLow(i), low);
  }
  // The top bucket absorbs everything from 2^62 up, including the max.
  EXPECT_EQ(obs::HistogramBucket(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(obs::HistogramBucket(std::numeric_limits<std::uint64_t>::max()),
            63u);
  EXPECT_EQ(obs::HistogramBucketLow(63), std::uint64_t{1} << 62);
}

TEST(MetricsTest, BinaryCodecRoundTrips) {
  obs::MetricsRegistry registry(2);
  obs::SetCurrentShard(0);
  registry.Count("a.count", 41);
  registry.SetGauge("b.gauge", -0.125);
  registry.Observe("c.hist", 0);
  registry.Observe("c.hist", 1023);
  obs::SetCurrentShard(-1);

  const std::vector<obs::MergedMetric> merged = registry.Merge();
  const std::string bytes = obs::SerializeMetrics("lbl", merged);
  const obs::MetricsDecodeResult decoded = obs::DecodeMetrics(bytes);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_FALSE(decoded.salvaged);
  EXPECT_EQ(decoded.label, "lbl");
  EXPECT_EQ(decoded.metrics, merged);
  // Re-encoding the decode is the identity: the codec is canonical.
  EXPECT_EQ(obs::SerializeMetrics(decoded.label, decoded.metrics), bytes);
}

TEST(MetricsTest, JsonExportEscapesAndIsStable) {
  obs::MetricsRegistry registry(1);
  obs::SetCurrentShard(0);
  registry.Count("weird\"name\\with\njunk", 1);
  obs::SetCurrentShard(-1);
  const std::string json = obs::MetricsToJson("l", registry);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\u000ajunk"), std::string::npos)
      << json;
}

// ---- Trace ring -------------------------------------------------------

obs::TraceEvent Ev(std::uint32_t round, std::uint16_t slot,
                   obs::EventKind kind, std::uint8_t tag, std::uint64_t a,
                   std::uint64_t b) {
  return obs::TraceEvent{round, slot, kind, tag, a, b};
}

TEST(TraceRingTest, KeepsNewestAndCountsDrops) {
  obs::TraceRing ring(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.Record(Ev(i, 0, obs::EventKind::kFrameTx, 1, i, 0));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<obs::TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].round, 6u + i) << "oldest-to-newest order";
  }
}

TEST(TraceRingTest, BinaryCodecRoundTripsIncludingDropCount) {
  obs::TraceRing ring(3);
  for (std::uint32_t i = 0; i < 8; ++i) {
    ring.Record(Ev(i, static_cast<std::uint16_t>(i % 5),
                   obs::EventKind::kArqResend, 2, i * 7, i));
  }
  const std::string bytes = obs::SerializeTrace("t", ring);
  const obs::TraceDecodeResult decoded = obs::DecodeTraces(bytes);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  ASSERT_EQ(decoded.traces.size(), 1u);
  const obs::TraceRing& back = decoded.traces[0].ring;
  EXPECT_EQ(decoded.traces[0].name, "t");
  EXPECT_EQ(back.capacity(), 3u);
  EXPECT_EQ(back.recorded(), 8u);
  EXPECT_EQ(back.dropped(), 5u);
  EXPECT_EQ(back.Events(), ring.Events());
  // Round-trip identity — the currency of the trace_dump --bin check.
  EXPECT_EQ(obs::SerializeTraces(decoded.traces), bytes);
}

TEST(TraceRingTest, MultipleNamedRingsConcatenate) {
  obs::TraceRing a(8), b(8);
  a.Record(Ev(1, 0, obs::EventKind::kFrameTx, 1, 0, 0));
  b.Record(Ev(2, 1, obs::EventKind::kQuarantine, 3, 1, 0));
  b.Record(Ev(3, obs::kNoSlot, obs::EventKind::kResync, 3, 0, 0));
  const std::string bytes =
      obs::SerializeTraces({{"first", a}, {"second", b}});
  const obs::TraceDecodeResult decoded = obs::DecodeTraces(bytes);
  ASSERT_TRUE(decoded.ok);
  ASSERT_EQ(decoded.traces.size(), 2u);
  EXPECT_EQ(decoded.traces[0].name, "first");
  EXPECT_EQ(decoded.traces[1].name, "second");
  EXPECT_EQ(decoded.traces[1].ring.size(), 2u);
}

TEST(TraceQueryTest, FiltersByRoundTagAndKind) {
  obs::TraceQuery query;
  query.from_round = 10;
  query.to_round = 20;
  query.tag = 3;
  query.kind = static_cast<int>(obs::EventKind::kFrameRx);
  EXPECT_TRUE(
      Matches(query, Ev(10, 0, obs::EventKind::kFrameRx, 3, 0, 0)));
  EXPECT_TRUE(
      Matches(query, Ev(20, 0, obs::EventKind::kFrameRx, 3, 0, 0)));
  EXPECT_FALSE(
      Matches(query, Ev(9, 0, obs::EventKind::kFrameRx, 3, 0, 0)));
  EXPECT_FALSE(
      Matches(query, Ev(21, 0, obs::EventKind::kFrameRx, 3, 0, 0)));
  EXPECT_FALSE(
      Matches(query, Ev(15, 0, obs::EventKind::kFrameRx, 4, 0, 0)));
  EXPECT_FALSE(
      Matches(query, Ev(15, 0, obs::EventKind::kFrameTx, 3, 0, 0)));
}

TEST(TraceJsonlTest, DeterministicLinesAndNullSlot) {
  obs::TraceRing ring(4);
  ring.Record(Ev(7, 2, obs::EventKind::kFrameTx, 1, 42, 3));
  ring.Record(Ev(8, obs::kNoSlot, obs::EventKind::kArqExpire, 2, 5, 16));
  const std::string jsonl = obs::TraceToJsonl("n", ring);
  EXPECT_EQ(jsonl,
            "{\"trace\":\"n\",\"round\":7,\"slot\":2,\"kind\":\"frame_tx\","
            "\"tag\":1,\"a\":42,\"b\":3}\n"
            "{\"trace\":\"n\",\"round\":8,\"slot\":null,"
            "\"kind\":\"arq_expire\",\"tag\":2,\"a\":5,\"b\":16}\n");
}

TEST(TraceKindNamesTest, RoundTripThroughNames) {
  for (int k = 1; k <= 14; ++k) {
    const char* name = obs::EventKindName(static_cast<obs::EventKind>(k));
    EXPECT_STRNE(name, "unknown") << k;
    EXPECT_EQ(obs::EventKindFromName(name), k) << name;
  }
  EXPECT_EQ(obs::EventKindFromName("definitely_not_a_kind"), -1);
}

// ---- Structure-aware decoder fuzz ------------------------------------

std::string SampleTraceBytes() {
  obs::TraceRing ring(6);
  for (std::uint32_t i = 0; i < 9; ++i) {
    ring.Record(Ev(i, static_cast<std::uint16_t>(i),
                   static_cast<obs::EventKind>(1 + (i % 14)),
                   static_cast<std::uint8_t>(i), i * 1000003ull, ~i));
  }
  return obs::SerializeTrace("fuzz", ring);
}

// Truncation at every byte: the decoder must never crash or over-read,
// and any prefix that still contains the first full header must decode
// ok (salvaged), never reporting more events than the original held.
TEST(TraceFuzzTest, TruncationAtEveryByteIsSafe) {
  const std::string bytes = SampleTraceBytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const obs::TraceDecodeResult decoded =
        obs::DecodeTraces(std::string_view(bytes).substr(0, cut));
    if (decoded.ok && !decoded.traces.empty()) {
      EXPECT_LE(decoded.traces[0].ring.size(), 6u) << "cut=" << cut;
    }
  }
}

// Single-bit flips across the whole encoding: decode must stay memory-
// safe; the CRC framing turns nearly all flips into clean salvage.
TEST(TraceFuzzTest, BitFlipsAreSafe) {
  const std::string bytes = SampleTraceBytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      const obs::TraceDecodeResult decoded = obs::DecodeTraces(mutated);
      (void)decoded;  // verdict free-form; surviving is the contract
    }
  }
}

TEST(MetricsFuzzTest, TruncationAndBitFlipsAreSafe) {
  obs::MetricsRegistry registry(2);
  obs::SetCurrentShard(0);
  registry.Count("c", 3);
  registry.SetGauge("g", 2.5);
  for (std::uint64_t v : {0ull, 1ull, 1024ull, ~0ull}) {
    registry.Observe("h", v);
  }
  obs::SetCurrentShard(-1);
  const std::string bytes = obs::SerializeMetrics("fz", registry.Merge());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    (void)obs::DecodeMetrics(std::string_view(bytes).substr(0, cut));
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    (void)obs::DecodeMetrics(mutated);
  }
}

// A hostile header must not make the decoder allocate or loop on
// attacker-chosen sizes: capacity is bounded by kMaxCapacity and the
// phantom-drop count is restored arithmetically, not replayed.
TEST(TraceFuzzTest, HostileHeaderCountsAreRejectedOrBounded) {
  std::string payload;
  payload.push_back('H');
  obs::AppendU32(payload, obs::kTraceMagic);
  obs::AppendU32(payload, obs::kTraceVersion);
  obs::AppendStr(payload, "evil");
  obs::AppendU64(payload, ~0ull);  // capacity far past kMaxCapacity
  obs::AppendU64(payload, ~0ull);  // recorded: 2^64-1 phantom events
  std::string bytes;
  obs::AppendFrame(bytes, payload);
  const obs::TraceDecodeResult decoded = obs::DecodeTraces(bytes);
  EXPECT_FALSE(decoded.ok);
}

// ---- Profiler ---------------------------------------------------------

TEST(ProfilerTest, ChromeTraceJsonShape) {
  obs::Profiler profiler;
  profiler.RecordSpan("span_a", "cat", 0, 10.0, 5.0);
  profiler.RecordInstant("mark", "cat", 1, 12.0);
  profiler.AddCount("things", 3);
  const std::string json = profiler.ChromeTraceJson();
  // Minimal trace_event schema: a traceEvents array whose entries all
  // carry name/ph/ts/pid/tid, spans add dur, counters add args.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(ProfilerTest, ScopedSpanRecordsOnDestruction) {
  obs::Profiler& profiler = obs::GlobalProfiler();
  profiler.Reset();
  { obs::ScopedSpan span("scoped_work", "test"); }
  ASSERT_EQ(profiler.Spans().size(), 1u);
  EXPECT_EQ(profiler.Spans()[0].name, "scoped_work");
  profiler.Reset();
}

TEST(ProfilerTest, ExecutorRecordsSchedulingCounters) {
  obs::Profiler& profiler = obs::GlobalProfiler();
  profiler.Reset();
  runtime::Executor executor(2);
  executor.ParallelFor(64, [](std::size_t) {});
  bool saw_tasks = false;
  for (const auto& counter : profiler.Counters()) {
    if (counter.first == "executor.tasks_executed") {
      saw_tasks = counter.second == 64;
    }
  }
  EXPECT_TRUE(saw_tasks);
  profiler.Reset();
}

// ---- Campaign integration --------------------------------------------

sim::StressConfig SmallStress() {
  sim::StressConfig config;
  config.seed = 99;
  config.num_tags = 2;
  config.rounds = 48;
  config.drain_rounds = 32;
  config.trace_capacity = 512;
  return config;
}

TEST(StressTraceTest, TraceIsDeterministicAndRoundTrips) {
  const sim::StressResult first = sim::RunStress(SmallStress());
  const sim::StressResult second = sim::RunStress(SmallStress());
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);

  const obs::TraceDecodeResult decoded = obs::DecodeTraces(first.trace);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  ASSERT_EQ(decoded.traces.size(), 1u);
  EXPECT_EQ(decoded.traces[0].name, "stress");
  EXPECT_GT(decoded.traces[0].ring.size(), 0u);
  // The campaign recorded actual traffic, not just bookkeeping.
  bool saw_tx = false;
  for (const obs::TraceEvent& e : decoded.traces[0].ring.Events()) {
    saw_tx = saw_tx || e.kind == obs::EventKind::kFrameTx;
  }
  EXPECT_TRUE(saw_tx);

  // The trace rides the checkpoint payload byte-exactly.
  const std::string payload = sim::SerializeStressResult(first);
  sim::StressResult restored;
  ASSERT_TRUE(sim::DeserializeStressResult(payload, &restored));
  EXPECT_EQ(restored.trace, first.trace);
  EXPECT_EQ(restored.digest, first.digest);
}

TEST(StressTraceTest, ZeroCapacityDisablesTracing) {
  sim::StressConfig config = SmallStress();
  config.trace_capacity = 0;
  const sim::StressResult result = sim::RunStress(config);
  EXPECT_TRUE(result.trace.empty());
  // And the campaign outcome is identical with tracing on or off: the
  // recorder observes, it never steers.
  EXPECT_EQ(result.digest, sim::RunStress(SmallStress()).digest);
}

}  // namespace
}  // namespace freerider
