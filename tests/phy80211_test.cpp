#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/rng.h"
#include "dsp/signal_ops.h"
#include "phy80211/constellation.h"
#include "phy80211/convolutional.h"
#include "phy80211/interleaver.h"
#include "phy80211/ofdm.h"
#include "phy80211/params.h"
#include "phy80211/receiver.h"
#include "phy80211/scrambler.h"
#include "phy80211/transmitter.h"

namespace freerider::phy80211 {
namespace {

// ------------------------------------------------------------ scrambler

TEST(Scrambler, Involution) {
  Rng rng(1);
  const BitVector data = RandomBits(rng, 500);
  Scrambler a(0x5D);
  Scrambler b(0x5D);
  EXPECT_EQ(b.Process(a.Process(data)), data);
}

TEST(Scrambler, KnownSequenceFromAllOnesSeed) {
  // Clause 17.3.5.5: seed 1111111 produces the 127-bit sequence starting
  // 00001110 11110010 ...
  Scrambler s(0x7F);
  BitVector out;
  for (int i = 0; i < 16; ++i) out.push_back(s.NextBit());
  EXPECT_EQ(BitsToString(out), "0000111011110010");
}

TEST(Scrambler, Period127) {
  Scrambler s(0x35);
  BitVector first;
  for (int i = 0; i < 127; ++i) first.push_back(s.NextBit());
  BitVector second;
  for (int i = 0; i < 127; ++i) second.push_back(s.NextBit());
  EXPECT_EQ(first, second);
}

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0), std::invalid_argument);
}

TEST(Scrambler, SeedRecoveryFromServiceField) {
  for (std::uint8_t seed : {0x01, 0x2A, 0x5D, 0x7F}) {
    Scrambler s(seed);
    const BitVector zeros(7, 0);
    const BitVector scrambled = s.Process(zeros);
    EXPECT_EQ(RecoverScramblerSeed(scrambled), seed);
  }
}

TEST(Scrambler, LinearityUnderXor) {
  // Paper §3.2.1: scrambling is linear, so flipping input bits flips the
  // same output bits. This is the property codeword translation needs.
  Rng rng(2);
  const BitVector data = RandomBits(rng, 200);
  BitVector flipped = data;
  for (std::size_t i = 50; i < 150; ++i) flipped[i] ^= 1;
  Scrambler s1(0x11), s2(0x11);
  const BitVector out1 = s1.Process(data);
  const BitVector out2 = s2.Process(flipped);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Bit expected_diff = (i >= 50 && i < 150) ? 1 : 0;
    EXPECT_EQ(out1[i] ^ out2[i], expected_diff) << "bit " << i;
  }
}

// --------------------------------------------------------- convolutional

TEST(Convolutional, EncodeRate) {
  const BitVector data = BitsFromString("10110010");
  EXPECT_EQ(ConvolutionalEncode(data).size(), 16u);
}

TEST(Convolutional, ViterbiDecodesCleanStream) {
  Rng rng(3);
  BitVector data = RandomBits(rng, 300);
  for (int i = 0; i < 6; ++i) data.push_back(0);  // tail
  const BitVector coded = ConvolutionalEncode(data);
  const BitVector decoded = ViterbiDecode(coded);
  EXPECT_EQ(decoded, data);
}

TEST(Convolutional, ViterbiCorrectsScatteredErrors) {
  Rng rng(4);
  BitVector data = RandomBits(rng, 300);
  for (int i = 0; i < 6; ++i) data.push_back(0);
  BitVector coded = ConvolutionalEncode(data);
  // Flip every 40th coded bit (isolated errors, well within d_free=10).
  for (std::size_t i = 7; i < coded.size(); i += 40) coded[i] ^= 1;
  EXPECT_EQ(ViterbiDecode(coded), data);
}

TEST(Convolutional, ViterbiHandlesErasures) {
  Rng rng(5);
  BitVector data = RandomBits(rng, 200);
  for (int i = 0; i < 6; ++i) data.push_back(0);
  BitVector coded = ConvolutionalEncode(data);
  for (std::size_t i = 3; i < coded.size(); i += 10) coded[i] = 2;  // erase
  EXPECT_EQ(ViterbiDecode(coded), data);
}

class PunctureRoundTrip : public ::testing::TestWithParam<CodingRate> {};

TEST_P(PunctureRoundTrip, DepunctureViterbiRecovers) {
  Rng rng(6);
  BitVector data = RandomBits(rng, 240);
  for (int i = 0; i < 6; ++i) data.push_back(0);
  const BitVector mother = ConvolutionalEncode(data);
  const BitVector punctured = Puncture(mother, GetParam());
  const BitVector restored = Depuncture(punctured, GetParam(), mother.size());
  ASSERT_EQ(restored.size(), mother.size());
  EXPECT_EQ(ViterbiDecode(restored), data);
}

INSTANTIATE_TEST_SUITE_P(Rates, PunctureRoundTrip,
                         ::testing::Values(CodingRate::kHalf,
                                           CodingRate::kTwoThirds,
                                           CodingRate::kThreeQuarters));

TEST(Convolutional, PunctureLengths) {
  BitVector data(120, 0);
  const BitVector mother = ConvolutionalEncode(data);  // 240
  EXPECT_EQ(Puncture(mother, CodingRate::kHalf).size(), 240u);
  EXPECT_EQ(Puncture(mother, CodingRate::kTwoThirds).size(), 180u);
  EXPECT_EQ(Puncture(mother, CodingRate::kThreeQuarters).size(), 160u);
}

TEST(Convolutional, LinearityOfCode) {
  // Eq. 9 discussion: the code is linear, so encode(a ^ b) =
  // encode(a) ^ encode(b). This underpins XOR tag decoding.
  Rng rng(7);
  const BitVector a = RandomBits(rng, 100);
  const BitVector b = RandomBits(rng, 100);
  const BitVector xored = XorBits(a, b);
  EXPECT_EQ(ConvolutionalEncode(xored),
            XorBits(ConvolutionalEncode(a), ConvolutionalEncode(b)));
}

// ----------------------------------------------------------- interleaver

class InterleaverRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InterleaverRoundTrip, Bijective) {
  const RateParams& params = kRateTable[GetParam()];
  Rng rng(8 + GetParam());
  const BitVector bits = RandomBits(rng, params.coded_bits_per_symbol);
  EXPECT_EQ(DeinterleaveSymbol(InterleaveSymbol(bits, params), params), bits);
}

INSTANTIATE_TEST_SUITE_P(AllRates, InterleaverRoundTrip,
                         ::testing::Range<std::size_t>(0, 8));

TEST(Interleaver, NeverCrossesSymbolBoundary) {
  // Paper §3.2.1: interleaving is per OFDM symbol, so a tag bit spanning
  // whole symbols is unaffected. Verify symbol independence.
  const RateParams& params = ParamsFor(Rate::k12Mbps);
  Rng rng(9);
  const BitVector sym1 = RandomBits(rng, params.coded_bits_per_symbol);
  const BitVector sym2 = RandomBits(rng, params.coded_bits_per_symbol);
  BitVector both = sym1;
  both.insert(both.end(), sym2.begin(), sym2.end());
  const BitVector interleaved = InterleaveStream(both, params);
  const BitVector i1 = InterleaveSymbol(sym1, params);
  const BitVector i2 = InterleaveSymbol(sym2, params);
  BitVector expected = i1;
  expected.insert(expected.end(), i2.begin(), i2.end());
  EXPECT_EQ(interleaved, expected);
}

TEST(Interleaver, RejectsWrongSize) {
  const RateParams& params = ParamsFor(Rate::k6Mbps);
  BitVector bits(47, 0);
  EXPECT_THROW(InterleaveSymbol(bits, params), std::invalid_argument);
}

// --------------------------------------------------------- constellation

class ConstellationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ConstellationRoundTrip, MapDemapIsIdentity) {
  Rng rng(10);
  const std::size_t bps = BitsPerSymbol(GetParam());
  const BitVector bits = RandomBits(rng, bps * 100);
  const IqBuffer symbols = MapBits(bits, GetParam());
  EXPECT_EQ(DemapSymbols(symbols, GetParam()), bits);
}

INSTANTIATE_TEST_SUITE_P(AllMods, ConstellationRoundTrip,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

class ConstellationPower : public ::testing::TestWithParam<Modulation> {};

TEST_P(ConstellationPower, UnitAveragePower) {
  Rng rng(11);
  const std::size_t bps = BitsPerSymbol(GetParam());
  const BitVector bits = RandomBits(rng, bps * 6000);
  const IqBuffer symbols = MapBits(bits, GetParam());
  EXPECT_NEAR(dsp::MeanPower(symbols), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllMods, ConstellationPower,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

class Rotation180 : public ::testing::TestWithParam<Modulation> {};

TEST_P(Rotation180, MapsConstellationToItself) {
  // The codeword-translation property (paper §2.3.1): a 180° phase shift
  // maps every valid point to another valid point of the same codebook.
  Rng rng(12);
  const std::size_t bps = BitsPerSymbol(GetParam());
  const BitVector bits = RandomBits(rng, bps * 64);
  IqBuffer symbols = MapBits(bits, GetParam());
  for (auto& s : symbols) s = -s;
  for (const Cplx& s : symbols) {
    EXPECT_TRUE(IsValidConstellationPoint(s, GetParam(), 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMods, Rotation180,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Constellation, AmplitudeScalingCreatesInvalidCodewords) {
  // Fig. 2: shrinking a 16-QAM point's amplitude does NOT land on a
  // valid point in general.
  const BitVector bits = BitsFromString("1000");  // some outer point
  const IqBuffer symbols = MapBits(bits, Modulation::kQam16);
  const Cplx scaled = symbols[0] * 0.6;
  EXPECT_FALSE(IsValidConstellationPoint(scaled, Modulation::kQam16, 0.05));
}

// ------------------------------------------------------------------ ofdm

TEST(Ofdm, DataSubcarrierCount) {
  EXPECT_EQ(DataSubcarriers().size(), 48u);
  for (int sc : DataSubcarriers()) {
    EXPECT_NE(sc, 0);
    EXPECT_NE(std::abs(sc), 7);
    EXPECT_NE(std::abs(sc), 21);
    EXPECT_LE(std::abs(sc), 26);
  }
}

TEST(Ofdm, PilotPolarityPeriodic) {
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(PilotPolarity(i), PilotPolarity(i + 127));
  }
  EXPECT_EQ(PilotPolarity(0), 1.0);
}

TEST(Ofdm, SymbolRoundTrip) {
  Rng rng(13);
  const BitVector bits = RandomBits(rng, 48);
  const IqBuffer points = MapBits(bits, Modulation::kBpsk);
  const IqBuffer symbol = ModulateSymbol(points, 3);
  ASSERT_EQ(symbol.size(), kSymbolLen);
  const IqBuffer bins = DemodulateSymbol(symbol);
  // Build the reference "channel" = flat TX scale.
  IqBuffer flat(kFftSize, Cplx{64.0 / std::sqrt(52.0), 0.0});
  const IqBuffer data = ExtractDataSubcarriers(bins, flat);
  EXPECT_EQ(DemapSymbols(data, Modulation::kBpsk), bits);
}

TEST(Ofdm, SymbolUnitPower) {
  Rng rng(14);
  const IqBuffer points = MapBits(RandomBits(rng, 96), Modulation::kQpsk);
  const IqBuffer symbol =
      ModulateSymbol(std::span<const Cplx>(points).subspan(0, 48), 1);
  EXPECT_NEAR(dsp::MeanPower(symbol), 1.0, 0.35);
}

TEST(Ofdm, TrainingFieldLengths) {
  EXPECT_EQ(ShortTrainingField().size(), 160u);
  EXPECT_EQ(LongTrainingField().size(), 160u);
  EXPECT_EQ(LongTrainingSymbol64().size(), 64u);
}

TEST(Ofdm, LtfIsRepeated) {
  const IqBuffer ltf = LongTrainingField();
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(ltf[32 + i] - ltf[32 + 64 + i]), 0.0, 1e-12);
  }
}

TEST(Ofdm, PilotPhaseErrorDetectsRotation) {
  Rng rng(15);
  const IqBuffer points = MapBits(RandomBits(rng, 48), Modulation::kBpsk);
  IqBuffer symbol = ModulateSymbol(points, 5);
  const double theta = 0.7;
  symbol = dsp::RotatePhase(symbol, theta);
  const IqBuffer bins = DemodulateSymbol(symbol);
  IqBuffer flat(kFftSize, Cplx{64.0 / std::sqrt(52.0), 0.0});
  EXPECT_NEAR(PilotPhaseError(bins, flat, 5), theta, 1e-6);
}

// ---------------------------------------------------------- full tx/rx

IqBuffer CleanChannel(const IqBuffer& wave, double rx_dbm, double nf_db,
                      Rng& rng) {
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = nf_db;
  return channel::ApplyLink(wave, rx_dbm, fe, rng);
}

IqBuffer WithPadding(const IqBuffer& wave, std::size_t pad, Rng& rng,
                     double noise_dbm = -300.0) {
  IqBuffer out(pad, Cplx{0.0, 0.0});
  out.insert(out.end(), wave.begin(), wave.end());
  out.insert(out.end(), pad, Cplx{0.0, 0.0});
  (void)rng;
  (void)noise_dbm;
  return out;
}

class FullChain : public ::testing::TestWithParam<Rate> {};

TEST_P(FullChain, DecodesNoiselessFrame) {
  Rng rng(16);
  const Bytes payload = RandomBytes(rng, 100);
  TxConfig cfg;
  cfg.rate = GetParam();
  const TxFrame frame = BuildFrame(payload, cfg);
  const IqBuffer rx = WithPadding(frame.waveform, 100, rng);
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  ASSERT_TRUE(result.signal_ok);
  EXPECT_EQ(result.rate, GetParam());
  EXPECT_EQ(result.psdu_len, payload.size() + 4);
  EXPECT_TRUE(result.fcs_ok);
  ASSERT_EQ(result.psdu.size(), frame.psdu.size());
  EXPECT_EQ(result.psdu, frame.psdu);
  EXPECT_EQ(result.data_bits, frame.data_bits);
}

INSTANTIATE_TEST_SUITE_P(AllRates, FullChain,
                         ::testing::Values(Rate::k6Mbps, Rate::k9Mbps,
                                           Rate::k12Mbps, Rate::k18Mbps,
                                           Rate::k24Mbps, Rate::k36Mbps,
                                           Rate::k48Mbps, Rate::k54Mbps));

TEST(FullChainNoise, DecodesAtHighSnr) {
  Rng rng(17);
  const Bytes payload = RandomBytes(rng, 200);
  const TxFrame frame = BuildFrame(payload, {});
  // -60 dBm into a -97 dBm floor: 37 dB SNR.
  const IqBuffer rx = CleanChannel(WithPadding(frame.waveform, 200, rng), -60.0,
                                   4.0, rng);
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_TRUE(result.fcs_ok);
  EXPECT_EQ(result.psdu, frame.psdu);
}

TEST(FullChainNoise, FailsFarBelowNoiseFloor) {
  Rng rng(18);
  const Bytes payload = RandomBytes(rng, 50);
  const TxFrame frame = BuildFrame(payload, {});
  const IqBuffer rx = CleanChannel(WithPadding(frame.waveform, 200, rng),
                                   -120.0, 4.0, rng);
  const RxResult result = ReceiveFrame(rx);
  EXPECT_FALSE(result.fcs_ok);
}

TEST(FullChainNoise, RssiTracksReceivePower) {
  Rng rng(19);
  const Bytes payload = RandomBytes(rng, 100);
  const TxFrame frame = BuildFrame(payload, {});
  const IqBuffer rx =
      CleanChannel(WithPadding(frame.waveform, 50, rng), -55.0, 4.0, rng);
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_NEAR(result.rssi_dbm, -55.0, 1.5);
}

TEST(FullChain, NoFalseDetectInPureNoise) {
  Rng rng(20);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 4.0;
  IqBuffer silence(20000, Cplx{0.0, 0.0});
  const IqBuffer noise = channel::AddThermalNoise(silence, fe, rng);
  const RxResult result = ReceiveFrame(noise);
  EXPECT_FALSE(result.detected);
}

TEST(FullChain, ScramblerSeedRecovered) {
  Rng rng(21);
  TxConfig cfg;
  cfg.scrambler_seed = 0x2B;
  const TxFrame frame = BuildFrame(RandomBytes(rng, 60), cfg);
  const RxResult result = ReceiveFrame(WithPadding(frame.waveform, 64, rng));
  ASSERT_TRUE(result.signal_ok);
  EXPECT_EQ(result.scrambler_seed, 0x2B);
}

TEST(FullChain, DurationHelpersConsistent) {
  Rng rng(22);
  const Bytes payload = RandomBytes(rng, 96);
  const TxFrame frame = BuildFrame(payload, {});
  EXPECT_EQ(frame.num_data_symbols, NumDataSymbols(payload.size() + 4,
                                                   Rate::k6Mbps));
  const double duration = FrameDurationS(frame);
  const std::size_t psdu = PsduBytesForDuration(duration, Rate::k6Mbps);
  // Inverse within one symbol's worth of bytes.
  EXPECT_NEAR(static_cast<double>(psdu),
              static_cast<double>(payload.size() + 4), 4.0);
}

class CfoTolerance : public ::testing::TestWithParam<double> {};

TEST_P(CfoTolerance, DecodesWithOscillatorOffset) {
  // ±40 ppm at 2.45 GHz is ~±100 kHz; the STF/LTF-based estimator must
  // absorb it (without correction the constellation spins and decoding
  // collapses — see the companion test below).
  Rng rng(35);
  const Bytes payload = RandomBytes(rng, 200);
  const TxFrame frame = BuildFrame(payload, {});
  IqBuffer padded = WithPadding(frame.waveform, 250, rng);
  const IqBuffer shifted =
      dsp::MixFrequency(padded, GetParam(), kSampleRateHz);
  const RxResult result = ReceiveFrame(shifted);
  ASSERT_TRUE(result.signal_ok) << GetParam();
  EXPECT_TRUE(result.fcs_ok) << GetParam();
  EXPECT_NEAR(result.cfo_hz, GetParam(), 2e3) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Offsets, CfoTolerance,
                         ::testing::Values(-100e3, -40e3, -5e3, 5e3, 40e3,
                                           100e3));

TEST(CfoToleranceOff, UncorrectedCfoBreaksDecoding) {
  Rng rng(38);
  const TxFrame frame = BuildFrame(RandomBytes(rng, 200), {});
  IqBuffer padded = WithPadding(frame.waveform, 250, rng);
  const IqBuffer shifted = dsp::MixFrequency(padded, 80e3, kSampleRateHz);
  RxConfig rxcfg;
  rxcfg.cfo_correction = false;
  const RxResult result = ReceiveFrame(shifted, rxcfg);
  EXPECT_FALSE(result.fcs_ok);
}

class SoftChain : public ::testing::TestWithParam<Rate> {};

TEST_P(SoftChain, SoftDecisionDecodesNoiselessFrame) {
  Rng rng(36);
  const Bytes payload = RandomBytes(rng, 120);
  TxConfig cfg;
  cfg.rate = GetParam();
  const TxFrame frame = BuildFrame(payload, cfg);
  const IqBuffer rx = WithPadding(frame.waveform, 100, rng);
  RxConfig rxcfg;
  rxcfg.soft_decision = true;
  const RxResult result = ReceiveFrame(rx, rxcfg);
  ASSERT_TRUE(result.signal_ok);
  EXPECT_TRUE(result.fcs_ok);
  EXPECT_EQ(result.psdu, frame.psdu);
  EXPECT_EQ(result.data_bits, frame.data_bits);
}

INSTANTIATE_TEST_SUITE_P(AllRates, SoftChain,
                         ::testing::Values(Rate::k6Mbps, Rate::k9Mbps,
                                           Rate::k12Mbps, Rate::k18Mbps,
                                           Rate::k24Mbps, Rate::k36Mbps,
                                           Rate::k48Mbps, Rate::k54Mbps));

TEST(SoftChainGain, SoftBeatsHardAtMarginalSnr) {
  // At an SNR where the hard decoder struggles, the soft decoder's
  // ~2 dB of extra coding gain shows as a higher frame success rate.
  Rng rng(37);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 5.0;
  int hard_ok = 0;
  int soft_ok = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    TxConfig txcfg;
    txcfg.rate = Rate::k12Mbps;  // QPSK 1/2: marginal near 6 dB SNR
    const TxFrame frame = BuildFrame(RandomBytes(rng, 150), txcfg);
    const IqBuffer rx = channel::ApplyLink(
        WithPadding(frame.waveform, 120, rng), -91.5, fe, rng);
    RxConfig hard;
    RxConfig soft;
    soft.soft_decision = true;
    hard_ok += ReceiveFrame(rx, hard).fcs_ok;
    soft_ok += ReceiveFrame(rx, soft).fcs_ok;
  }
  EXPECT_GT(soft_ok, hard_ok);
}

TEST(FullChain, PhaseFlippedPayloadStillDecodesWithXorPattern) {
  // Core codeword-translation property on a real frame: negate (180°
  // rotate) all DATA samples of whole OFDM symbols; the receiver still
  // decodes a frame, and the decoded bits differ from the original in a
  // structured way (this is what the tag exploits).
  Rng rng(23);
  const Bytes payload = RandomBytes(rng, 96);
  const TxFrame frame = BuildFrame(payload, {});
  IqBuffer modified = frame.waveform;
  // Flip symbols 4..7 of the DATA field (one tag bit over 4 symbols).
  const std::size_t start = frame.preamble_samples + 4 * kSymbolLen;
  for (std::size_t i = 0; i < 4 * kSymbolLen; ++i) {
    modified[start + i] = -modified[start + i];
  }
  const RxResult result = ReceiveFrame(WithPadding(modified, 64, rng));
  ASSERT_TRUE(result.signal_ok);
  // FCS fails (payload bits changed)...
  EXPECT_FALSE(result.fcs_ok);
  // ...but the XOR against the original stream is confined to the
  // flipped window (plus coder boundary effects).
  const BitVector diff = XorBits(result.data_bits, frame.data_bits);
  const auto& params = ParamsFor(Rate::k6Mbps);
  const std::size_t ndbps = params.data_bits_per_symbol;
  std::size_t diff_in_window = 0;
  std::size_t diff_outside = 0;
  for (std::size_t i = 0; i < diff.size(); ++i) {
    const std::size_t sym = i / ndbps;
    if (sym >= 4 && sym < 8) {
      diff_in_window += diff[i];
    } else {
      diff_outside += diff[i];
    }
  }
  // Most of the 96 window bits flip; only boundary bits leak outside.
  EXPECT_GT(diff_in_window, 60u);
  EXPECT_LT(diff_outside, 20u);
}

}  // namespace
}  // namespace freerider::phy80211
