#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/rng.h"
#include "core/hitchhike.h"
#include "dsp/signal_ops.h"
#include "phy80211b/dsss.h"
#include "phy80211b/frame11b.h"
#include "phy80211b/scrambler11b.h"

namespace freerider::phy80211b {
namespace {

// -------------------------------------------------------- scrambler 11b

TEST(Scrambler11b, SelfSynchronizingRoundTrip) {
  Rng rng(1);
  const BitVector data = RandomBits(rng, 300);
  EXPECT_EQ(Descramble11b(Scramble11b(data)), data);
}

TEST(Scrambler11b, DescramblerSyncsWithWrongSeed) {
  // Self-synchronization: after 7 bits the descrambler output is
  // correct regardless of its initial register.
  Rng rng(2);
  const BitVector data = RandomBits(rng, 100);
  const BitVector scrambled = Scramble11b(data, 0x1B);
  const BitVector plain = Descramble11b(scrambled, 0x55);
  for (std::size_t i = 7; i < data.size(); ++i) {
    EXPECT_EQ(plain[i], data[i]) << i;
  }
}

TEST(Scrambler11b, FlippedWindowDescramblesToFlippedWindowPlusTail) {
  // The property HitchHike relies on: flipping scrambled bits in a
  // window flips the descrambled bits in that window plus at most 7
  // trailing bits (the register flush).
  Rng rng(3);
  const BitVector data = RandomBits(rng, 200);
  BitVector scrambled = Scramble11b(data);
  for (std::size_t i = 50; i < 90; ++i) scrambled[i] ^= 1;
  const BitVector plain = Descramble11b(scrambled);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i < 50 || i >= 97) {
      EXPECT_EQ(plain[i], data[i]) << i;
    } else if (i < 90) {
      // In-window: flipped XOR the scrambler's own feedback of flips.
      // At minimum the first 4 bits of the window are exact flips.
      if (i < 54) {
        EXPECT_EQ(plain[i], data[i] ^ 1) << i;
      }
    }
  }
}

// -------------------------------------------------------------- dsss

TEST(Dsss, RoundTripCleanBits) {
  Rng rng(4);
  const BitVector bits = RandomBits(rng, 120);
  const IqBuffer wave = ModulateDbpsk(bits);
  const BitVector demod = DemodulateDbpsk(wave, kSamplesPerSymbol, bits.size());
  EXPECT_EQ(demod, bits);
}

TEST(Dsss, DifferentialIsPhaseInvariant) {
  Rng rng(5);
  const BitVector bits = RandomBits(rng, 80);
  IqBuffer wave = ModulateDbpsk(bits);
  wave = dsp::RotatePhase(wave, 2.1);
  EXPECT_EQ(DemodulateDbpsk(wave, kSamplesPerSymbol, bits.size()), bits);
}

TEST(Dsss, DespreadGainIsEleven) {
  const BitVector one_bit = {0};
  const IqBuffer wave = ModulateDbpsk(one_bit);
  EXPECT_NEAR(std::abs(DespreadSymbol(wave, 0)), 11.0, 1e-9);
}

// -------------------------------------------------------------- frame

TEST(Frame11b, RoundTripNoiseless) {
  Rng rng(6);
  const Bytes payload = RandomBytes(rng, 60);
  const TxFrame frame = BuildFrame(payload);
  IqBuffer padded(40, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  padded.insert(padded.end(), 40, Cplx{0.0, 0.0});
  const RxResult rx = ReceiveFrame(padded);
  ASSERT_TRUE(rx.detected);
  ASSERT_TRUE(rx.header_ok);
  EXPECT_TRUE(rx.fcs_ok);
  EXPECT_EQ(rx.psdu, frame.psdu);
  EXPECT_EQ(rx.psdu_bits, frame.psdu_bits);
  EXPECT_EQ(rx.raw_psdu_bits, frame.raw_psdu_bits);
}

TEST(Frame11b, DecodesAtModerateSnr) {
  Rng rng(7);
  const Bytes payload = RandomBytes(rng, 40);
  const TxFrame frame = BuildFrame(payload);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 6.0;
  IqBuffer padded(60, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  // Barker despreading gives ~10.4 dB of gain, so -92 dBm works.
  const IqBuffer rx_wave = channel::ApplyLink(padded, -92.0, fe, rng);
  const RxResult rx = ReceiveFrame(rx_wave);
  ASSERT_TRUE(rx.detected);
  EXPECT_TRUE(rx.fcs_ok);
  EXPECT_EQ(rx.psdu, frame.psdu);
}

TEST(Frame11b, FailsDeepBelowNoise) {
  Rng rng(8);
  const TxFrame frame = BuildFrame(RandomBytes(rng, 40));
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 6.0;
  const IqBuffer rx_wave = channel::ApplyLink(frame.waveform, -125.0, fe, rng);
  EXPECT_FALSE(ReceiveFrame(rx_wave).fcs_ok);
}

TEST(Frame11b, EmptyAndTinyBuffersSafe) {
  EXPECT_FALSE(ReceiveFrame(IqBuffer{}).detected);
  EXPECT_FALSE(ReceiveFrame(IqBuffer(100, Cplx{1.0, 0.0})).detected);
}

TEST(Dsss, DqpskRoundTrip) {
  Rng rng(20);
  const BitVector bits = RandomBits(rng, 160);
  const IqBuffer wave = ModulateDqpsk(bits);
  const BitVector demod =
      DemodulateDqpsk(wave, kSamplesPerSymbol, bits.size() / 2);
  EXPECT_EQ(demod, bits);
}

TEST(Dsss, DqpskPhaseInvariant) {
  Rng rng(21);
  const BitVector bits = RandomBits(rng, 100);
  IqBuffer wave = ModulateDqpsk(bits);
  wave = dsp::RotatePhase(wave, 0.9);
  EXPECT_EQ(DemodulateDqpsk(wave, kSamplesPerSymbol, bits.size() / 2), bits);
}

TEST(Frame11b, TwoMbpsRoundTripNoiseless) {
  Rng rng(22);
  const Bytes payload = RandomBytes(rng, 80);
  const TxFrame frame = BuildFrame(payload, Rate11b::k2Mbps);
  IqBuffer padded(44, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  padded.insert(padded.end(), 44, Cplx{0.0, 0.0});
  const RxResult rx = ReceiveFrame(padded);
  ASSERT_TRUE(rx.detected);
  ASSERT_TRUE(rx.header_ok);
  EXPECT_EQ(rx.rate, Rate11b::k2Mbps);
  EXPECT_TRUE(rx.fcs_ok);
  EXPECT_EQ(rx.psdu, frame.psdu);
  EXPECT_EQ(rx.raw_psdu_bits, frame.raw_psdu_bits);
}

TEST(Frame11b, TwoMbpsHalvesAirtime) {
  Rng rng(23);
  const Bytes payload = RandomBytes(rng, 100);
  const TxFrame slow = BuildFrame(payload, Rate11b::k1Mbps);
  const TxFrame fast = BuildFrame(payload, Rate11b::k2Mbps);
  // Preamble/header airtime is shared; the PSDU part halves.
  EXPECT_LT(FrameDurationS(fast), FrameDurationS(slow));
  const double psdu_slow =
      FrameDurationS(slow) - static_cast<double>(slow.psdu_start_sample) /
                                 kSampleRateHz;
  const double psdu_fast =
      FrameDurationS(fast) - static_cast<double>(fast.psdu_start_sample) /
                                 kSampleRateHz;
  EXPECT_NEAR(psdu_fast, psdu_slow / 2.0, 20e-6);
}

TEST(Frame11b, TwoMbpsDecodesAtModerateSnr) {
  Rng rng(24);
  const Bytes payload = RandomBytes(rng, 60);
  const TxFrame frame = BuildFrame(payload, Rate11b::k2Mbps);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 6.0;
  IqBuffer padded(60, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  // DQPSK needs ~3 dB more than DBPSK; -89 dBm still decodes.
  const IqBuffer rx_wave = channel::ApplyLink(padded, -89.0, fe, rng);
  const RxResult rx = ReceiveFrame(rx_wave);
  ASSERT_TRUE(rx.detected);
  EXPECT_TRUE(rx.fcs_ok);
  EXPECT_EQ(rx.psdu, frame.psdu);
}

// ------------------------------------------------------------ hitchhike

TEST(Hitchhike, TagBitsRecoveredNoiseless) {
  Rng rng(9);
  const TxFrame frame = BuildFrame(RandomBytes(rng, 80));
  core::HitchhikeConfig cfg;
  const std::size_t capacity = core::HitchhikeCapacity(frame, cfg);
  ASSERT_GT(capacity, 50u);
  const BitVector tag_bits = RandomBits(rng, capacity);
  const IqBuffer bs =
      core::HitchhikeTranslate(frame, frame.waveform, tag_bits, cfg);
  IqBuffer padded(40, Cplx{0.0, 0.0});
  padded.insert(padded.end(), bs.begin(), bs.end());
  padded.insert(padded.end(), 40, Cplx{0.0, 0.0});
  const RxResult rx = ReceiveFrame(padded);
  ASSERT_TRUE(rx.detected);
  ASSERT_TRUE(rx.header_ok);
  const core::TagDecodeResult decoded =
      core::HitchhikeDecode(frame.raw_psdu_bits, rx.raw_psdu_bits, cfg.redundancy);
  ASSERT_GE(decoded.bits.size(), tag_bits.size());
  EXPECT_EQ(BitVector(decoded.bits.begin(),
                      decoded.bits.begin() +
                          static_cast<std::ptrdiff_t>(tag_bits.size())),
            tag_bits);
}

TEST(Hitchhike, ZeroTagBitsLeaveFcsValid) {
  Rng rng(10);
  const TxFrame frame = BuildFrame(RandomBytes(rng, 50));
  core::HitchhikeConfig cfg;
  const BitVector zeros(core::HitchhikeCapacity(frame, cfg), 0);
  const IqBuffer bs = core::HitchhikeTranslate(frame, frame.waveform, zeros, cfg);
  IqBuffer padded(40, Cplx{0.0, 0.0});
  padded.insert(padded.end(), bs.begin(), bs.end());
  const RxResult rx = ReceiveFrame(padded);
  ASSERT_TRUE(rx.detected);
  EXPECT_TRUE(rx.fcs_ok);
}

TEST(Hitchhike, RateMatchesRedundancy) {
  core::HitchhikeConfig cfg;
  cfg.redundancy = 4;
  EXPECT_NEAR(core::HitchhikeBitRateBps(cfg), 250e3, 1.0);
  cfg.redundancy = 8;
  EXPECT_NEAR(core::HitchhikeBitRateBps(cfg), 125e3, 1.0);
}

TEST(Hitchhike, RecoversAtModerateSnr) {
  Rng rng(11);
  const TxFrame frame = BuildFrame(RandomBytes(rng, 60));
  core::HitchhikeConfig cfg;
  cfg.redundancy = 8;
  const std::size_t capacity = core::HitchhikeCapacity(frame, cfg);
  const BitVector tag_bits = RandomBits(rng, capacity);
  const IqBuffer bs = core::HitchhikeTranslate(
      frame, channel::ToAbsolutePower(frame.waveform, -88.0), tag_bits, cfg);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 6.0;
  IqBuffer padded(60, Cplx{0.0, 0.0});
  padded.insert(padded.end(), bs.begin(), bs.end());
  const RxResult rx = ReceiveFrame(channel::AddThermalNoise(padded, fe, rng));
  ASSERT_TRUE(rx.header_ok);
  const core::TagDecodeResult decoded =
      core::HitchhikeDecode(frame.raw_psdu_bits, rx.raw_psdu_bits, cfg.redundancy);
  EXPECT_LT(BitErrorRate(tag_bits, decoded.bits), 0.05);
}

}  // namespace
}  // namespace freerider::phy80211b
