#include <gtest/gtest.h>

#include <set>

#include "channel/awgn.h"
#include "common/rng.h"
#include "dsp/signal_ops.h"
#include "phy802154/chips.h"
#include "phy802154/frame.h"
#include "phy802154/oqpsk.h"
#include "phy802154/params.h"

namespace freerider::phy802154 {
namespace {

// ----------------------------------------------------------------- chips

TEST(Chips, SixteenDistinctSequences) {
  std::set<std::string> seen;
  for (std::uint8_t s = 0; s < 16; ++s) {
    const ChipSequence& seq = ChipsForSymbol(s);
    std::string key(seq.begin(), seq.end());
    seen.insert(key);
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Chips, KnownSymbolZeroSequence) {
  const ChipSequence& c0 = ChipsForSymbol(0);
  const Bit expected[32] = {1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
                            0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0};
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(c0[i], expected[i]) << i;
}

TEST(Chips, SymbolOneIsRightRotationByFour) {
  const ChipSequence& c0 = ChipsForSymbol(0);
  const ChipSequence& c1 = ChipsForSymbol(1);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(c1[(i + 4) % 32], c0[i]);
  }
}

TEST(Chips, UpperSymbolsInvertOddChips) {
  const ChipSequence& c0 = ChipsForSymbol(0);
  const ChipSequence& c8 = ChipsForSymbol(8);
  for (std::size_t i = 0; i < 32; ++i) {
    if (i % 2 == 1) {
      EXPECT_NE(c8[i], c0[i]) << i;
    } else {
      EXPECT_EQ(c8[i], c0[i]) << i;
    }
  }
}

TEST(Chips, MinimumInterCodewordDistance) {
  // The codebook should have healthy minimum distance (the standard's
  // sequences have pairwise Hamming distances >= 12).
  for (std::uint8_t a = 0; a < 16; ++a) {
    for (std::uint8_t b = 0; b < 16; ++b) {
      if (a == b) continue;
      const ChipSequence& sa = ChipsForSymbol(a);
      const ChipSequence& sb = ChipsForSymbol(b);
      int d = 0;
      for (std::size_t i = 0; i < 32; ++i) d += (sa[i] != sb[i]);
      EXPECT_GE(d, 12) << static_cast<int>(a) << " vs " << static_cast<int>(b);
    }
  }
}

TEST(Chips, DespreadExact) {
  for (std::uint8_t s = 0; s < 16; ++s) {
    const ChipSequence& seq = ChipsForSymbol(s);
    const DespreadResult r =
        DespreadChips(std::span<const Bit>(seq.data(), seq.size()));
    EXPECT_EQ(r.symbol, s);
    EXPECT_EQ(r.distance, 0);
  }
}

TEST(Chips, DespreadTolerates5ChipErrors) {
  Rng rng(1);
  for (std::uint8_t s = 0; s < 16; ++s) {
    BitVector chips(ChipsForSymbol(s).begin(), ChipsForSymbol(s).end());
    std::set<std::size_t> flipped;
    while (flipped.size() < 5) flipped.insert(rng.NextBelow(32));
    for (std::size_t i : flipped) chips[i] ^= 1;
    EXPECT_EQ(DespreadChips(chips).symbol, s);
  }
}

TEST(Chips, TranslatedSymbolIsDeterministicAndDifferent) {
  // Paper §2.3.2 + our chips.h note: full chip inversion lands on a
  // deterministic *other* symbol — the translated codeword a coherent
  // receiver reports when the tag flips phase by 180°.
  for (std::uint8_t s = 0; s < 16; ++s) {
    const std::uint8_t t1 = TranslatedSymbol(s);
    const std::uint8_t t2 = TranslatedSymbol(s);
    EXPECT_EQ(t1, t2);
    EXPECT_NE(t1, s);
  }
}

TEST(Chips, BytesSymbolsRoundTrip) {
  Rng rng(2);
  const Bytes bytes = RandomBytes(rng, 33);
  EXPECT_EQ(SymbolsToBytes(BytesToSymbols(bytes)), bytes);
}

TEST(Chips, LowNibbleFirst) {
  const Bytes one = {0xA7};
  const auto symbols = BytesToSymbols(one);
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], 0x7);
  EXPECT_EQ(symbols[1], 0xA);
}

// ----------------------------------------------------------------- oqpsk

TEST(Oqpsk, RoundTripCleanChips) {
  Rng rng(3);
  BitVector chips = RandomBits(rng, 64);
  const IqBuffer wave = ModulateChips(chips);
  const BitVector demod = DemodulateChips(wave, 0, chips.size());
  EXPECT_EQ(demod, chips);
}

TEST(Oqpsk, UnitMeanPower) {
  Rng rng(4);
  const BitVector chips = RandomBits(rng, 512);
  const IqBuffer wave = ModulateChips(chips);
  EXPECT_NEAR(dsp::MeanPower(wave), 1.0, 0.1);
}

TEST(Oqpsk, RejectsOddChipCount) {
  BitVector chips(31, 0);
  EXPECT_THROW(ModulateChips(chips), std::invalid_argument);
}

TEST(Oqpsk, PhaseFlipInvertsChips) {
  Rng rng(5);
  const BitVector chips = RandomBits(rng, 64);
  IqBuffer wave = ModulateChips(chips);
  for (auto& x : wave) x = -x;
  const BitVector demod = DemodulateChips(wave, 0, chips.size());
  ASSERT_EQ(demod.size(), chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    EXPECT_EQ(demod[i], chips[i] ^ 1) << i;
  }
}

// ----------------------------------------------------------------- frame

TEST(Frame, RoundTripNoiseless) {
  Rng rng(6);
  const Bytes payload = RandomBytes(rng, 40);
  const TxFrame frame = BuildFrame(payload);
  IqBuffer rx(64, Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.waveform.begin(), frame.waveform.end());
  rx.insert(rx.end(), 64, Cplx{0.0, 0.0});
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_TRUE(result.fcs_ok);
  EXPECT_EQ(result.psdu, frame.psdu);
  EXPECT_EQ(result.data_symbols, frame.data_symbols);
  EXPECT_DOUBLE_EQ(result.mean_chip_distance, 0.0);
}

TEST(Frame, RoundTripWithRotatedChannel) {
  // A constant channel phase must be absorbed by the SHR phase lock.
  Rng rng(7);
  const Bytes payload = RandomBytes(rng, 20);
  const TxFrame frame = BuildFrame(payload);
  IqBuffer rx(32, Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.waveform.begin(), frame.waveform.end());
  rx = dsp::RotatePhase(rx, 1.234);
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_TRUE(result.fcs_ok);
  EXPECT_EQ(result.psdu, frame.psdu);
}

TEST(Frame, DecodesAtModerateSnr) {
  Rng rng(8);
  const Bytes payload = RandomBytes(rng, 30);
  const TxFrame frame = BuildFrame(payload);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 5.0;
  IqBuffer padded(128, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  padded.insert(padded.end(), 128, Cplx{0.0, 0.0});
  // -95 dBm against a ~ -99.9 dBm full-rate floor; DSSS gain does the rest.
  const IqBuffer rx = channel::ApplyLink(padded, -95.0, fe, rng);
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_TRUE(result.fcs_ok);
  EXPECT_EQ(result.psdu, frame.psdu);
}

TEST(Frame, FailsDeepBelowNoise) {
  Rng rng(9);
  const Bytes payload = RandomBytes(rng, 30);
  const TxFrame frame = BuildFrame(payload);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 5.0;
  const IqBuffer rx = channel::ApplyLink(frame.waveform, -125.0, fe, rng);
  const RxResult result = ReceiveFrame(rx);
  EXPECT_FALSE(result.fcs_ok);
}

TEST(Frame, RejectsOversizedPayload) {
  Bytes big(kMaxPsduBytes, 0);
  EXPECT_THROW(BuildFrame(big), std::invalid_argument);
}

TEST(Frame, FlippedWindowDecodesTranslatedSymbols) {
  // Tag behaviour end-to-end: 180°-flip a run of whole symbols in the
  // PSDU region; the receiver decodes exactly the translated codewords
  // there and the original symbols elsewhere.
  Rng rng(10);
  const Bytes payload = RandomBytes(rng, 24);
  const TxFrame frame = BuildFrame(payload);
  IqBuffer modified = frame.waveform;
  // Flip data symbols 4..11 (8 symbols, as paper §3.2.2 suggests N=8).
  const std::size_t flip_begin =
      frame.shr_samples + 4 * kSamplesPerSymbol;
  const std::size_t flip_len = 8 * kSamplesPerSymbol;
  for (std::size_t i = 0; i < flip_len; ++i) {
    modified[flip_begin + i] = -modified[flip_begin + i];
  }
  IqBuffer rx(32, Cplx{0.0, 0.0});
  rx.insert(rx.end(), modified.begin(), modified.end());
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  ASSERT_EQ(result.data_symbols.size(), frame.data_symbols.size());
  int translated = 0;
  int matching = 0;
  for (std::size_t s = 0; s < result.data_symbols.size(); ++s) {
    if (s >= 5 && s < 11) {
      // Interior of the flipped window (boundary symbols are corrupted
      // by the half-chip O-QPSK offset, which is the paper's point).
      EXPECT_EQ(result.data_symbols[s], TranslatedSymbol(frame.data_symbols[s]))
          << "symbol " << s;
      ++translated;
    } else if (s < 3 || s > 12) {
      EXPECT_EQ(result.data_symbols[s], frame.data_symbols[s]) << "symbol " << s;
      ++matching;
    }
  }
  EXPECT_GT(translated, 0);
  EXPECT_GT(matching, 0);
}

TEST(Frame, DurationMatchesBitBudget) {
  const Bytes payload(10, 0xAB);
  const TxFrame frame = BuildFrame(payload);
  // (8+2 SHR + 2 PHR + 24 PSDU) symbols * 16 us  = 576 us, plus the
  // single trailing pulse tail.
  EXPECT_NEAR(FrameDurationS(frame), 576e-6, 2e-6);
}

}  // namespace
}  // namespace freerider::phy802154
