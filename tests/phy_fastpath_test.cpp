// Equivalence suite for the SIMD/bit-parallel PHY fast path
// (DESIGN.md §13): every fast kernel must match its legacy scalar
// reference bit-for-bit — same decoded bits, same Detection, same
// RxResult down to the float fields — across rates, lengths, erasure
// phases, SNRs straddling the detection threshold, and workspace reuse.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/awgn.h"
#include "common/rng.h"
#include "dsp/kernels.h"
#include "dsp/workspace.h"
#include "phy80211/convolutional.h"
#include "phy80211/params.h"
#include "phy80211/receiver.h"
#include "phy80211/sync.h"
#include "phy80211/transmitter.h"

namespace freerider::phy80211 {
namespace {

constexpr CodingRate kRates[] = {CodingRate::kHalf, CodingRate::kTwoThirds,
                                 CodingRate::kThreeQuarters};

// Mother-coded stream with channel bit-flips and the puncture-position
// erasures the RX chain feeds the decoder. `info_len` rotates the tail
// of the stream through every phase of the puncture period.
BitVector NoisyDepuncturedStream(Rng& rng, std::size_t info_len,
                                 CodingRate rate, double flip_prob) {
  BitVector info = RandomBits(rng, info_len);
  const BitVector mother = ConvolutionalEncode(info);
  BitVector punctured = Puncture(mother, rate);
  for (auto& b : punctured) {
    if (rng.NextDouble() < flip_prob) b ^= 1;
  }
  return Depuncture(punctured, rate, mother.size());
}

TEST(FastViterbiTest, HardMatchesScalarAcrossRatesAndLengths) {
  // Lengths 1..256 cover every puncture phase at the stream tail for
  // both punctured rates (periods 4 and 6 mother bits).
  std::vector<std::uint8_t> decisions;
  for (CodingRate rate : kRates) {
    for (std::size_t len = 1; len <= 256; ++len) {
      Rng rng(1000 + len);
      const BitVector coded =
          NoisyDepuncturedStream(rng, len, rate, 0.05);
      const BitVector ref = ViterbiDecodeScalar(coded);
      BitVector fast;
      ViterbiDecodeInto(coded, decisions, fast);
      ASSERT_EQ(ref, fast) << "rate=" << static_cast<int>(rate)
                           << " len=" << len;
    }
  }
}

TEST(FastViterbiTest, HardMatchesScalarLongFramesManySeeds) {
  std::vector<std::uint8_t> decisions;
  for (CodingRate rate : kRates) {
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      Rng rng(seed * 31 + 7);
      const BitVector coded = NoisyDepuncturedStream(rng, 1000, rate, 0.08);
      const BitVector ref = ViterbiDecodeScalar(coded);
      BitVector fast;
      ViterbiDecodeInto(coded, decisions, fast);
      ASSERT_EQ(ref, fast) << "rate=" << static_cast<int>(rate)
                           << " seed=" << seed;
    }
  }
}

TEST(FastViterbiTest, HardMatchesScalarWithErasuresAtEveryPhase) {
  // Beyond the natural puncture positions: force an erasure at every
  // residue of the widest puncture period (6 mother bits = positions
  // 0..11 of the interleaved stream) to pin phase-independence.
  std::vector<std::uint8_t> decisions;
  for (std::size_t phase = 0; phase < 12; ++phase) {
    Rng rng(500 + phase);
    BitVector coded = NoisyDepuncturedStream(rng, 120, CodingRate::kHalf, 0.1);
    for (std::size_t i = phase; i < coded.size(); i += 12) coded[i] = 2;
    const BitVector ref = ViterbiDecodeScalar(coded);
    BitVector fast;
    ViterbiDecodeInto(coded, decisions, fast);
    ASSERT_EQ(ref, fast) << "phase=" << phase;
  }
}

TEST(FastViterbiTest, SoftMatchesScalarAcrossRatesAndLengths) {
  std::vector<std::uint8_t> decisions;
  for (CodingRate rate : kRates) {
    for (std::size_t len = 1; len <= 256; ++len) {
      Rng rng(2000 + len);
      BitVector info = RandomBits(rng, len);
      const BitVector mother = ConvolutionalEncode(info);
      const BitVector punctured = Puncture(mother, rate);
      std::vector<double> noisy;
      noisy.reserve(punctured.size());
      for (Bit b : punctured) {
        noisy.push_back((b ? 1.0 : -1.0) + 0.8 * rng.NextGaussian());
      }
      const std::vector<double> llrs =
          DepunctureSoft(noisy, rate, mother.size());
      const BitVector ref = ViterbiDecodeSoftScalar(llrs);
      BitVector fast;
      ViterbiDecodeSoftInto(llrs, decisions, fast);
      ASSERT_EQ(ref, fast) << "rate=" << static_cast<int>(rate)
                           << " len=" << len;
    }
  }
}

TEST(FastViterbiTest, SoftMatchesScalarLongFramesManySeeds) {
  std::vector<std::uint8_t> decisions;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed * 17 + 3);
    BitVector info = RandomBits(rng, 1000);
    const BitVector coded = ConvolutionalEncode(info);
    std::vector<double> llrs;
    llrs.reserve(coded.size());
    for (Bit b : coded) {
      llrs.push_back((b ? 1.0 : -1.0) + 1.2 * rng.NextGaussian());
    }
    const BitVector ref = ViterbiDecodeSoftScalar(llrs);
    BitVector fast;
    ViterbiDecodeSoftInto(llrs, decisions, fast);
    ASSERT_EQ(ref, fast) << "seed=" << seed;
  }
}

TEST(FastViterbiTest, PublicDispatchersMatchScalarOnEmptyInput) {
  std::vector<std::uint8_t> decisions;
  BitVector out{1, 1, 1};
  ViterbiDecodeInto(BitVector{}, decisions, out);
  EXPECT_TRUE(out.empty());
  out = {1, 1, 1};
  ViterbiDecodeSoftInto(std::vector<double>{}, decisions, out);
  EXPECT_TRUE(out.empty());
}

TEST(FastCorrelationTest, BlockedKernelMatchesSinglePosition) {
  // CorrelationPowerX4's per-position chain must equal the 1-position
  // kernel exactly — the scan remainder depends on it.
  Rng rng(11);
  std::vector<double> xr(64 + 3), xi(64 + 3), pr(64), pi(64);
  for (auto& v : xr) v = rng.NextGaussian();
  for (auto& v : xi) v = rng.NextGaussian();
  for (auto& v : pr) v = rng.NextGaussian();
  for (auto& v : pi) v = rng.NextGaussian();
  double block[4];
  dsp::CorrelationPowerX4(xr.data(), xi.data(), pr.data(), pi.data(), 64,
                          block);
  for (int j = 0; j < 4; ++j) {
    const double single = dsp::CorrelationPower(xr.data() + j, xi.data() + j,
                                                pr.data(), pi.data(), 64);
    EXPECT_EQ(single, block[j]) << "offset " << j;
  }
}

IqBuffer NoisyCapture(std::uint64_t seed, double rx_power_dbm,
                      std::size_t payload_len = 40,
                      std::size_t pad_front = 321) {
  Rng rng(seed);
  const TxFrame frame = BuildFrame(RandomBytes(rng, payload_len), {});
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 5.0;
  // Odd front pad so the frame start exercises the blocked scan's
  // mid-block (and remainder) positions, not just multiples of 4.
  IqBuffer padded(pad_front, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  padded.resize(padded.size() + 137, Cplx{0.0, 0.0});
  return channel::ApplyLink(padded, rx_power_dbm, fe, rng);
}

TEST(FastDetectTest, DetectionMatchesScalarAcrossSnrs) {
  // Power sweep straddles the detection threshold: strong captures
  // detect, deep-noise ones don't, and both paths must agree on every
  // field at every level — including the marginal ones.
  dsp::Workspace ws;
  int found = 0;
  int missed = 0;
  for (double dbm = -55.0; dbm >= -100.0; dbm -= 5.0) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const IqBuffer rx = NoisyCapture(seed, dbm);
      const Detection ref = DetectPreambleScalar(rx, 0.55);
      const Detection fast = DetectPreambleFast(rx, 0.55, ws);
      ASSERT_EQ(ref.found, fast.found) << "dbm=" << dbm << " seed=" << seed;
      ASSERT_EQ(ref.second_ltf_start, fast.second_ltf_start)
          << "dbm=" << dbm << " seed=" << seed;
      (ref.found ? found : missed) += 1;
    }
  }
  // The sweep must actually straddle the threshold to mean anything.
  EXPECT_GT(found, 0);
  EXPECT_GT(missed, 0);
}

void ExpectSameResult(const RxResult& ref, const RxResult& fast,
                      const char* what) {
  EXPECT_EQ(ref.detected, fast.detected) << what;
  EXPECT_EQ(ref.signal_ok, fast.signal_ok) << what;
  EXPECT_EQ(ref.fcs_ok, fast.fcs_ok) << what;
  EXPECT_EQ(ref.rate, fast.rate) << what;
  EXPECT_EQ(ref.psdu_len, fast.psdu_len) << what;
  EXPECT_EQ(ref.psdu, fast.psdu) << what;
  EXPECT_EQ(ref.data_bits, fast.data_bits) << what;
  EXPECT_EQ(ref.num_data_symbols, fast.num_data_symbols) << what;
  EXPECT_EQ(ref.scrambler_seed, fast.scrambler_seed) << what;
  EXPECT_EQ(ref.start_index, fast.start_index) << what;
  // Float fields compared exactly: the fast chain's arithmetic is
  // order-preserving, so these are bit-identical, not merely close.
  EXPECT_EQ(ref.rssi_dbm, fast.rssi_dbm) << what;
  EXPECT_EQ(ref.cfo_hz, fast.cfo_hz) << what;
  ASSERT_EQ(ref.constellation.size(), fast.constellation.size()) << what;
  for (std::size_t i = 0; i < ref.constellation.size(); ++i) {
    EXPECT_EQ(ref.constellation[i], fast.constellation[i]) << what;
  }
}

TEST(FastRxChainTest, FullChainMatchesScalarAcrossSnrs) {
  for (double dbm : {-60.0, -75.0, -85.0, -92.0}) {
    for (std::uint64_t seed = 10; seed < 13; ++seed) {
      const IqBuffer rx = NoisyCapture(seed, dbm, 100);
      const RxResult ref = ReceiveFrameScalar(rx);
      dsp::Workspace ws;
      RxResult fast;
      ReceiveFrame(rx, {}, ws, fast);
      ExpectSameResult(ref, fast, "default config");

      RxConfig soft;
      soft.soft_decision = true;
      soft.collect_constellation = true;
      const RxResult ref_soft = ReceiveFrameScalar(rx, soft);
      RxResult fast_soft;
      ReceiveFrame(rx, soft, ws, fast_soft);
      ExpectSameResult(ref_soft, fast_soft, "soft+constellation");
    }
  }
}

TEST(FastRxChainTest, WorkspaceReuseIsBitIdentical) {
  // One workspace reused across frames of different sizes and configs
  // must give the same results as a fresh workspace per frame —
  // leftover capacities and stale contents may never leak into output.
  dsp::Workspace reused;
  RxResult reused_result;
  const std::size_t payloads[] = {400, 23, 117, 40};
  for (std::size_t i = 0; i < std::size(payloads); ++i) {
    const IqBuffer rx = NoisyCapture(77 + i, -62.0, payloads[i]);
    RxConfig config;
    config.soft_decision = (i % 2 == 1);
    dsp::Workspace fresh;
    RxResult fresh_result;
    ReceiveFrame(rx, config, fresh, fresh_result);
    ReceiveFrame(rx, config, reused, reused_result);
    ExpectSameResult(fresh_result, reused_result, "reuse vs fresh");
    EXPECT_TRUE(fresh_result.fcs_ok) << "frame " << i;
  }
}

// Degenerate-window regression class: these captures used to reach the
// correlation scan (or detect past the end of the buffer) before the
// PickPairPeak guards.
TEST(FastDetectTest, AllZeroBufferNeverDetects) {
  const IqBuffer zeros(1024, Cplx{0.0, 0.0});
  dsp::Workspace ws;
  for (double threshold : {0.55, 0.0, -1.0}) {
    EXPECT_FALSE(DetectPreambleScalar(zeros, threshold).found);
    EXPECT_FALSE(DetectPreambleFast(zeros, threshold, ws).found);
  }
}

TEST(FastDetectTest, TooShortBufferNeverDetects) {
  dsp::Workspace ws;
  for (std::size_t n = 0; n < 128; ++n) {
    const IqBuffer rx(n, Cplx{0.1, -0.2});
    EXPECT_FALSE(DetectPreambleScalar(rx, 0.0).found) << n;
    EXPECT_FALSE(DetectPreambleFast(rx, 0.0, ws).found) << n;
  }
}

TEST(FastDetectTest, TruncatedCaptureRejectedByBothPaths) {
  // A capture cut off right after the preamble has a perfect LTF pair
  // but no room for the SIGNAL symbol — both paths must reject it
  // instead of returning a start index past the buffer.
  Rng rng(5);
  const TxFrame frame = BuildFrame(RandomBytes(rng, 40), {});
  dsp::Workspace ws;
  for (std::size_t keep = 2 * kFftSize + 64; keep < 400; keep += 17) {
    IqBuffer cut(frame.waveform.begin(),
                 frame.waveform.begin() +
                     static_cast<std::ptrdiff_t>(
                         std::min(keep, frame.waveform.size())));
    const Detection ref = DetectPreambleScalar(cut, 0.55);
    const Detection fast = DetectPreambleFast(cut, 0.55, ws);
    EXPECT_EQ(ref.found, fast.found) << keep;
    EXPECT_EQ(ref.second_ltf_start, fast.second_ltf_start) << keep;
    if (ref.found) {
      EXPECT_LE(ref.second_ltf_start + kFftSize + kSymbolLen, cut.size())
          << keep;
    }
  }
}

TEST(FastDetectTest, ZeroPaddedTailDoesNotShiftDetection) {
  // Trailing zeros create zero-energy windows near the end of the scan
  // — the energy gate must skip them without disturbing the peak.
  const IqBuffer rx = NoisyCapture(21, -60.0);
  IqBuffer padded = rx;
  padded.resize(padded.size() + 333, Cplx{0.0, 0.0});
  dsp::Workspace ws;
  const Detection base = DetectPreambleFast(rx, 0.55, ws);
  const Detection tail = DetectPreambleFast(padded, 0.55, ws);
  ASSERT_TRUE(base.found);
  EXPECT_EQ(base.second_ltf_start, tail.second_ltf_start);
  const Detection scalar_tail = DetectPreambleScalar(padded, 0.55);
  EXPECT_EQ(scalar_tail.found, tail.found);
  EXPECT_EQ(scalar_tail.second_ltf_start, tail.second_ltf_start);
}

}  // namespace
}  // namespace freerider::phy80211
