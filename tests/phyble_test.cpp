#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "dsp/signal_ops.h"
#include "phyble/frame.h"
#include "phyble/gfsk.h"
#include "phyble/params.h"
#include "phyble/whitening.h"

namespace freerider::phyble {
namespace {

// ------------------------------------------------------------- whitening

TEST(Whitening, Involution) {
  Rng rng(1);
  const BitVector bits = RandomBits(rng, 300);
  EXPECT_EQ(Whiten(Whiten(bits, 37), 37), bits);
}

TEST(Whitening, DifferentChannelsDiffer) {
  const BitVector zeros(64, 0);
  EXPECT_NE(Whiten(zeros, 0), Whiten(zeros, 1));
}

TEST(Whitening, NonTrivial) {
  const BitVector zeros(64, 0);
  const BitVector w = Whiten(zeros, 37);
  std::size_t ones = 0;
  for (Bit b : w) ones += b;
  EXPECT_GT(ones, 10u);
  EXPECT_LT(ones, 54u);
}

TEST(Whitening, RejectsBadChannel) {
  EXPECT_THROW(Whiten(BitVector(8, 0), 40), std::invalid_argument);
}

// ------------------------------------------------------------------ gfsk

TEST(Gfsk, ConstantEnvelope) {
  Rng rng(2);
  const BitVector bits = RandomBits(rng, 100);
  const IqBuffer wave = ModulateBits(bits);
  for (const Cplx& x : wave) EXPECT_NEAR(std::abs(x), 1.0, 1e-9);
}

TEST(Gfsk, FrequencyMatchesBits) {
  // Long runs of the same bit should settle to ±250 kHz.
  BitVector bits;
  bits.insert(bits.end(), 20, 1);
  bits.insert(bits.end(), 20, 0);
  const IqBuffer wave = ModulateBits(bits);
  const auto freq = Discriminate(wave);
  // Middle of the ones-run.
  EXPECT_NEAR(BitFrequency(freq, 0, 10), kFreqDeviationHz, 20e3);
  // Middle of the zeros-run.
  EXPECT_NEAR(BitFrequency(freq, 0, 30), -kFreqDeviationHz, 20e3);
}

TEST(Gfsk, RoundTripBits) {
  Rng rng(3);
  const BitVector bits = RandomBits(rng, 200);
  const IqBuffer wave = ModulateBits(bits);
  const auto freq = Discriminate(wave);
  for (std::size_t k = 1; k + 1 < bits.size(); ++k) {
    const Bit decided = static_cast<Bit>(BitFrequency(freq, 0, k) >= 0.0);
    EXPECT_EQ(decided, bits[k]) << "bit " << k;
  }
}

TEST(Gfsk, ChannelFilterRejectsOutOfBandTone) {
  // A ±750 kHz tone (the tag's unwanted sideband, Eq. 10) must be
  // strongly attenuated while ±250 kHz codewords pass.
  IqBuffer in_band(4000), out_band(4000);
  for (std::size_t n = 0; n < in_band.size(); ++n) {
    const double t = static_cast<double>(n) / kSampleRateHz;
    in_band[n] = std::polar(1.0, kTwoPi * 250e3 * t);
    out_band[n] = std::polar(1.0, kTwoPi * 750e3 * t);
  }
  const double pass = dsp::MeanPower(ChannelFilter(in_band));
  const double stop = dsp::MeanPower(ChannelFilter(out_band));
  EXPECT_GT(pass, 0.8);
  EXPECT_LT(stop, 0.05);
}

// ----------------------------------------------------------------- frame

TEST(Frame, RoundTripNoiseless) {
  Rng rng(4);
  const Bytes payload = RandomBytes(rng, 20);
  const TxFrame frame = BuildFrame(payload);
  IqBuffer rx(100, Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.waveform.begin(), frame.waveform.end());
  rx.insert(rx.end(), 100, Cplx{0.0, 0.0});
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, frame.payload);
  EXPECT_EQ(result.pdu_bits, frame.pdu_bits);
}

TEST(Frame, RoundTripWithPhaseRotation) {
  // FSK is noncoherent: a constant phase offset must not matter.
  Rng rng(5);
  const Bytes payload = RandomBytes(rng, 12);
  const TxFrame frame = BuildFrame(payload);
  IqBuffer rx(64, Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.waveform.begin(), frame.waveform.end());
  rx = dsp::RotatePhase(rx, 2.5);
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, frame.payload);
}

TEST(Frame, DecodesAtHighSnr) {
  Rng rng(6);
  const Bytes payload = RandomBytes(rng, 16);
  const TxFrame frame = BuildFrame(payload);
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 6.0;
  IqBuffer padded(128, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  padded.insert(padded.end(), 128, Cplx{0.0, 0.0});
  const IqBuffer rx = channel::ApplyLink(padded, -80.0, fe, rng);
  const RxResult result = ReceiveFrame(rx);
  ASSERT_TRUE(result.detected);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, frame.payload);
}

TEST(Frame, FailsDeepBelowNoise) {
  Rng rng(7);
  const TxFrame frame = BuildFrame(RandomBytes(rng, 16));
  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = kSampleRateHz;
  fe.noise_figure_db = 6.0;
  const IqBuffer rx = channel::ApplyLink(frame.waveform, -130.0, fe, rng);
  EXPECT_FALSE(ReceiveFrame(rx).crc_ok);
}

TEST(Frame, CodewordTranslationViaDeltaFToggle) {
  // The FreeRider Bluetooth mechanism (paper §2.3.3): multiplying the
  // FSK waveform by a square wave at Δf = |f1-f0| = 500 kHz flips every
  // codeword; the receiver's channel filter rejects the unwanted
  // sideband (Eq. 10), so the frame still decodes — with inverted bits.
  Rng rng(8);
  const Bytes payload = RandomBytes(rng, 10);
  const TxFrame frame = BuildFrame(payload);
  IqBuffer rx(64, Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.waveform.begin(), frame.waveform.end());
  const IqBuffer toggled = dsp::SquareWaveMix(rx, kTagDeltaFHz, kSampleRateHz,
                                              kPi / 7.0);

  // A receiver synchronised to the *inverted* header sees every bit
  // flipped. Build the RX with an access address whose bits are the
  // complement (preamble complement is handled by the same trick).
  // Instead of flipping the RX pattern we verify at the bit level: the
  // discriminator output flips sign bit-for-bit versus the original.
  const auto freq_orig = Discriminate(ChannelFilter(rx));
  const auto freq_flip = Discriminate(ChannelFilter(toggled));
  std::size_t flipped = 0;
  std::size_t total = 0;
  for (std::size_t k = 2; k + 2 < frame.air_bits.size(); ++k) {
    const Bit orig = static_cast<Bit>(BitFrequency(freq_orig, 64, k) >= 0.0);
    const Bit flip = static_cast<Bit>(BitFrequency(freq_flip, 64, k) >= 0.0);
    total += 1;
    flipped += (orig != flip);
  }
  // Steady bits flip reliably; isolated bits caught mid-Gaussian
  // transition produce ambiguous double-sideband products near the
  // filter edge and may not flip. This residual codeword error is real
  // physics and is exactly why FreeRider spreads one tag bit over many
  // Bluetooth bits (~50 kb/s tag rate on a 1 Mb/s PHY) and reports
  // elevated Bluetooth BER. Expect a clear majority to flip.
  EXPECT_GT(static_cast<double>(flipped) / static_cast<double>(total), 0.8);
}

TEST(Frame, ToleratesCarrierFrequencyOffset) {
  // A CC2541-class oscillator can sit tens of kHz off; the preamble
  // mean-frequency compensation must absorb it.
  Rng rng(9);
  const Bytes payload = RandomBytes(rng, 16);
  const TxFrame frame = BuildFrame(payload);
  for (double cfo : {-40e3, 25e3, 40e3}) {
    IqBuffer padded(64, Cplx{0.0, 0.0});
    padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
    padded.insert(padded.end(), 64, Cplx{0.0, 0.0});
    const IqBuffer shifted = dsp::MixFrequency(padded, cfo, kSampleRateHz);
    const RxResult rx = ReceiveFrame(shifted);
    ASSERT_TRUE(rx.detected) << cfo;
    EXPECT_TRUE(rx.crc_ok) << cfo;
    EXPECT_EQ(rx.payload, frame.payload) << cfo;
  }
}

TEST(Frame, RejectsOversizedPayload) {
  Bytes big(kMaxPayloadBytes + 1, 0);
  EXPECT_THROW(BuildFrame(big), std::invalid_argument);
}

TEST(Frame, DurationMatchesBitCount) {
  const Bytes payload(10, 0x5A);
  const TxFrame frame = BuildFrame(payload);
  // 8 + 32 + (1+10+3)*8 = 152 bits at 1 Mb/s = 152 us.
  EXPECT_NEAR(FrameDurationS(frame), 152e-6, 2e-6);
}

}  // namespace
}  // namespace freerider::phyble
