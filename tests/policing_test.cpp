// Coordinator-side slot policing (mac/policing): per-round occupancy
// counts and the identity-collision (clone) detector, folded over the
// decoded frame stream. The property the supervisor's detection bound
// leans on: honest traffic — including resync jumps — charges zero
// evidence; real offenders charge every round they offend.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mac/policing.h"

namespace {

using namespace freerider;
using mac::PolicingConfig;
using mac::SlotPolice;

PolicingConfig Enabled() {
  PolicingConfig config;
  config.enabled = true;
  return config;
}

TEST(SlotPoliceTest, HonestSingleFrameRoundsChargeNothing) {
  SlotPolice police(Enabled(), 3);
  for (std::size_t round = 0; round < 64; ++round) {
    police.BeginRound(round);
    for (std::size_t t = 0; t < 3; ++t) {
      police.OnFrame(t, static_cast<std::uint8_t>(round));
    }
    const std::vector<std::size_t> evidence = police.EndRound();
    for (std::size_t t = 0; t < 3; ++t) EXPECT_EQ(evidence[t], 0u);
  }
  EXPECT_EQ(police.stats().evidence_total, 0u);
  EXPECT_FALSE(police.collision_suspected(0));
}

TEST(SlotPoliceTest, MultiFireChargesPerExtraFrame) {
  SlotPolice police(Enabled(), 2);
  police.BeginRound(0);
  police.OnFrame(0, 1);
  police.OnFrame(0, 2);
  police.OnFrame(0, 3);  // babbler: 3 frames, budget 1
  police.OnFrame(1, 9);
  const std::vector<std::size_t> evidence = police.EndRound();
  EXPECT_EQ(evidence[0], 2u);
  EXPECT_EQ(evidence[1], 0u);
  EXPECT_EQ(police.tag_stats(0).extra_frames, 2u);
  EXPECT_EQ(police.tag_stats(0).multi_fire_rounds, 1u);
  EXPECT_EQ(police.stats().evidence_total, 2u);
}

TEST(SlotPoliceTest, SingleResyncJumpDoesNotRaiseSuspicion) {
  // An honest tag that went silent and re-anchored jumps once in the
  // serial space. One jump (even a couple, spread out) must never look
  // like a clone.
  SlotPolice police(Enabled(), 1);
  std::uint8_t seq = 10;
  std::size_t round = 0;
  for (; round < 10; ++round) {
    police.BeginRound(round);
    police.OnFrame(0, seq++);
    EXPECT_EQ(police.EndRound()[0], 0u);
  }
  seq = 200;  // resync: one big jump
  for (; round < 20; ++round) {
    police.BeginRound(round);
    police.OnFrame(0, seq++);
    EXPECT_EQ(police.EndRound()[0], 0u);
  }
  EXPECT_FALSE(police.collision_suspected(0));
  EXPECT_EQ(police.tag_stats(0).seq_jumps, 1u);
}

TEST(SlotPoliceTest, InterleavedCloneStreamsRaiseLatchedSuspicion) {
  // Two physical tags on one id: a live stream near seq and a clone
  // stream half the space away. Every other arrival jumps ~128.
  PolicingConfig config = Enabled();
  SlotPolice police(config, 2);
  bool suspected = false;
  std::size_t suspicion_round = 0;
  for (std::size_t round = 0; round < 16 && !suspected; ++round) {
    police.BeginRound(round);
    police.OnFrame(0, static_cast<std::uint8_t>(round));        // honest
    police.OnFrame(0, static_cast<std::uint8_t>(round + 128));  // clone
    police.OnFrame(1, static_cast<std::uint8_t>(round));        // bystander
    const std::vector<std::size_t> evidence = police.EndRound();
    EXPECT_EQ(evidence[1], 0u);
    if (police.collision_suspected(0)) {
      suspected = true;
      suspicion_round = round;
      // The round the suspicion fires charges the collision burst on
      // top of the extra-frame count.
      EXPECT_GE(evidence[0], config.collision_evidence);
    }
  }
  ASSERT_TRUE(suspected);
  EXPECT_LE(suspicion_round, 4u);  // 3 jumps at 2 arrivals/round
  EXPECT_GE(police.tag_stats(0).collision_suspicions, 1u);

  // Latched: stays suspected through clean rounds, until the
  // challenge/re-announce recovery resolves it.
  police.BeginRound(100);
  police.OnFrame(0, 7);
  police.EndRound();
  EXPECT_TRUE(police.collision_suspected(0));
  police.ResetIdentity(0);
  EXPECT_FALSE(police.collision_suspected(0));
  // Re-armed, not dead: a clone returning after the reset is caught
  // again.
  for (std::size_t round = 101; round < 116; ++round) {
    police.BeginRound(round);
    police.OnFrame(0, static_cast<std::uint8_t>(round));
    police.OnFrame(0, static_cast<std::uint8_t>(round + 128));
    police.EndRound();
  }
  EXPECT_TRUE(police.collision_suspected(0));
  EXPECT_GE(police.tag_stats(0).collision_suspicions, 2u);
}

TEST(SlotPoliceTest, UnattributedFramesCountedNeverDropped) {
  SlotPolice police(Enabled(), 2);
  police.BeginRound(0);
  police.OnUnattributedFrame();
  police.OnUnattributedFrame();
  police.EndRound();
  EXPECT_EQ(police.stats().unattributed_frames, 2u);
}

TEST(SlotPoliceTest, SnapshotRoundTripPreservesDetectorState) {
  SlotPolice live(Enabled(), 2);
  // Park the detector two jumps shy of suspicion, mid-window.
  for (std::size_t round = 0; round < 4; ++round) {
    live.BeginRound(round);
    live.OnFrame(0, static_cast<std::uint8_t>(round * 100));
    live.OnFrame(0, static_cast<std::uint8_t>(round * 100 + 1));
    live.EndRound();
  }
  const std::string snapshot = live.Serialize();
  SlotPolice restored(Enabled(), 2);
  ASSERT_TRUE(restored.Deserialize(snapshot));

  auto drive = [](SlotPolice& p) {
    std::vector<std::size_t> evidence;
    for (std::size_t round = 4; round < 10; ++round) {
      p.BeginRound(round);
      p.OnFrame(0, static_cast<std::uint8_t>(round));
      p.OnFrame(0, static_cast<std::uint8_t>(round + 128));
      const std::vector<std::size_t> e = p.EndRound();
      evidence.insert(evidence.end(), e.begin(), e.end());
    }
    return evidence;
  };
  EXPECT_EQ(drive(live), drive(restored));
  EXPECT_EQ(live.collision_suspected(0), restored.collision_suspected(0));
  EXPECT_EQ(live.tag_stats(0).seq_jumps, restored.tag_stats(0).seq_jumps);
  EXPECT_EQ(live.Serialize(), restored.Serialize());

  SlotPolice fresh(Enabled(), 2);
  EXPECT_FALSE(fresh.Deserialize("not a snapshot"));
  SlotPolice wrong_size(Enabled(), 3);
  EXPECT_FALSE(wrong_size.Deserialize(snapshot));
}

TEST(SlotPoliceTest, DisabledPoliceObservesNothing) {
  PolicingConfig config;  // enabled = false
  SlotPolice police(config, 2);
  police.BeginRound(0);
  police.OnFrame(0, 1);
  police.OnFrame(0, 200);
  police.OnFrame(0, 3);
  police.OnUnattributedFrame();
  const std::vector<std::size_t> evidence = police.EndRound();
  EXPECT_EQ(evidence[0], 0u);
  EXPECT_EQ(police.stats().evidence_total, 0u);
  EXPECT_EQ(police.stats().unattributed_frames, 0u);
}

}  // namespace
