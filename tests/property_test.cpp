// Property-based tests: parameterized sweeps asserting the algebraic
// invariants the system's correctness rests on — linearity of the
// scrambler and convolutional code (the foundation of XOR decoding),
// bijectivity of every (de)mapping stage, capacity/rate identities of
// the translator, and monotonicity of the channel and budget models.
#include <gtest/gtest.h>

#include <tuple>

#include "channel/link_budget.h"
#include "common/bits.h"
#include "common/rng.h"
#include "core/translator.h"
#include "core/xor_decoder.h"
#include "dsp/fft.h"
#include "dsp/signal_ops.h"
#include "phy80211/constellation.h"
#include "phy80211/convolutional.h"
#include "phy80211/interleaver.h"
#include "phy80211/scrambler.h"
#include "phy802154/chips.h"
#include "phyble/whitening.h"

namespace freerider {
namespace {

// ------------------------------------------------------ linearity sweep

class LinearitySeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearitySeed, ScramblerIsAffineInItsInput) {
  // scramble(a) ^ scramble(b) = a ^ b for equal seeds: the whitening
  // cancels, which is precisely why two receivers' descrambled streams
  // XOR to the tag bits.
  Rng rng(GetParam());
  const BitVector a = RandomBits(rng, 256);
  const BitVector b = RandomBits(rng, 256);
  phy80211::Scrambler s1(0x4A), s2(0x4A);
  EXPECT_EQ(XorBits(s1.Process(a), s2.Process(b)), XorBits(a, b));
}

TEST_P(LinearitySeed, ConvolutionalCodeIsLinear) {
  Rng rng(GetParam() * 3 + 1);
  const BitVector a = RandomBits(rng, 200);
  const BitVector b = RandomBits(rng, 200);
  EXPECT_EQ(phy80211::ConvolutionalEncode(XorBits(a, b)),
            XorBits(phy80211::ConvolutionalEncode(a),
                    phy80211::ConvolutionalEncode(b)));
}

TEST_P(LinearitySeed, BleWhiteningIsAffine) {
  Rng rng(GetParam() * 5 + 2);
  const BitVector a = RandomBits(rng, 128);
  const BitVector b = RandomBits(rng, 128);
  EXPECT_EQ(XorBits(phyble::Whiten(a, 21), phyble::Whiten(b, 21)),
            XorBits(a, b));
}

TEST_P(LinearitySeed, WindowFlipPropagatesThroughCodePipeline) {
  // Flipping a whole-symbol-aligned window of data bits flips the
  // corresponding scrambled+coded+interleaved window — the §3.2.1
  // argument, checked end-to-end through the TX bit pipeline.
  Rng rng(GetParam() * 7 + 3);
  const auto& params = phy80211::ParamsFor(phy80211::Rate::k6Mbps);
  const std::size_t symbols = 8;
  BitVector data = RandomBits(rng, symbols * params.data_bits_per_symbol);
  BitVector flipped = data;
  // Flip symbols 2..5.
  for (std::size_t i = 2 * params.data_bits_per_symbol;
       i < 6 * params.data_bits_per_symbol; ++i) {
    flipped[i] ^= 1;
  }
  auto pipeline = [&](const BitVector& bits) {
    phy80211::Scrambler s(0x33);
    const BitVector scrambled = s.Process(bits);
    const BitVector coded = phy80211::Puncture(
        phy80211::ConvolutionalEncode(scrambled), params.coding);
    return phy80211::InterleaveStream(coded, params);
  };
  const BitVector out_a = pipeline(data);
  const BitVector out_b = pipeline(flipped);
  // Differences must be confined to coded symbols 2..6 (one symbol of
  // trellis memory bleeds forward).
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    const std::size_t sym = i / params.coded_bits_per_symbol;
    if (sym < 2 || sym > 6) {
      EXPECT_EQ(out_a[i], out_b[i]) << "coded bit " << i;
    }
  }
  // And inside the window the two streams differ heavily.
  std::size_t diff = 0;
  for (std::size_t i = 2 * params.coded_bits_per_symbol;
       i < 6 * params.coded_bits_per_symbol; ++i) {
    diff += out_a[i] != out_b[i];
  }
  EXPECT_GT(diff, params.coded_bits_per_symbol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearitySeed,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --------------------------------------------------- round-trip sweeps

class RoundTripSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripSeed, ViterbiInvertsEncoderForAllRates) {
  Rng rng(GetParam());
  for (const auto& params : phy80211::kRateTable) {
    BitVector data = RandomBits(rng, 120);
    for (int i = 0; i < 6; ++i) data.push_back(0);
    const BitVector mother = phy80211::ConvolutionalEncode(data);
    const BitVector punctured = phy80211::Puncture(mother, params.coding);
    const BitVector restored =
        phy80211::Depuncture(punctured, params.coding, mother.size());
    EXPECT_EQ(phy80211::ViterbiDecode(restored), data)
        << "rate " << params.mbps;
  }
}

TEST_P(RoundTripSeed, InterleaverBijectiveOnRandomStreams) {
  Rng rng(GetParam() + 1000);
  for (const auto& params : phy80211::kRateTable) {
    const BitVector bits =
        RandomBits(rng, 3 * params.coded_bits_per_symbol);
    EXPECT_EQ(phy80211::DeinterleaveStream(
                  phy80211::InterleaveStream(bits, params), params),
              bits);
  }
}

TEST_P(RoundTripSeed, ChipSpreadingInvertible) {
  Rng rng(GetParam() + 2000);
  std::vector<std::uint8_t> symbols(64);
  for (auto& s : symbols) s = static_cast<std::uint8_t>(rng.NextBelow(16));
  const BitVector chips = phy802154::SpreadSymbols(symbols);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const auto r = phy802154::DespreadChips(
        std::span<const Bit>(chips).subspan(i * 32, 32));
    EXPECT_EQ(r.symbol, symbols[i]);
    EXPECT_EQ(r.distance, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSeed,
                         ::testing::Values(5, 15, 25, 35, 45));

// ----------------------------------------------- translator invariants

class TranslatorProperty
    : public ::testing::TestWithParam<std::tuple<core::RadioType, std::size_t>> {
};

TEST_P(TranslatorProperty, ConstantEnvelopeUpToConversion) {
  // A phase/FSK translator must not change |sample| beyond the constant
  // conversion amplitude — the tag cannot amplify.
  const auto [radio, redundancy] = GetParam();
  Rng rng(9);
  IqBuffer excitation(4000);
  for (auto& x : excitation) x = rng.NextComplexGaussian();
  core::TranslateConfig cfg;
  cfg.radio = radio;
  cfg.redundancy = redundancy;
  const BitVector bits = RandomBits(rng, 64);
  const IqBuffer out = core::Translate(excitation, bits, cfg);
  ASSERT_EQ(out.size(), excitation.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(std::abs(out[i]),
                std::abs(excitation[i]) * tag::kSidebandAmplitude, 1e-9);
  }
}

TEST_P(TranslatorProperty, CapacityMatchesRateTimesAirtime) {
  const auto [radio, redundancy] = GetParam();
  core::TranslateConfig cfg;
  cfg.radio = radio;
  cfg.redundancy = redundancy;
  const std::size_t samples = 50000;
  const std::size_t cap = core::TagBitCapacity(samples, cfg);
  const double sample_rate = static_cast<double>(
      core::SamplesPerCodeword(radio));  // samples per codeword
  // capacity * N * samples_per_codeword <= usable samples < +1 window
  const std::size_t start = core::ModulationStartSamples(radio);
  const std::size_t usable = samples - start;
  EXPECT_LE(cap * redundancy * static_cast<std::size_t>(sample_rate), usable);
  EXPECT_GT((cap + 1) * redundancy * static_cast<std::size_t>(sample_rate),
            usable);
}

TEST_P(TranslatorProperty, ZeroBitsMeansPurePassthrough) {
  const auto [radio, redundancy] = GetParam();
  Rng rng(10);
  IqBuffer excitation(6000);
  for (auto& x : excitation) x = rng.NextComplexGaussian();
  core::TranslateConfig cfg;
  cfg.radio = radio;
  cfg.redundancy = redundancy;
  const BitVector zeros(128, 0);
  const IqBuffer out = core::Translate(excitation, zeros, cfg);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(std::abs(out[i] - excitation[i] * tag::kSidebandAmplitude),
                0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TranslatorProperty,
    ::testing::Combine(::testing::Values(core::RadioType::kWifi,
                                         core::RadioType::kZigbee,
                                         core::RadioType::kBluetooth),
                       ::testing::Values(2u, 4u, 8u, 16u)));

// ----------------------------------------------- decoder threshold sweep

class DecoderThreshold : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecoderThreshold, PerfectStreamsDecodeAtAnyRedundancy) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const std::size_t symbols = 2 + n * 10;  // skip + 10 windows
  std::vector<std::uint8_t> ref(symbols);
  for (auto& s : ref) s = static_cast<std::uint8_t>(rng.NextBelow(16));
  std::vector<std::uint8_t> rx = ref;
  // Encode alternating tag bits by translating windows.
  BitVector expected;
  for (std::size_t w = 0; w < 10; ++w) {
    const Bit bit = static_cast<Bit>(w % 2);
    expected.push_back(bit);
    if (bit) {
      for (std::size_t u = 0; u < n; ++u) {
        const std::size_t idx = 2 + w * n + u;
        rx[idx] = phy802154::TranslatedSymbol(ref[idx]);
      }
    }
  }
  const core::TagDecodeResult decoded = core::DecodeZigbee(ref, rx, n);
  ASSERT_EQ(decoded.bits.size(), expected.size());
  EXPECT_EQ(decoded.bits, expected);
  // Diff fractions are extreme: ~0 for zeros, ~1 for ones.
  for (std::size_t w = 0; w < decoded.diff_fractions.size(); ++w) {
    if (expected[w]) {
      EXPECT_GT(decoded.diff_fractions[w], 0.9);
    } else {
      EXPECT_LT(decoded.diff_fractions[w], 0.1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, DecoderThreshold, ::testing::Values(1, 2, 4, 8));

// ------------------------------------------------- budget monotonicity

class BudgetDistance : public ::testing::TestWithParam<double> {};

TEST_P(BudgetDistance, MoreWallsNeverHelp) {
  channel::BackscatterBudget budget;
  budget.path = channel::NlosModel();
  const double d = GetParam();
  for (int walls = 0; walls < 4; ++walls) {
    EXPECT_GT(budget.ReceivedDbm(1.0, d, 0, walls),
              budget.ReceivedDbm(1.0, d, 0, walls + 1));
  }
}

TEST_P(BudgetDistance, SymmetricInSegments) {
  // Reciprocity: swapping the two path segments leaves the budget
  // unchanged (same product of losses).
  channel::BackscatterBudget budget;
  budget.path = channel::LosModel();
  const double d = GetParam();
  EXPECT_NEAR(budget.ReceivedDbm(d, 3.0), budget.ReceivedDbm(3.0, d), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Distances, BudgetDistance,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0, 20.0, 40.0));

// ------------------------------------------ constellation rotations 90°

class Rotation90 : public ::testing::TestWithParam<phy80211::Modulation> {};

TEST_P(Rotation90, QuarterTurnMapsToValidPoints) {
  // Eq. 5's quaternary scheme needs 90° closure; true for QPSK and the
  // square QAMs but NOT for BPSK.
  Rng rng(12);
  const auto mod = GetParam();
  const std::size_t bps = phy80211::BitsPerSymbol(mod);
  const BitVector bits = RandomBits(rng, bps * 50);
  IqBuffer symbols = phy80211::MapBits(bits, mod);
  const Cplx j{0.0, 1.0};
  for (auto& s : symbols) s *= j;
  for (const Cplx& s : symbols) {
    const bool valid = phy80211::IsValidConstellationPoint(s, mod, 1e-9);
    if (mod == phy80211::Modulation::kBpsk) {
      EXPECT_FALSE(valid);
    } else {
      EXPECT_TRUE(valid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMods, Rotation90,
                         ::testing::Values(phy80211::Modulation::kBpsk,
                                           phy80211::Modulation::kQpsk,
                                           phy80211::Modulation::kQam16,
                                           phy80211::Modulation::kQam64));

// --------------------------------------------- FFT shift theorem check

class FftShift : public ::testing::TestWithParam<int> {};

TEST_P(FftShift, FrequencyMixMovesBins) {
  // Mixing by k bins cyclically shifts the spectrum by k — the
  // frequency-domain picture of the tag's channel shift.
  const int k = GetParam();
  Rng rng(13);
  IqBuffer x(64);
  for (auto& v : x) v = rng.NextComplexGaussian();
  const IqBuffer shifted =
      dsp::MixFrequency(x, static_cast<double>(k) * 1.0 / 64.0, 1.0);
  IqBuffer fx = dsp::FftCopy(x);
  IqBuffer fs = dsp::FftCopy(shifted);
  for (int bin = 0; bin < 64; ++bin) {
    const int src = ((bin - k) % 64 + 64) % 64;
    EXPECT_NEAR(std::abs(fs[static_cast<std::size_t>(bin)] -
                         fx[static_cast<std::size_t>(src)]),
                0.0, 1e-6)
        << "bin " << bin;
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, FftShift, ::testing::Values(1, 5, 17, 32, 63));

}  // namespace
}  // namespace freerider
