#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/multipath.h"
#include "common/bits.h"
#include "common/rng.h"
#include "core/quaternary.h"
#include "core/translator.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

namespace freerider::core {
namespace {

// ------------------------------------------------ rebuild constellation

TEST(Quaternary, RebuildMatchesTransmitter) {
  // The reference pipeline must reproduce the TX constellation exactly
  // when fed the TX's own data bits and seed.
  Rng rng(1);
  phy80211::TxConfig txcfg;
  txcfg.rate = phy80211::Rate::k12Mbps;
  txcfg.scrambler_seed = 0x2F;
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 120), txcfg);
  const IqBuffer expected =
      RebuildConstellation(frame.data_bits, phy80211::ParamsFor(txcfg.rate),
                           txcfg.scrambler_seed, frame.psdu.size());

  // Receive the frame noiselessly and compare the equalized points.
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), frame.waveform.begin(), frame.waveform.end());
  phy80211::RxConfig rxcfg;
  rxcfg.collect_constellation = true;
  const phy80211::RxResult rx = phy80211::ReceiveFrame(padded, rxcfg);
  ASSERT_TRUE(rx.signal_ok);
  ASSERT_EQ(rx.constellation.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(std::abs(rx.constellation[i] - expected[i]), 0.0, 1e-6) << i;
  }
}

// --------------------------------------------------- end-to-end decode

struct QuaternaryRun {
  BitVector sent;
  TagDecodeResult decoded;
};

QuaternaryRun RunQuaternaryLink(double rx_dbm, phy80211::Rate rate, Rng& rng) {
  phy80211::TxConfig txcfg;
  txcfg.rate = rate;
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 400), txcfg);
  TranslateConfig tcfg;
  tcfg.quaternary = true;
  tcfg.redundancy = 4;
  QuaternaryRun run;
  run.sent = RandomBits(rng, TagBitCapacity(frame.waveform.size(), tcfg));
  const IqBuffer bs = Translate(
      channel::ToAbsolutePower(frame.waveform, rx_dbm), run.sent, tcfg);

  channel::ReceiverFrontEnd fe;
  fe.sample_rate_hz = phy80211::kSampleRateHz;
  fe.noise_figure_db = 5.0;
  IqBuffer padded(120, Cplx{0.0, 0.0});
  padded.insert(padded.end(), bs.begin(), bs.end());
  phy80211::RxConfig rxcfg;
  rxcfg.collect_constellation = true;
  const phy80211::RxResult rx =
      phy80211::ReceiveFrame(channel::AddThermalNoise(padded, fe, rng), rxcfg);
  if (!rx.signal_ok) return run;

  // Receiver 1's decoded bits = the TX ground truth (strong link).
  const IqBuffer reference =
      RebuildConstellation(frame.data_bits, phy80211::ParamsFor(rate),
                           txcfg.scrambler_seed, frame.psdu.size());
  run.decoded =
      DecodeWifiQuaternary(reference, rx.constellation, tcfg.redundancy);
  return run;
}

TEST(Quaternary, DecodesTwoBitsPerWindowOnQpsk) {
  Rng rng(2);
  const QuaternaryRun run =
      RunQuaternaryLink(-70.0, phy80211::Rate::k12Mbps, rng);
  ASSERT_GE(run.decoded.bits.size(), run.sent.size());
  EXPECT_EQ(BitVector(run.decoded.bits.begin(),
                      run.decoded.bits.begin() +
                          static_cast<std::ptrdiff_t>(run.sent.size())),
            run.sent);
}

TEST(Quaternary, DoublesTagRate) {
  TranslateConfig binary;
  binary.redundancy = 4;
  TranslateConfig quad = binary;
  quad.quaternary = true;
  EXPECT_NEAR(TagBitRateBps(quad), 2.0 * TagBitRateBps(binary), 1.0);
  EXPECT_NEAR(TagBitRateBps(quad), 125000.0, 1.0);
}

TEST(Quaternary, SurvivesModerateNoise) {
  Rng rng(3);
  const QuaternaryRun run =
      RunQuaternaryLink(-84.0, phy80211::Rate::k12Mbps, rng);
  ASSERT_FALSE(run.decoded.bits.empty());
  EXPECT_LT(BitErrorRate(run.sent, run.decoded.bits), 0.02);
}

TEST(Quaternary, WorksOn16Qam) {
  Rng rng(4);
  const QuaternaryRun run =
      RunQuaternaryLink(-70.0, phy80211::Rate::k24Mbps, rng);
  ASSERT_FALSE(run.decoded.bits.empty());
  EXPECT_EQ(BitVector(run.decoded.bits.begin(),
                      run.decoded.bits.begin() +
                          static_cast<std::ptrdiff_t>(run.sent.size())),
            run.sent);
}

TEST(Quaternary, ResidualEvidenceSmallOnCleanLink) {
  Rng rng(5);
  const QuaternaryRun run =
      RunQuaternaryLink(-65.0, phy80211::Rate::k12Mbps, rng);
  for (double residual : run.decoded.diff_fractions) {
    EXPECT_LT(residual, 0.2);
  }
}

// -------------------------------------------------------- multipath

TEST(Multipath, UnitPowerTaps) {
  Rng rng(6);
  const auto mp = channel::MultipathChannel::Rayleigh(5, 3.0, rng);
  double total = 0.0;
  for (const Cplx& t : mp.taps()) total += std::norm(t);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Multipath, SingleTapIsIdentityScale) {
  channel::MultipathChannel mp({Cplx{1.0, 0.0}});
  Rng rng(7);
  IqBuffer x(100);
  for (auto& v : x) v = rng.NextComplexGaussian();
  const IqBuffer y = mp.Apply(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
  }
}

TEST(Multipath, DelaySpreadGrowsWithTaps) {
  Rng rng(8);
  const auto short_ch = channel::MultipathChannel::Rayleigh(2, 3.0, rng);
  const auto long_ch = channel::MultipathChannel::Rayleigh(12, 1.0, rng);
  EXPECT_LT(short_ch.RmsDelaySpreadSamples(), long_ch.RmsDelaySpreadSamples());
}

TEST(Multipath, RejectsEmptyTaps) {
  EXPECT_THROW(channel::MultipathChannel({}), std::invalid_argument);
}

TEST(Multipath, OfdmEqualizesInCpChannel) {
  // Delay spread inside the cyclic prefix: the OFDM receiver must still
  // decode the frame (per-subcarrier equalization).
  Rng rng(9);
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 200), {});
  const auto mp = channel::MultipathChannel::Rayleigh(6, 2.0, rng, 10.0);
  IqBuffer faded = mp.Apply(frame.waveform);
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), faded.begin(), faded.end());
  const phy80211::RxResult rx = phy80211::ReceiveFrame(padded);
  ASSERT_TRUE(rx.signal_ok);
  EXPECT_TRUE(rx.fcs_ok);
}

}  // namespace
}  // namespace freerider::core
