// Property tests for the counter-based stream derivation and the
// Lemire NextBelow sampler that back the parallel runtime.
//
// The runtime's determinism guarantee rests on two properties proved
// here: Rng::ForTrial is a pure function of (seed, point, trial) —
// invariant to derivation order — and distinct trial streams do not
// collide over long draw sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace freerider {
namespace {

// ------------------------------------------------------- ForTrial

TEST(RngStream, ForTrialIsReproducible) {
  Rng a = Rng::ForTrial(42, 3, 7);
  Rng b = Rng::ForTrial(42, 3, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngStream, ForTrialIsInvariantToDerivationOrder) {
  // Derive (point, trial) pairs in two very different orders; the
  // streams must be identical — this is what makes parallel results
  // independent of scheduling.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> grid;
  for (std::uint64_t p = 0; p < 8; ++p)
    for (std::uint64_t t = 0; t < 8; ++t) grid.emplace_back(p, t);

  std::vector<std::uint64_t> forward, reversed;
  for (const auto& [p, t] : grid) {
    forward.push_back(Rng::ForTrial(99, p, t).NextU64());
  }
  std::reverse(grid.begin(), grid.end());
  for (const auto& [p, t] : grid) {
    reversed.push_back(Rng::ForTrial(99, p, t).NextU64());
  }
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_EQ(forward, reversed);
}

TEST(RngStream, ForTrialNeighborStreamsDiffer) {
  // Adjacent counters must give unrelated streams (SplitMix64
  // avalanche): first draws across a neighborhood are all distinct.
  std::unordered_set<std::uint64_t> first_draws;
  for (std::uint64_t p = 0; p < 32; ++p) {
    for (std::uint64_t t = 0; t < 32; ++t) {
      first_draws.insert(Rng::ForTrial(7, p, t).NextU64());
    }
  }
  EXPECT_EQ(first_draws.size(), 32u * 32u);
}

TEST(RngStream, ForTrialSeedSeparatesStreams) {
  Rng a = Rng::ForTrial(1, 0, 0);
  Rng b = Rng::ForTrial(2, 0, 0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, ForTrialStreamsPairwiseNonOverlapping) {
  // 16 streams × 65536 draws ≈ 1M total: no value appears in two
  // different streams (a collision among ~1M 64-bit draws has
  // probability ~3e-8; a xoshiro sequence overlap would collide
  // massively).
  constexpr std::size_t kStreams = 16;
  constexpr std::size_t kDraws = 65536;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(kStreams * kDraws);
  for (std::size_t s = 0; s < kStreams; ++s) {
    Rng rng = Rng::ForTrial(2026, s / 4, s % 4);
    std::unordered_set<std::uint64_t> mine;
    mine.reserve(kDraws);
    for (std::size_t i = 0; i < kDraws; ++i) {
      const std::uint64_t v = rng.NextU64();
      // Cross-stream overlap check (values already seen by earlier
      // streams); within-stream repeats are allowed by the birthday
      // bound but would also be caught here.
      EXPECT_TRUE(mine.insert(v).second) << "within-stream repeat";
      EXPECT_EQ(seen.count(v), 0u) << "cross-stream overlap at stream " << s;
    }
    seen.insert(mine.begin(), mine.end());
  }
  EXPECT_EQ(seen.size(), kStreams * kDraws);
}

TEST(RngStream, MixIsBijectiveOnSample) {
  // SplitMix64's finalizer is a bijection; spot-check no collisions
  // over a contiguous counter range (the way ForTrial consumes it).
  std::unordered_set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 100000; ++i) out.insert(Rng::Mix(i));
  EXPECT_EQ(out.size(), 100000u);
}

// ------------------------------------------------------ NextBelow

TEST(RngStream, NextBelowAlwaysInRange) {
  Rng rng(5);
  const std::uint64_t bounds[] = {1, 2, 3, 7, 10, 1000, 1ull << 32,
                                  (1ull << 63) + 12345};
  for (std::uint64_t n : bounds) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.NextBelow(n), n);
  }
}

TEST(RngStream, NextBelowOneIsAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

#if !defined(FREERIDER_RNG_LEGACY_MODULO)
TEST(RngStream, NextBelowIsUnbiasedForSmallN) {
  // χ²-style uniformity check over n=13 (a bound where the legacy
  // modulo path is measurably biased in the limit). With 130k draws
  // each bin expects 10000; bound the per-bin deviation at 5σ
  // (σ = sqrt(np(1-p)) ≈ 96).
  Rng rng(7);
  constexpr std::uint64_t n = 13;
  constexpr int draws = 130000;
  int counts[n] = {};
  for (int i = 0; i < draws; ++i) ++counts[rng.NextBelow(n)];
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], draws / static_cast<int>(n), 480)
        << "bin " << k;
  }
}

TEST(RngStream, NextBelowRejectionMatchesScaledMultiply) {
  // For n a power of two the threshold is 0, so Lemire reduces to a
  // pure multiply-shift of one draw: result == high 3 bits scaled.
  Rng a(8), b(8);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t expect =
        static_cast<std::uint64_t>((static_cast<unsigned __int128>(b.NextU64()) * 8) >> 64);
    EXPECT_EQ(a.NextBelow(8), expect);
  }
}
#endif  // !FREERIDER_RNG_LEGACY_MODULO

}  // namespace
}  // namespace freerider
