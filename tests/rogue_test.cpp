// Rogue-tag behavior models (impair/rogue): deterministic Byzantine
// adversaries. The properties that matter downstream: actions are pure
// functions of (seed, tag, round, slot) so campaigns stay reproducible
// at any thread count; the engine snapshots to its round cursor alone;
// honest tags draw nothing; and the forged-extension corpus really is
// hostile (structurally plausible, mostly rejected by the codec).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "health/wire.h"
#include "impair/rogue.h"

namespace {

using namespace freerider;
using impair::RogueConfig;
using impair::RogueEngine;
using impair::RogueModel;
using impair::RogueSlotAction;
using impair::RogueSpec;

RogueConfig CastOf(std::size_t num_tags,
                   std::vector<std::pair<std::size_t, RogueModel>> cast) {
  RogueConfig config;
  config.tags.resize(num_tags);
  for (const auto& [tag, model] : cast) config.tags[tag].model = model;
  return config;
}

TEST(RogueEngineTest, HonestConfigIsDisabled) {
  RogueConfig config;
  config.tags.resize(4);
  EXPECT_FALSE(config.AnyEnabled());
  RogueEngine engine(config, 4);
  EXPECT_FALSE(engine.enabled());
  engine.BeginRound(0);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_FALSE(engine.is_rogue(t));
    EXPECT_TRUE(engine.Joined(t));
    EXPECT_EQ(engine.WireId(t), static_cast<std::uint8_t>(t + 1));
    const RogueSlotAction a = engine.SlotAction(t, 0);
    EXPECT_FALSE(a.extra_fire);
  }
}

TEST(RogueEngineTest, ActionsArePureInRoundAndSlot) {
  const RogueConfig config = CastOf(
      6, {{1, RogueModel::kBabbler}, {3, RogueModel::kSlotThief},
          {4, RogueModel::kReplayer}, {5, RogueModel::kForger}});
  RogueEngine a(config, 6);
  RogueEngine b(config, 6);
  // b visits the rounds in a different call pattern (re-issuing
  // BeginRound and querying slots in reverse): same decisions.
  for (std::size_t round = 0; round < 32; ++round) {
    a.BeginRound(round);
    b.BeginRound(round);
    for (std::size_t t = 0; t < 6; ++t) {
      EXPECT_EQ(a.ForgesThisRound(t), b.ForgesThisRound(t));
      EXPECT_EQ(a.ReplaySeq(t), b.ReplaySeq(t));
      for (std::size_t slot = 12; slot-- > 0;) {
        const RogueSlotAction x = a.SlotAction(t, slot);
        const RogueSlotAction y = b.SlotAction(t, slot);
        EXPECT_EQ(x.extra_fire, y.extra_fire);
        EXPECT_EQ(x.wire_id, y.wire_id);
        EXPECT_EQ(x.seq, y.seq);
        // Re-query is idempotent: no hidden per-draw state.
        const RogueSlotAction z = a.SlotAction(t, slot);
        EXPECT_EQ(x.extra_fire, z.extra_fire);
        EXPECT_EQ(x.seq, z.seq);
      }
    }
  }
}

TEST(RogueEngineTest, SnapshotResumeIsByteIdentical) {
  const RogueConfig config = CastOf(
      5, {{0, RogueModel::kBabbler}, {2, RogueModel::kForger},
          {4, RogueModel::kFlapper}});
  RogueEngine live(config, 5);
  for (std::size_t round = 0; round < 17; ++round) live.BeginRound(round);
  const std::string snapshot = live.Serialize();

  RogueEngine restored(config, 5);
  ASSERT_TRUE(restored.Deserialize(snapshot));
  for (std::size_t round = 17; round < 40; ++round) {
    live.BeginRound(round);
    restored.BeginRound(round);
    for (std::size_t t = 0; t < 5; ++t) {
      EXPECT_EQ(live.Joined(t), restored.Joined(t));
      EXPECT_EQ(live.ForgesThisRound(t), restored.ForgesThisRound(t));
      for (std::size_t slot = 0; slot < 10; ++slot) {
        const RogueSlotAction x = live.SlotAction(t, slot);
        const RogueSlotAction y = restored.SlotAction(t, slot);
        EXPECT_EQ(x.extra_fire, y.extra_fire);
        EXPECT_EQ(x.seq, y.seq);
      }
    }
    if (live.ForgesThisRound(2)) {
      EXPECT_EQ(live.ForgedExtension(2), restored.ForgedExtension(2));
    }
  }
  EXPECT_FALSE(restored.Deserialize("garbage"));
}

TEST(RogueEngineTest, BabblerFiresEverySlotThiefMostButNotAll) {
  const RogueConfig config =
      CastOf(4, {{0, RogueModel::kBabbler}, {1, RogueModel::kSlotThief}});
  RogueEngine engine(config, 4);
  std::size_t thief_fires = 0;
  const std::size_t slots_per_round = 8, rounds = 50;
  for (std::size_t round = 0; round < rounds; ++round) {
    engine.BeginRound(round);
    for (std::size_t slot = 0; slot < slots_per_round; ++slot) {
      EXPECT_TRUE(engine.SlotAction(0, slot).extra_fire);
      thief_fires += engine.SlotAction(1, slot).extra_fire ? 1 : 0;
      EXPECT_FALSE(engine.SlotAction(2, slot).extra_fire);
    }
  }
  const double fraction =
      static_cast<double>(thief_fires) / (slots_per_round * rounds);
  // theft_fraction defaults to 0.9.
  EXPECT_GT(fraction, 0.8);
  EXPECT_LT(fraction, 1.0);
}

TEST(RogueEngineTest, ReplayerLoopsOverFixedCapturedWindow) {
  RogueConfig config = CastOf(2, {{1, RogueModel::kReplayer}});
  config.tags[1].replay_offset = 200;
  config.tags[1].replay_window = 16;
  RogueEngine engine(config, 2);
  std::set<std::uint8_t> seqs;
  for (std::size_t round = 0; round < 256; ++round) {
    engine.BeginRound(round);
    seqs.insert(engine.ReplaySeq(1));
  }
  // Record-and-replay: the sequence set is the finite capture, looped.
  // A fixed set can never track the receiver's expected pointer, which
  // is what keeps the attack permanently classifiable (beyond-window /
  // stale / alias) instead of blending in as a lagging honest stream.
  EXPECT_EQ(seqs.size(), 16u);
  const std::uint8_t base = static_cast<std::uint8_t>(0 - 200);  // 56
  for (const std::uint8_t s : seqs) {
    EXPECT_GE(s, base);
    EXPECT_LT(s, base + 16);
  }
  engine.BeginRound(35);
  EXPECT_EQ(engine.ReplaySeq(1), static_cast<std::uint8_t>(base + 35 % 16));
  engine.BeginRound(35 + 16);
  EXPECT_EQ(engine.ReplaySeq(1), static_cast<std::uint8_t>(base + 35 % 16));
}

TEST(RogueEngineTest, CloneWearsVictimIdentityAtHalfSpaceOffset) {
  RogueConfig config = CastOf(4, {{3, RogueModel::kClone}});
  config.tags[3].clone_of = 1;
  RogueEngine engine(config, 4);
  engine.BeginRound(7);
  EXPECT_EQ(engine.WireId(3), 2);  // victim's 1-based id
  EXPECT_EQ(engine.WireId(1), 2);
  // The clone's counter sits half the serial space away from live, so
  // interleaving with the honest stream ping-pongs across the space —
  // exactly what the police's jump detector keys on.
  const std::uint8_t clone_seq = engine.CloneSeq(3);
  const std::uint8_t live_seq = static_cast<std::uint8_t>(7);
  EXPECT_EQ(static_cast<std::uint8_t>(clone_seq - live_seq), 128);
}

TEST(RogueEngineTest, FlapperDutyCyclesAndNeverMisbehaves) {
  RogueConfig config = CastOf(2, {{0, RogueModel::kFlapper}});
  config.tags[0].flap_on_rounds = 4;
  config.tags[0].flap_off_rounds = 6;
  RogueEngine engine(config, 2);
  std::size_t joined_rounds = 0;
  for (std::size_t round = 0; round < 100; ++round) {
    engine.BeginRound(round);
    if (engine.Joined(0)) ++joined_rounds;
    EXPECT_TRUE(engine.Joined(1));
    EXPECT_FALSE(engine.SlotAction(0, 0).extra_fire);
  }
  EXPECT_EQ(joined_rounds, 40u);  // 4 of every 10 rounds
}

TEST(RogueEngineTest, ForgedExtensionCorpusIsHostileButPlausible) {
  const RogueConfig config = CastOf(2, {{1, RogueModel::kForger}});
  RogueEngine engine(config, 2);
  std::size_t forged = 0, parsed_valid = 0, rejected = 0;
  for (std::size_t round = 0; round < 400; ++round) {
    engine.BeginRound(round);
    if (!engine.ForgesThisRound(1)) continue;
    ++forged;
    const BitVector wire = engine.ForgedExtension(1);
    ASSERT_GE(wire.size(), 16u);  // always a parseable 16-bit prefix
    const auto result = health::ParseAnnouncementHealth(wire);
    ASSERT_TRUE(result.has_value());  // prefix survives; no crash
    if (result->ext_rejected) {
      ++rejected;
    } else if (result->acks.has_value() || result->health.has_value()) {
      ++parsed_valid;
    }
  }
  // forge_probability defaults to 0.5 over 400 rounds.
  EXPECT_GT(forged, 120u);
  // The codec must reject the bulk of the corpus (cut/flipped/garbage
  // bodies behind a guessed CRC-8)...
  EXPECT_GT(rejected, forged / 2);
  // ...but the corpus must not be a pushover either: the intact
  // adversarial fifth parses, which is what makes the "accepted"
  // counter in the campaign a meaningful residual-risk metric.
  EXPECT_GT(parsed_valid, 0u);
}

TEST(RogueEngineTest, DifferentSeedsDecorrelate) {
  RogueConfig a_cfg = CastOf(2, {{0, RogueModel::kSlotThief}});
  a_cfg.tags[0].theft_fraction = 0.5;
  RogueConfig b_cfg = a_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  RogueEngine a(a_cfg, 2);
  RogueEngine b(b_cfg, 2);
  std::size_t differing = 0;
  for (std::size_t round = 0; round < 64; ++round) {
    a.BeginRound(round);
    b.BeginRound(round);
    for (std::size_t slot = 0; slot < 8; ++slot) {
      differing +=
          a.SlotAction(0, slot).extra_fire != b.SlotAction(0, slot).extra_fire;
    }
  }
  EXPECT_GT(differing, 50u);
}

}  // namespace
