// Tests for the parallel simulation runtime: work-stealing executor,
// sweep engine (grid mapping, first-failure cancellation, telemetry)
// and the order-independent reductions.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "runtime/executor.h"
#include "runtime/reduce.h"
#include "runtime/sweep_engine.h"

namespace freerider::runtime {
namespace {

// ------------------------------------------------------- Executor

TEST(Executor, SerialRunsEveryIndexOnceInOrder) {
  Executor executor(1);
  std::vector<std::size_t> order;
  const RunTelemetry t =
      executor.ParallelFor(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(t.tasks_total, 100u);
  EXPECT_EQ(t.tasks_executed, 100u);
  EXPECT_EQ(t.tasks_skipped, 0u);
  EXPECT_EQ(t.threads, 1u);
  EXPECT_EQ(t.steals, 0u);
}

TEST(Executor, ParallelRunsEveryIndexExactlyOnce) {
  Executor executor(4);
  EXPECT_EQ(executor.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  const RunTelemetry t = executor.ParallelFor(1000, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(t.tasks_executed, 1000u);
  EXPECT_EQ(t.tasks_skipped, 0u);
  EXPECT_EQ(t.threads, 4u);
  ASSERT_EQ(t.per_worker_executed.size(), 4u);
  EXPECT_EQ(std::accumulate(t.per_worker_executed.begin(),
                            t.per_worker_executed.end(), std::size_t{0}),
            1000u);
}

TEST(Executor, ReusableAcrossBatches) {
  Executor executor(3);
  for (int batch = 0; batch < 10; ++batch) {
    std::atomic<std::size_t> count{0};
    const std::size_t n = 17 + static_cast<std::size_t>(batch) * 13;
    const RunTelemetry t = executor.ParallelFor(
        n, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), n);
    EXPECT_EQ(t.tasks_executed, n);
  }
}

TEST(Executor, EmptyBatchIsANoop) {
  Executor executor(2);
  const RunTelemetry t = executor.ParallelFor(0, [&](std::size_t) {
    FAIL() << "body must not run for n=0";
  });
  EXPECT_EQ(t.tasks_total, 0u);
  EXPECT_EQ(t.tasks_executed, 0u);
}

TEST(Executor, CancellationSkipsUnstartedTasks) {
  // Serial mode makes the skip count exact: cancel at index 10 → the
  // remaining 89 indices are drained without invoking the body.
  Executor executor(1);
  CancelToken cancel;
  std::size_t invoked = 0;
  const RunTelemetry t = executor.ParallelFor(
      100,
      [&](std::size_t i) {
        ++invoked;
        if (i == 10) cancel.Cancel();
      },
      &cancel);
  EXPECT_EQ(invoked, 11u);
  EXPECT_EQ(t.tasks_executed, 11u);
  EXPECT_EQ(t.tasks_skipped, 89u);
}

TEST(Executor, CancellationDrainsInParallelMode) {
  Executor executor(4);
  CancelToken cancel;
  cancel.Cancel();  // Cancelled before the batch even starts.
  std::atomic<std::size_t> invoked{0};
  const RunTelemetry t = executor.ParallelFor(
      500, [&](std::size_t) { invoked.fetch_add(1); }, &cancel);
  EXPECT_EQ(invoked.load(), 0u);
  EXPECT_EQ(t.tasks_skipped, 500u);
}

TEST(Executor, CurrentWorkerIdsAreInRange) {
  Executor executor(4);
  EXPECT_EQ(Executor::current_worker(), -1);
  std::vector<std::atomic<int>> seen_by(4);
  executor.ParallelFor(200, [&](std::size_t) {
    const int w = Executor::current_worker();
    ASSERT_GE(w, 0);
    ASSERT_LT(w, 4);
    seen_by[static_cast<std::size_t>(w)].fetch_add(1);
  });
  EXPECT_EQ(Executor::current_worker(), -1);
  // Every task ran on *some* worker. (Worker 0 — the caller — is not
  // guaranteed a share: on a loaded box thieves can drain its deque
  // before the calling thread is scheduled.)
  int total = 0;
  for (const auto& s : seen_by) total += s.load();
  EXPECT_EQ(total, 200);
}

// ---------------------------------------------------- SweepEngine

TEST(SweepEngine, GridMapsIndexToPointMajorOrder) {
  Executor executor(1);
  SweepEngine engine(executor);
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  const SweepReport report =
      engine.Run({3, 4}, [&](std::size_t p, std::size_t t) {
        cells.emplace_back(p, t);
        return true;
      });
  ASSERT_EQ(cells.size(), 12u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].first, i / 4);
    EXPECT_EQ(cells[i].second, i % 4);
  }
  EXPECT_FALSE(report.cancelled);
  ASSERT_EQ(report.tasks.size(), 12u);
  for (std::size_t i = 0; i < report.tasks.size(); ++i) {
    EXPECT_EQ(report.tasks[i].point, i / 4);
    EXPECT_EQ(report.tasks[i].trial, i % 4);
    EXPECT_TRUE(report.tasks[i].executed);
  }
}

TEST(SweepEngine, FirstFailureCancelsAndRecordsLowestIndex) {
  Executor executor(1);
  SweepEngine engine(executor);
  const SweepReport report =
      engine.Run({10, 2}, [&](std::size_t p, std::size_t t) {
        return !(p == 3 && t == 1);  // Grid index 7 fails.
      });
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.first_failure_task, 7u);
  EXPECT_EQ(report.run.tasks_executed, 8u);
  EXPECT_EQ(report.run.tasks_skipped, 12u);
  // Drained slots are marked not-executed with no worker.
  EXPECT_FALSE(report.tasks[12].executed);
  EXPECT_EQ(report.tasks[12].worker, -1);
}

TEST(SweepEngine, ResultsIdenticalAcrossThreadCounts) {
  // The determinism contract end-to-end on a toy workload: per-task
  // streams via ForTrial, slots reduced in index order afterwards.
  auto run = [](std::size_t threads) {
    Executor executor(threads);
    SweepEngine engine(executor);
    std::vector<double> slots(6 * 5);
    engine.Run({6, 5}, [&](std::size_t p, std::size_t t) {
      Rng rng = Rng::ForTrial(11, p, t);
      double acc = 0.0;
      for (int i = 0; i < 500; ++i) acc += rng.NextGaussian();
      slots[p * 5 + t] = acc;
      return true;
    });
    return slots;
  };
  const std::vector<double> serial = run(1);
  const std::vector<double> parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "slot " << i;  // Bit-exact.
  }
}

TEST(SweepEngine, TelemetryTableHasOneRowPerTask) {
  Executor executor(2);
  SweepEngine engine(executor);
  const SweepReport report = engine.Run(
      {4, 3}, [&](std::size_t, std::size_t) { return true; });
  const std::string json = report.TelemetryTable().ToJson("toy");
  EXPECT_NE(json.find("\"toy\""), std::string::npos);
  const std::string summary = report.SummaryJson("toy");
  EXPECT_NE(summary.find("\"tasks_total\": 12"), std::string::npos);
  EXPECT_NE(summary.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(summary.find("\"cancelled\": false"), std::string::npos);
}

// ------------------------------------------------------ Reduction

TEST(Reduce, KahanSumRecoversLostLowBits) {
  // 1 + 1e-16 * 10 in naive double order loses the small terms;
  // Kahan keeps them.
  std::vector<double> values = {1.0};
  for (int i = 0; i < 10; ++i) values.push_back(1e-16);
  const double kahan = KahanSum(values);
  EXPECT_EQ(kahan, 1.0 + 1e-15);
}

TEST(Reduce, PairwiseSumMatchesExactForIntegers) {
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  EXPECT_EQ(PairwiseSum(values), 999.0 * 1000.0 / 2.0);
}

TEST(Reduce, PairwiseReduceIsDeterministicForFixedInput) {
  Rng rng(3);
  std::vector<double> values(777);
  for (auto& v : values) v = rng.NextGaussian() * 1e6;
  const double a = PairwiseSum(values);
  const double b = PairwiseSum(values);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(a, std::accumulate(values.begin(), values.end(), 0.0),
              std::abs(a) * 1e-12 + 1e-6);
}

TEST(Reduce, PairwiseReduceHandlesEdgeSizes) {
  EXPECT_EQ(PairwiseSum(std::vector<double>{}), 0.0);
  EXPECT_EQ(PairwiseSum(std::vector<double>{42.0}), 42.0);
  EXPECT_EQ(PairwiseSum(std::vector<double>{1.0, 2.0, 3.0}), 6.0);
}

TEST(Reduce, RunningStatsMergeMatchesSequential) {
  // Chan's parallel merge must reproduce the sequential Welford values
  // to floating-point accuracy, and merging in tree order must be
  // deterministic.
  Rng rng(9);
  std::vector<double> samples(4000);
  for (auto& s : samples) s = rng.NextGaussian() * 3.0 + 7.0;

  RunningStats sequential;
  for (double s : samples) sequential.Add(s);

  std::vector<RunningStats> chunks(8);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    chunks[i / 500].Add(samples[i]);
  }
  const RunningStats merged =
      PairwiseReduce(chunks, [](RunningStats a, const RunningStats& b) {
        a.Merge(b);
        return a;
      });
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), sequential.stddev(), 1e-9);
  EXPECT_EQ(merged.min(), sequential.min());
  EXPECT_EQ(merged.max(), sequential.max());
}

TEST(Reduce, RunningStatsMergeEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a_copy.Merge(b);  // Merging empty is identity.
  EXPECT_EQ(a_copy.count(), 2u);
  EXPECT_EQ(a_copy.mean(), 2.0);
  b.Merge(a);  // Merging into empty copies.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

}  // namespace
}  // namespace freerider::runtime
