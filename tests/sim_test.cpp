#include <gtest/gtest.h>

#include "sim/link.h"
#include "sim/sweep.h"

namespace freerider::sim {
namespace {

LinkConfig MakeConfig(core::RadioType radio, double distance,
                      std::size_t packets = 10) {
  LinkConfig config;
  config.radio = radio;
  config.deployment = channel::LosDeployment();
  config.tag_to_rx_m = distance;
  config.num_packets = packets;
  config.profile = DefaultProfile(radio);
  return config;
}

TEST(Link, BudgetMonotoneInDistance) {
  double prev = 0.0;
  for (double d : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const double p = BackscatterRxPowerDbm(MakeConfig(core::RadioType::kWifi, d));
    if (prev != 0.0) {
      EXPECT_LT(p, prev);
    }
    prev = p;
  }
}

TEST(Link, SnrConsistentWithBudget) {
  const LinkConfig config = MakeConfig(core::RadioType::kWifi, 10.0);
  EXPECT_NEAR(BackscatterSnrDb(config),
              BackscatterRxPowerDbm(config) - (-174.0 + 73.0 + 5.0), 0.2);
}

class ShortRangeLink : public ::testing::TestWithParam<core::RadioType> {};

TEST_P(ShortRangeLink, FullThroughputCloseIn) {
  Rng rng(1);
  const LinkConfig config = MakeConfig(GetParam(), 2.0, 8);
  const LinkStats stats = SimulateTagLink(config, rng);
  EXPECT_EQ(stats.packets_decoded, stats.packets_attempted);
  EXPECT_LT(stats.tag_ber, 1e-3);
  EXPECT_GT(stats.tag_throughput_bps, 1e3);
}

INSTANTIATE_TEST_SUITE_P(Radios, ShortRangeLink,
                         ::testing::Values(core::RadioType::kWifi,
                                           core::RadioType::kZigbee,
                                           core::RadioType::kBluetooth));

TEST(Link, DeadAtExtremeRange) {
  Rng rng(2);
  const LinkConfig config = MakeConfig(core::RadioType::kBluetooth, 60.0, 6);
  const LinkStats stats = SimulateTagLink(config, rng);
  EXPECT_EQ(stats.packets_decoded, 0u);
  EXPECT_DOUBLE_EQ(stats.tag_throughput_bps, 0.0);
}

TEST(Link, HeadlineRatesAtCloseRange) {
  Rng rng(3);
  // Paper headlines: ~60 kb/s WiFi, ~15 kb/s ZigBee, ~50 kb/s Bluetooth.
  const LinkStats wifi =
      SimulateTagLink(MakeConfig(core::RadioType::kWifi, 2.0, 6), rng);
  EXPECT_NEAR(wifi.tag_throughput_bps / 1e3, 58.0, 6.0);
  const LinkStats zigbee =
      SimulateTagLink(MakeConfig(core::RadioType::kZigbee, 2.0, 6), rng);
  EXPECT_NEAR(zigbee.tag_throughput_bps / 1e3, 14.3, 2.0);
  const LinkStats bt =
      SimulateTagLink(MakeConfig(core::RadioType::kBluetooth, 2.0, 6), rng);
  EXPECT_NEAR(bt.tag_throughput_bps / 1e3, 52.0, 6.0);
}

TEST(Link, NlosWeakerThanLos) {
  LinkConfig los = MakeConfig(core::RadioType::kWifi, 15.0);
  LinkConfig nlos = los;
  nlos.deployment = channel::NlosDeployment();
  EXPECT_LT(BackscatterRxPowerDbm(nlos), BackscatterRxPowerDbm(los));
}

TEST(Link, AdaptiveRaisesRedundancyAtRange) {
  Rng rng(4);
  const LinkConfig near = MakeConfig(core::RadioType::kWifi, 3.0, 6);
  const LinkStats near_stats = SimulateTagLinkAdaptive(near, rng, 4);
  EXPECT_EQ(near_stats.redundancy_used, 4u);
}

TEST(Sweep, ThroughputDecaysWithDistance) {
  const std::vector<double> distances = {2.0, 20.0, 44.0};
  const auto points = DistanceSweep(core::RadioType::kWifi,
                                    channel::LosDeployment(), distances, 8, 42);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].stats.tag_throughput_bps,
            points[2].stats.tag_throughput_bps);
  EXPECT_GT(points[0].stats.tag_throughput_bps, 40e3);
}

TEST(Sweep, RangeSweepOrdersRadiosLikePaper) {
  // Fig. 14: WiFi reaches farthest, then ZigBee, then Bluetooth.
  const std::vector<double> d1 = {1.0};
  const auto wifi =
      RangeSweep(core::RadioType::kWifi, d1, 60.0, 6, 7);
  const auto zigbee =
      RangeSweep(core::RadioType::kZigbee, d1, 60.0, 6, 7);
  const auto bt =
      RangeSweep(core::RadioType::kBluetooth, d1, 60.0, 6, 7);
  EXPECT_GT(wifi[0].max_tag_to_rx_m, zigbee[0].max_tag_to_rx_m);
  EXPECT_GT(zigbee[0].max_tag_to_rx_m, bt[0].max_tag_to_rx_m);
  // Paper maxima: ~42 m, ~22 m, ~12 m.
  EXPECT_NEAR(wifi[0].max_tag_to_rx_m, 42.0, 14.0);
  EXPECT_NEAR(zigbee[0].max_tag_to_rx_m, 22.0, 9.0);
  EXPECT_NEAR(bt[0].max_tag_to_rx_m, 12.0, 6.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(TablePrinter::Num(1.2345, 2), "1.23");
  EXPECT_EQ(TablePrinter::Sci(0.00123), "1.2e-03");
}

TEST(TablePrinterTest, ToJsonEscapesAdversarialCells) {
  // Cells carry free-form detail strings (violation messages, health
  // state names); control characters, quotes and backslashes must all
  // come out as legal JSON, never raw.
  TablePrinter table({"quote\"h", "back\\slash"});
  table.AddRow({"line\nbreak", "tab\there"});
  table.AddRow({std::string("nul\0byte", 8), "bell\x07rings\x1f"});
  const std::string json = table.ToJson("esc\"name");
  EXPECT_NE(json.find("\"esc\\\"name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"quote\\\"h\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"back\\\\slash\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\\nbreak\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tab\\there\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"nul\\u0000byte\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"bell\\u0007rings\\u001f\""), std::string::npos)
      << json;
  // No raw control byte survives inside a string (the only control
  // character in the document is ToJson's own structural '\n').
  for (char ch : json) {
    if (ch == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
  }
}

}  // namespace
}  // namespace freerider::sim
