// Chaos-soak harness: invariants, deterministic digests, and the JSON
// replay pipeline (sim/soak.h).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>

#include "sim/multitag.h"
#include "sim/soak.h"

using namespace freerider;

namespace {

/// Small but non-trivial soak: two impairment regimes, loss inside the
/// transport's envelope, give-up caps out of reach.
sim::SoakConfig SurvivableConfig(std::uint64_t seed) {
  sim::SoakConfig config;
  config.seed = seed;
  config.num_tags = 3;
  config.rounds = 40;
  config.drain_rounds = 40;
  config.offer_every = 4;
  config.transport.max_transmissions = 1000;
  config.transport.expiry_rounds = 1 << 20;
  config.transport.hole_skip_rounds = 1 << 20;
  sim::SoakSegment clean;
  clean.start_round = 0;
  sim::SoakSegment lossy;
  lossy.start_round = 20;
  lossy.impairments.dropout.enabled = true;
  lossy.impairments.dropout.dropout_probability = 0.2;
  lossy.impairments.dropout.min_keep_fraction = 0.2;
  lossy.impairments.dropout.max_keep_fraction = 0.8;
  sim::SoakSegment bursty;
  bursty.start_round = 45;
  bursty.impairments.interferer.enabled = true;
  bursty.impairments.interferer.burst_probability = 0.15;
  bursty.impairments.interferer.burst_power_dbm = -74.0;
  config.schedule = {clean, lossy, bursty};
  return config;
}

/// Engineered to violate: one transmission, no second chances, heavy
/// dropout — frames must expire (a strict-mode violation).
sim::SoakConfig BrokenConfig() {
  sim::SoakConfig config;
  config.seed = 77;
  config.num_tags = 3;
  config.rounds = 40;
  config.drain_rounds = 30;
  config.offer_every = 2;
  config.transport.max_transmissions = 1;
  config.transport.rto_rounds = 1;
  sim::SoakSegment harsh;
  harsh.start_round = 0;
  harsh.impairments.dropout.enabled = true;
  harsh.impairments.dropout.dropout_probability = 0.5;
  harsh.impairments.dropout.min_keep_fraction = 0.1;
  harsh.impairments.dropout.max_keep_fraction = 0.5;
  config.schedule = {harsh};
  return config;
}

}  // namespace

TEST(SoakTest, SurvivableScheduleMeetsEveryInvariant) {
  const sim::SoakResult result = sim::RunSoak(SurvivableConfig(11));
  EXPECT_TRUE(result.passed) << result.digest;
  EXPECT_EQ(result.violations.size(), 0u);
  EXPECT_GT(result.stats.transport_offered, 0u);
  EXPECT_EQ(result.stats.transport_offered, result.stats.transport_delivered);
  EXPECT_EQ(result.stats.transport_expired, 0u);
  EXPECT_EQ(result.stats.transport_holes_skipped, 0u);
  EXPECT_GT(result.stats.faults_injected, 0u);  // the chaos was real
}

TEST(SoakTest, DigestIsDeterministic) {
  const sim::SoakConfig config = SurvivableConfig(23);
  const sim::SoakResult a = sim::RunSoak(config);
  const sim::SoakResult b = sim::RunSoak(config);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_FALSE(a.digest.empty());
}

TEST(SoakTest, ReplayRecordRoundTripsAndReproduces) {
  const sim::SoakConfig config = SurvivableConfig(31);
  const sim::SoakResult original = sim::RunSoak(config);
  const std::string json = sim::SoakReplayJson(config, original);

  const auto replay = sim::ParseSoakReplay(json);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->expect_digest, original.digest);
  EXPECT_EQ(replay->config.seed, config.seed);
  EXPECT_EQ(replay->config.num_tags, config.num_tags);
  EXPECT_EQ(replay->config.rounds, config.rounds);
  ASSERT_EQ(replay->config.schedule.size(), config.schedule.size());
  EXPECT_EQ(replay->config.schedule[1].impairments.dropout.dropout_probability,
            config.schedule[1].impairments.dropout.dropout_probability);

  const sim::SoakResult again = sim::RunSoak(replay->config);
  EXPECT_EQ(again.digest, original.digest);
}

TEST(SoakTest, DeliberateViolationReproducesBitForBit) {
  const sim::SoakConfig config = BrokenConfig();
  const sim::SoakResult original = sim::RunSoak(config);
  ASSERT_FALSE(original.passed);
  ASSERT_GT(original.violations.size(), 0u);
  EXPECT_EQ(original.violations[0].kind, "expired");

  const std::string record = sim::SoakReplayJson(config, original);
  const auto replay = sim::ParseSoakReplay(record);
  ASSERT_TRUE(replay.has_value());
  const sim::SoakResult again = sim::RunSoak(replay->config);
  EXPECT_FALSE(again.passed);
  EXPECT_EQ(again.digest, original.digest);
  EXPECT_EQ(again.violations.size(), original.violations.size());
}

TEST(SoakTest, NonStrictModeToleratesGiveUps) {
  sim::SoakConfig config = BrokenConfig();
  config.strict = false;
  const sim::SoakResult result = sim::RunSoak(config);
  // Give-ups (expiry, skips) are allowed; duplicates/reorder are not.
  for (const sim::SoakViolation& v : result.violations) {
    EXPECT_NE(v.kind, "duplicate") << v.detail;
    EXPECT_NE(v.kind, "reorder") << v.detail;
  }
  EXPECT_GT(result.stats.transport_expired, 0u);
}

TEST(SoakReplayParserTest, RejectsMalformedRecords) {
  const sim::SoakConfig config = SurvivableConfig(1);
  sim::SoakResult result;
  result.digest = "digest with \"quotes\"\nand newlines";
  const std::string valid = sim::SoakReplayJson(config, result);
  ASSERT_TRUE(sim::ParseSoakReplay(valid).has_value());

  EXPECT_FALSE(sim::ParseSoakReplay("").has_value());
  EXPECT_FALSE(sim::ParseSoakReplay("not json at all").has_value());
  EXPECT_FALSE(sim::ParseSoakReplay("{}").has_value());
  EXPECT_FALSE(sim::ParseSoakReplay("[1,2,3]").has_value());
  // Every strict prefix must be rejected, never crash or accept.
  for (std::size_t n = 0; n < valid.size(); n += 7) {
    EXPECT_FALSE(sim::ParseSoakReplay(valid.substr(0, n)).has_value())
        << "prefix " << n;
  }
  // Wrong version.
  std::string wrong = valid;
  wrong.replace(wrong.find("\"version\": 1"), 12, "\"version\": 9");
  EXPECT_FALSE(sim::ParseSoakReplay(wrong).has_value());
  // Hostile bounds: a record demanding a billion rounds is refused.
  std::string huge = valid;
  huge.replace(huge.find("\"rounds\": 40"), 12, "\"rounds\": 99999999999");
  EXPECT_FALSE(sim::ParseSoakReplay(huge).has_value());
}

TEST(SoakReplayParserTest, RejectsDuplicateKeysWithClearError) {
  const sim::SoakConfig config = SurvivableConfig(3);
  const std::string valid = sim::SoakReplayJson(config, {});
  // Duplicate a top-level field: a lenient parser would let the second
  // value shadow the first; ours must refuse and say why.
  std::string dup = valid;
  dup.replace(dup.find("\"num_tags\": 3"), 13,
              "\"num_tags\": 3, \"num_tags\": 5");
  std::string error;
  EXPECT_FALSE(sim::ParseSoakReplay(dup, &error).has_value());
  EXPECT_NE(error.find("duplicate key"), std::string::npos) << error;
  EXPECT_NE(error.find("num_tags"), std::string::npos) << error;
}

TEST(SoakReplayParserTest, RejectsOutOfRangeFieldsNamingTheOffender) {
  const sim::SoakConfig config = SurvivableConfig(3);
  const std::string valid = sim::SoakReplayJson(config, {});
  ASSERT_TRUE(sim::ParseSoakReplay(valid).has_value());

  struct Case {
    const char* find;
    const char* replace;
    const char* expect_in_error;
  };
  const Case cases[] = {
      {"\"num_tags\": 3", "\"num_tags\": 0", "num_tags"},
      {"\"num_tags\": 3", "\"num_tags\": 100", "num_tags"},
      {"\"offer_every\": 4", "\"offer_every\": 99999999", "offer_every"},
      {"\"window\":16", "\"window\":0", "transport.window"},
      {"\"window\":16", "\"window\":1000", "transport.window"},
      {"\"max_transmissions\":1000", "\"max_transmissions\":0",
       "transport.max_transmissions"},
      {"\"rto_rounds\":3", "\"rto_rounds\":9999999999",
       "transport.rto_rounds"},
  };
  for (const Case& c : cases) {
    std::string bad = valid;
    const std::size_t at = bad.find(c.find);
    ASSERT_NE(at, std::string::npos) << c.find;
    bad.replace(at, std::strlen(c.find), c.replace);
    std::string error;
    EXPECT_FALSE(sim::ParseSoakReplay(bad, &error).has_value()) << c.replace;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
        << c.replace << " -> " << error;
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  }
}

TEST(SoakReplayParserTest, RejectsUnsortedScheduleAndNonFiniteDoubles) {
  sim::SoakConfig config = SurvivableConfig(3);
  // Swap two segments out of order; the writer emits them as-is.
  std::swap(config.schedule[1], config.schedule[2]);
  std::string error;
  EXPECT_FALSE(
      sim::ParseSoakReplay(sim::SoakReplayJson(config, {}), &error)
          .has_value());
  EXPECT_NE(error.find("not ascending"), std::string::npos) << error;

  // An overflowing double literal (parses to inf) is refused.
  std::string inf = sim::SoakReplayJson(SurvivableConfig(3), {});
  const std::string key = "\"burst_probability\":";
  const std::size_t at = inf.find(key);
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = inf.find(',', at);
  ASSERT_NE(end, std::string::npos);
  inf.replace(at, end - at, key + "1e999");
  EXPECT_FALSE(sim::ParseSoakReplay(inf, &error).has_value());
}

TEST(SoakResultCodec, RoundTripsBitExactly) {
  const sim::SoakConfig config = SurvivableConfig(4);
  const sim::SoakResult original = sim::RunSoak(config);
  const std::string payload = sim::SerializeSoakResult(original);
  sim::SoakResult restored;
  ASSERT_TRUE(sim::DeserializeSoakResult(payload, &restored));
  EXPECT_EQ(restored.passed, original.passed);
  EXPECT_EQ(restored.digest, original.digest);
  EXPECT_EQ(restored.violations.size(), original.violations.size());
  EXPECT_EQ(restored.stats.transport_delivered,
            original.stats.transport_delivered);
  EXPECT_EQ(restored.stats.per_tag_deliveries,
            original.stats.per_tag_deliveries);
  EXPECT_EQ(restored.stats.fault_counters.total(),
            original.stats.fault_counters.total());
  // The serialized form itself is deterministic (checkpoint currency).
  EXPECT_EQ(sim::SerializeSoakResult(restored), payload);

  // Violations round-trip with their strings intact.
  sim::SoakResult with_violations = original;
  with_violations.violations.push_back({17, "duplicate", "tag=1 seq=9"});
  with_violations.passed = false;
  sim::SoakResult again;
  ASSERT_TRUE(sim::DeserializeSoakResult(
      sim::SerializeSoakResult(with_violations), &again));
  ASSERT_EQ(again.violations.size(), with_violations.violations.size());
  EXPECT_EQ(again.violations.back().kind, "duplicate");
  EXPECT_EQ(again.violations.back().detail, "tag=1 seq=9");

  // Truncations and garbage never crash the decoder.
  for (std::size_t n = 0; n < payload.size(); n += 11) {
    sim::SoakResult scratch;
    EXPECT_FALSE(
        sim::DeserializeSoakResult(payload.substr(0, n), &scratch));
  }
}

TEST(SoakReplayParserTest, DigestStringEscapingRoundTrips) {
  const sim::SoakConfig config = SurvivableConfig(2);
  sim::SoakResult result;
  result.digest = "line1\nline2 \"quoted\" back\\slash\ttab";
  const auto replay = sim::ParseSoakReplay(sim::SoakReplayJson(config, result));
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->expect_digest, result.digest);
}

// The stepping simulator must be the same machine as the one-shot
// campaign — same master-stream discipline, same stats — so harness
// results transfer to every existing RunFullStackCampaign caller.
TEST(SteppedSimTest, MatchesCampaignWithTransportDisabled) {
  sim::FullStackConfig config;
  config.num_tags = 3;
  config.rounds = 4;
  config.impairments.dropout.enabled = true;
  config.impairments.dropout.dropout_probability = 0.3;
  Rng campaign_rng(91);
  const sim::FullStackStats campaign =
      sim::RunFullStackCampaign(config, campaign_rng);

  Rng stepped_rng(91);
  sim::FullStackSim stepped(config, stepped_rng);
  for (std::size_t round = 0; round < config.rounds; ++round) {
    stepped.StepRound();
  }
  const sim::FullStackStats stats = stepped.Stats();

  EXPECT_EQ(stats.deliveries, campaign.deliveries);
  EXPECT_EQ(stats.slots_total, campaign.slots_total);
  EXPECT_EQ(stats.observed_collisions, campaign.observed_collisions);
  EXPECT_EQ(stats.observed_empties, campaign.observed_empties);
  EXPECT_EQ(stats.faults_injected, campaign.faults_injected);
  EXPECT_EQ(stats.airtime_s, campaign.airtime_s);      // bit-exact
  EXPECT_EQ(stats.goodput_bps, campaign.goodput_bps);  // bit-exact
  EXPECT_EQ(campaign_rng.NextU64(), stepped_rng.NextU64());
}

// With the transport off, reserving the impairment stream must be the
// only thing that changes the master stream — and only by one draw.
TEST(SteppedSimTest, TransportOffIsPureLegacyPath) {
  sim::FullStackConfig config;
  config.num_tags = 2;
  config.rounds = 3;
  Rng a(17);
  const sim::FullStackStats legacy = sim::RunFullStackCampaign(config, a);
  EXPECT_EQ(legacy.transport_offered, 0u);
  EXPECT_EQ(legacy.transport_delivered, 0u);
  EXPECT_EQ(legacy.transport_retransmissions, 0u);
  EXPECT_EQ(legacy.transport_ext_rejected, 0u);
}
