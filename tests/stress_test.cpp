// Time-varying channel dynamics (src/impair/dynamics) and the stress
// campaign harness (src/sim/stress): determinism, checkpoint-grade
// serialization, and the audited supervisor contract on a small
// campaign.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "impair/dynamics.h"
#include "sim/stress.h"

using namespace freerider;
using impair::BlackoutWindow;
using impair::ChannelDynamics;
using impair::DynamicsConfig;

namespace {

DynamicsConfig BusyDynamics() {
  DynamicsConfig config;
  config.seed = 0xD15EA5Eull;
  config.gilbert.enabled = true;
  config.gilbert.p_good_to_bad = 0.05;
  config.gilbert.p_bad_to_good = 0.15;
  config.gilbert.good_loss = 0.02;
  config.gilbert.bad_loss = 0.9;
  config.mobility.enabled = true;
  config.mobility.per_tag_phase_rounds = 7;
  config.mobility.loss_per_excess = 0.5;
  config.mobility.waypoints = {{0, 1.0}, {40, 1.5}, {80, 1.0}};
  BlackoutWindow w;
  w.begin_round = 20;
  w.end_round = 30;
  w.tags = {1};
  config.blackouts = {w};
  return config;
}

/// Canonical trace of a dynamics run — two runs agree iff equal.
std::string DynamicsTrace(ChannelDynamics& dyn, std::size_t from_round,
                          std::size_t rounds) {
  std::string trace;
  for (std::size_t r = from_round; r < from_round + rounds; ++r) {
    dyn.BeginRound(r);
    for (std::size_t t = 0; t < dyn.num_tags(); ++t) {
      const impair::LinkState& link = dyn.link(t);
      trace += link.blackout ? 'B' : (link.bad_state ? 'b' : 'g');
      for (std::size_t slot = 0; slot < 3; ++slot) {
        trace += dyn.FrameSurvives(t, slot, 1 + slot % 3) ? '1' : '0';
      }
    }
    trace += '\n';
  }
  return trace;
}

/// Small-but-complete stress campaign: fades + mobility + a blackout +
/// one dead tag, sized to run in a couple of seconds.
sim::StressConfig SmallStress(bool supervisor_on) {
  sim::StressConfig config;
  config.seed = 97;
  config.num_tags = 3;
  config.rounds = 150;
  config.drain_rounds = 80;
  config.offer_every = 4;
  config.supervisor_on = supervisor_on;
  config.transport.max_transmissions = 16;
  config.transport.expiry_rounds = 1000000;
  config.transport.queue_capacity = 24;
  config.transport.hole_skip_rounds = 96;
  config.dynamics.seed = 0xBADC0FFEEull;
  config.dynamics.gilbert.enabled = true;
  config.dynamics.gilbert.p_good_to_bad = 0.01;
  config.dynamics.gilbert.p_bad_to_good = 0.08;
  config.dynamics.gilbert.good_loss = 0.02;
  config.dynamics.gilbert.bad_loss = 0.9;
  BlackoutWindow w;
  w.begin_round = 40;
  w.end_round = 60;
  w.tags = {1};
  config.dynamics.blackouts = {w};
  config.dead_tag = 2;
  config.dead_round = 100;
  return config;
}

}  // namespace

// ----------------------------------------------------------- dynamics

TEST(ChannelDynamicsTest, IdenticalConfigsProduceIdenticalTraces) {
  ChannelDynamics a(BusyDynamics(), 4);
  ChannelDynamics b(BusyDynamics(), 4);
  EXPECT_EQ(DynamicsTrace(a, 0, 100), DynamicsTrace(b, 0, 100));
}

TEST(ChannelDynamicsTest, FrameSurvivalIsAPureFunctionOfItsInputs) {
  ChannelDynamics dyn(BusyDynamics(), 2);
  dyn.BeginRound(25);
  for (std::size_t slot = 0; slot < 8; ++slot) {
    const bool first = dyn.FrameSurvives(0, slot, 2);
    EXPECT_EQ(dyn.FrameSurvives(0, slot, 2), first) << "slot " << slot;
  }
}

TEST(ChannelDynamicsTest, DisabledConfigDrawsNothingAndNeverFades) {
  ChannelDynamics dyn(DynamicsConfig{}, 3);
  EXPECT_FALSE(dyn.enabled());
  for (std::size_t r = 0; r < 50; ++r) {
    dyn.BeginRound(r);
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_FALSE(dyn.link(t).blackout);
      EXPECT_EQ(dyn.link(t).loss_probability, 0.0);
      EXPECT_TRUE(dyn.FrameSurvives(t, 0, 1));
    }
  }
}

TEST(ChannelDynamicsTest, BlackoutWindowsCoverExactlyTheirRounds) {
  ChannelDynamics dyn(BusyDynamics(), 3);
  for (std::size_t r = 0; r < 40; ++r) {
    dyn.BeginRound(r);
    const bool expect_blackout = r >= 20 && r < 30;
    EXPECT_EQ(dyn.link(1).blackout, expect_blackout) << "round " << r;
    EXPECT_FALSE(dyn.link(0).blackout) << "round " << r;
    EXPECT_FALSE(dyn.link(2).blackout) << "round " << r;
  }
  EXPECT_EQ(dyn.BlackoutRounds(1, 40), 10u);
  EXPECT_EQ(dyn.BlackoutRounds(0, 40), 0u);
}

TEST(ChannelDynamicsTest, MobilityInterpolatesBetweenWaypoints) {
  DynamicsConfig config;
  config.mobility.enabled = true;
  config.mobility.waypoints = {{0, 1.0}, {10, 2.0}, {20, 1.0}};
  ChannelDynamics dyn(config, 1);
  dyn.BeginRound(0);
  EXPECT_DOUBLE_EQ(dyn.link(0).distance_factor, 1.0);
  dyn.BeginRound(5);
  EXPECT_DOUBLE_EQ(dyn.link(0).distance_factor, 1.5);
  dyn.BeginRound(10);
  EXPECT_DOUBLE_EQ(dyn.link(0).distance_factor, 2.0);
  dyn.BeginRound(15);
  EXPECT_DOUBLE_EQ(dyn.link(0).distance_factor, 1.5);
  dyn.BeginRound(30);  // flat past the last knot
  EXPECT_DOUBLE_EQ(dyn.link(0).distance_factor, 1.0);
}

TEST(ChannelDynamicsTest, SnapshotContinuesBitIdentically) {
  ChannelDynamics original(BusyDynamics(), 4);
  DynamicsTrace(original, 0, 60);
  const std::string snapshot = original.Serialize();
  // Captured once — BeginRound only ever steps forward, so the
  // original cannot be replayed.
  const std::string tail = DynamicsTrace(original, 60, 60);

  ChannelDynamics restored(BusyDynamics(), 4);
  ASSERT_TRUE(restored.Deserialize(snapshot));
  EXPECT_EQ(DynamicsTrace(restored, 60, 60), tail);

  // Corrupt payloads are rejected and leave the target usable.
  ChannelDynamics victim(BusyDynamics(), 4);
  for (std::size_t cut = 0; cut < snapshot.size(); cut += 3) {
    EXPECT_FALSE(victim.Deserialize(snapshot.substr(0, cut)));
  }
  EXPECT_FALSE(victim.Deserialize(snapshot + std::string(1, 'x')));
  ASSERT_TRUE(victim.Deserialize(snapshot));
  EXPECT_EQ(DynamicsTrace(victim, 60, 60), tail);
}

// ------------------------------------------------------ stress harness

TEST(StressCampaignTest, RerunIsDigestIdenticalAndPassesItsAudits) {
  const sim::StressConfig config = SmallStress(true);
  const sim::StressResult first = sim::RunStress(config);
  const sim::StressResult second = sim::RunStress(config);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_FALSE(first.digest.empty());

  // Audited contract on the supervisor-on run.
  EXPECT_TRUE(first.passed)
      << (first.violations.empty() ? "" : first.violations[0].kind);
  EXPECT_GT(first.offered, 0u);
  EXPECT_GT(first.delivered, 0u);
  ASSERT_TRUE(first.dead_tag_audited);
  EXPECT_TRUE(first.quarantine_bound_met)
      << "detection " << first.detection_rounds << " bound "
      << first.detection_bound;
  EXPECT_LE(first.detection_rounds, first.detection_bound);
  EXPECT_GT(first.quarantines, 0u);
}

TEST(StressCampaignTest, SupervisorOffStillHoldsTransportInvariants) {
  const sim::StressResult result = sim::RunStress(SmallStress(false));
  // No supervisor: no quarantines, no audit — but the transport's
  // no-duplicate / no-reorder contract must hold on its own.
  EXPECT_TRUE(result.passed)
      << (result.violations.empty() ? "" : result.violations[0].kind);
  EXPECT_FALSE(result.dead_tag_audited);
  EXPECT_EQ(result.quarantines, 0u);
  EXPECT_EQ(result.probes_sent, 0u);
}

TEST(StressResultSerializeTest, RoundTripsBitExactly) {
  sim::StressResult result;
  result.passed = false;
  result.delivery_ratio = 0.87654321;
  result.offered = 1234;
  result.delivered = 1100;
  result.expired = 12;
  result.rejected_full = 3;
  result.duplicates = 44;
  result.skipped = 5;
  result.faded_frames = 678;
  result.blackout_tag_rounds = 90;
  result.quarantines = 2;
  result.recoveries = 7;
  result.probes_sent = 31;
  result.boost_commands = 400;
  result.resyncs = 1;
  result.ooo_evicted = 6;
  result.dead_tag_audited = true;
  result.quarantine_bound_met = false;
  result.quarantine_round = 421;
  result.detection_rounds = 29;
  result.detection_bound = 23;
  result.violations.push_back({421, "quarantine_late", "tag=6"});
  result.violations.push_back({7, "duplicate", "tag=2 seq=9"});
  result.digest = "stress ratio=0x1.cp-1 ...\n";

  const std::string payload = sim::SerializeStressResult(result);
  sim::StressResult restored;
  ASSERT_TRUE(sim::DeserializeStressResult(payload, &restored));
  EXPECT_EQ(sim::SerializeStressResult(restored), payload);
  EXPECT_EQ(restored.passed, result.passed);
  EXPECT_EQ(restored.delivery_ratio, result.delivery_ratio);
  EXPECT_EQ(restored.skipped, result.skipped);
  EXPECT_EQ(restored.quarantine_round, result.quarantine_round);
  ASSERT_EQ(restored.violations.size(), 2u);
  EXPECT_EQ(restored.violations[0].kind, "quarantine_late");
  EXPECT_EQ(restored.violations[1].detail, "tag=2 seq=9");
  EXPECT_EQ(restored.digest, result.digest);

  // Truncations and trailing bytes never load.
  sim::StressResult scratch;
  for (std::size_t cut = 0; cut < payload.size(); cut += 5) {
    EXPECT_FALSE(
        sim::DeserializeStressResult(payload.substr(0, cut), &scratch));
  }
  EXPECT_FALSE(
      sim::DeserializeStressResult(payload + std::string(1, '\0'), &scratch));
}
