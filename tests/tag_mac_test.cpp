#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "mac/ambient_traffic.h"
#include "mac/tag_mac.h"
#include "mac/tdm.h"
#include "tag/envelope_detector.h"

namespace freerider::mac {
namespace {

// -------------------------------------------------------- announcement

TEST(Announcement, RoundTrip) {
  const RoundAnnouncement a{23, 7};
  const auto parsed = ParseAnnouncement(BuildAnnouncement(a));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->slots, 23u);
  EXPECT_EQ(parsed->sequence, 7);
}

TEST(Announcement, RejectsZeroSlots) {
  EXPECT_FALSE(ParseAnnouncement(BuildAnnouncement({0, 3})).has_value());
}

TEST(Announcement, RejectsWrongLength) {
  EXPECT_FALSE(ParseAnnouncement(BitVector(8, 1)).has_value());
}

// ------------------------------------------------------- tag controller

/// Drive a controller with the pulses of one announcement.
void DeliverAnnouncement(TagController& controller,
                         const RoundAnnouncement& round, Rng& rng) {
  const tag::EnvelopeDetector detector;
  const BitVector message = BuildPlmMessage(BuildAnnouncement(round));
  const auto pulses = EncodePlm(message, 0.0, -35.0);
  for (const auto& p : pulses) {
    if (auto m = detector.Detect(p, rng)) controller.OnPulse(*m);
  }
}

TEST(TagController, FollowsAnnouncementAndPicksValidSlot) {
  Rng rng(1);
  TagController controller(42);
  EXPECT_EQ(controller.state(), TagState::kListening);
  DeliverAnnouncement(controller, {12, 1}, rng);
  ASSERT_EQ(controller.state(), TagState::kSlotWait);
  EXPECT_LT(controller.chosen_slot(), 12u);
}

TEST(TagController, TransmitsExactlyOncePerRound) {
  Rng rng(2);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    TagController controller(seed);
    DeliverAnnouncement(controller, {8, 0}, rng);
    ASSERT_EQ(controller.state(), TagState::kSlotWait);
    int transmissions = 0;
    for (int slot = 0; slot < 8; ++slot) {
      transmissions += controller.OnSlotBoundary();
    }
    EXPECT_EQ(transmissions, 1);
    EXPECT_EQ(controller.state(), TagState::kListening);
  }
}

TEST(TagController, SitsOutWithoutAnnouncement) {
  TagController controller(7);
  for (int slot = 0; slot < 20; ++slot) {
    EXPECT_FALSE(controller.OnSlotBoundary());
  }
  EXPECT_EQ(controller.state(), TagState::kListening);
}

TEST(TagController, IgnoresAmbientPulses) {
  Rng rng(3);
  TagController controller(9);
  // Feed plausible ambient durations (none match L0/L1).
  const AmbientTrafficConfig ambient;
  for (int i = 0; i < 500; ++i) {
    controller.OnPulse({0.0, SampleAmbientDuration(ambient, rng)});
  }
  EXPECT_EQ(controller.state(), TagState::kListening);
}

TEST(TagController, DifferentSeedsSpreadAcrossSlots) {
  Rng rng(4);
  std::set<std::size_t> slots;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    TagController controller(seed);
    DeliverAnnouncement(controller, {16, 2}, rng);
    if (controller.state() == TagState::kSlotWait) {
      slots.insert(controller.chosen_slot());
    }
  }
  // 24 tags over 16 slots should occupy a good fraction of them.
  EXPECT_GT(slots.size(), 8u);
}

TEST(TagController, ReArmsForNextRound) {
  Rng rng(5);
  TagController controller(11);
  for (int round = 0; round < 3; ++round) {
    DeliverAnnouncement(controller,
                        {8, static_cast<std::uint8_t>(round)}, rng);
    ASSERT_EQ(controller.state(), TagState::kSlotWait) << round;
    int transmissions = 0;
    for (int slot = 0; slot < 8; ++slot) {
      transmissions += controller.OnSlotBoundary();
    }
    EXPECT_EQ(transmissions, 1) << round;
  }
}

// ----------------------------------------------------------------- tdm

TEST(Tdm, AssociatesAllTagsQuickly) {
  Rng rng(6);
  TdmSimulator sim;
  const TdmCampaignStats stats = sim.RunCampaign(12, 100, rng);
  EXPECT_GT(stats.rounds_to_full_association, 0u);
  EXPECT_LT(stats.rounds_to_full_association, 40u);
  EXPECT_EQ(sim.associated_count(), 12u);
}

TEST(Tdm, SteadyStateBeatsAloha) {
  Rng rng(7);
  TdmConfig config;
  TdmSimulator sim(config);
  const TdmCampaignStats tdm = sim.RunCampaign(20, 600, rng);
  CampaignConfig aloha_config;
  FramedSlottedAlohaSimulator aloha(aloha_config);
  Rng aloha_rng = rng.Split();
  const CampaignStats al = aloha.RunCampaign(20, 600, aloha_rng);
  EXPECT_GT(tdm.aggregate_throughput_bps, al.aggregate_throughput_bps * 1.5);
}

TEST(Tdm, ApproachesAnalyticSteadyState) {
  Rng rng(8);
  TdmConfig config;
  config.plm_delivery_probability = 1.0;
  TdmSimulator sim(config);
  const TdmCampaignStats stats = sim.RunCampaign(16, 800, rng);
  const double expected = SteadyStateTdmThroughputBps(16, config);
  EXPECT_NEAR(stats.aggregate_throughput_bps, expected, expected * 0.1);
}

TEST(Tdm, FairnessNearOneInSteadyState) {
  Rng rng(9);
  TdmSimulator sim;
  const TdmCampaignStats stats = sim.RunCampaign(10, 500, rng);
  EXPECT_GT(stats.jain_fairness, 0.97);
}

TEST(Tdm, NoCollisionsAmongAssociatedTags) {
  Rng rng(10);
  TdmConfig config;
  config.plm_delivery_probability = 1.0;
  TdmSimulator sim(config);
  // Associate everyone first.
  for (int r = 0; r < 50 && sim.associated_count() < 10; ++r) {
    sim.RunRound(10, rng);
  }
  ASSERT_EQ(sim.associated_count(), 10u);
  const TdmRoundResult round = sim.RunRound(10, rng);
  EXPECT_EQ(round.data_successes, 10u);
}

}  // namespace
}  // namespace freerider::mac
