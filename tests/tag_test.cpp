#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "dsp/fft.h"
#include "dsp/signal_ops.h"
#include "tag/envelope_detector.h"
#include "tag/power_model.h"
#include "tag/rf_frontend.h"

namespace freerider::tag {
namespace {

// ----------------------------------------------------------- rf frontend

TEST(RfFrontend, PhasePlanRotatesWindows) {
  IqBuffer excitation(300, Cplx{1.0, 0.0});
  PhasePlan plan;
  plan.start_sample = 100;
  plan.samples_per_window = 50;
  plan.window_phases = {0.0, kPi};
  const IqBuffer out = ApplyPhasePlan(excitation, plan, 1.0);
  // Before start: untouched.
  EXPECT_NEAR(out[50].real(), 1.0, 1e-12);
  // Window 0 (phase 0): untouched.
  EXPECT_NEAR(out[120].real(), 1.0, 1e-12);
  // Window 1 (phase pi): negated.
  EXPECT_NEAR(out[160].real(), -1.0, 1e-12);
  // Past the plan: untouched.
  EXPECT_NEAR(out[250].real(), 1.0, 1e-12);
}

TEST(RfFrontend, PhasePlanAppliesConversionLoss) {
  IqBuffer excitation(10, Cplx{1.0, 0.0});
  PhasePlan plan;  // empty plan: pure reflection with conversion loss
  const IqBuffer out = ApplyPhasePlan(excitation, plan);
  EXPECT_NEAR(std::abs(out[5]), kSidebandAmplitude, 1e-12);
}

TEST(RfFrontend, ConversionLossIsAbout3p9Db) {
  EXPECT_NEAR(20.0 * std::log10(kSidebandAmplitude), -3.92, 0.02);
}

TEST(RfFrontend, FskTogglePlanFlipsSpectrum) {
  // A +f0 tone in a window flagged 1 acquires ±delta_f sidebands.
  const double fs = 8e6;
  const double f0 = 250e3;
  IqBuffer tone(2048);
  for (std::size_t n = 0; n < tone.size(); ++n) {
    tone[n] = std::polar(1.0, kTwoPi * f0 * static_cast<double>(n) / fs);
  }
  BitVector flags = {1};
  const IqBuffer out =
      ApplyFskTogglePlan(tone, 0, 2048, flags, 500e3, fs, 1.0);
  IqBuffer spec(out.begin(), out.begin() + 1024);
  dsp::Fft(spec);
  // Expect energy at f0 - 500k = -250 kHz and f0 + 500k = +750 kHz,
  // none at the original +250 kHz.
  auto bin = [&](double f) {
    const int k = static_cast<int>(std::lround(f / fs * 1024.0));
    return std::norm(spec[(k + 1024) % 1024]) / (1024.0 * 1024.0);
  };
  EXPECT_GT(bin(-250e3), 0.2);
  EXPECT_GT(bin(750e3), 0.2);
  EXPECT_LT(bin(250e3), 0.01);
}

TEST(RfFrontend, FskToggleZeroWindowPassesThrough) {
  IqBuffer tone(256, Cplx{1.0, 0.0});
  BitVector flags = {0};
  const IqBuffer out = ApplyFskTogglePlan(tone, 0, 256, flags, 500e3, 8e6, 1.0);
  for (std::size_t n = 0; n < out.size(); ++n) {
    EXPECT_NEAR(out[n].real(), 1.0, 1e-12);
  }
}

TEST(RfFrontend, ImpedanceBankLevels) {
  ImpedanceBank bank({0.25, 0.5, 1.0});
  EXPECT_EQ(bank.num_levels(), 3u);
  EXPECT_DOUBLE_EQ(bank.AmplitudeFor(0), 0.25);
  EXPECT_DOUBLE_EQ(bank.AmplitudeFor(2), 1.0);
  EXPECT_THROW(bank.AmplitudeFor(3), std::out_of_range);
}

TEST(RfFrontend, ImpedanceBankRejectsBadGamma) {
  EXPECT_THROW(ImpedanceBank({0.0}), std::invalid_argument);
  EXPECT_THROW(ImpedanceBank({1.5}), std::invalid_argument);
  EXPECT_THROW(ImpedanceBank({}), std::invalid_argument);
}

TEST(RfFrontend, AmplitudePlanScalesWindows) {
  IqBuffer excitation(100, Cplx{1.0, 0.0});
  ImpedanceBank bank({0.5, 1.0});
  std::vector<std::size_t> levels = {0, 1};
  const IqBuffer out = ApplyAmplitudePlan(excitation, 0, 50, levels, bank, 1.0);
  EXPECT_NEAR(std::abs(out[25]), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(out[75]), 1.0, 1e-12);
}

// ----------------------------------------------------- envelope detector

TEST(EnvelopeDetector, StrongPulseAlwaysDetected) {
  Rng rng(1);
  EnvelopeDetector det;
  const AirPulse pulse{0.0, 1e-3, -30.0};
  int detected = 0;
  for (int i = 0; i < 200; ++i) detected += det.Detect(pulse, rng).has_value();
  EXPECT_EQ(detected, 200);
}

TEST(EnvelopeDetector, WeakPulseAlmostNeverDetected) {
  Rng rng(2);
  EnvelopeDetector det;
  const AirPulse pulse{0.0, 1e-3, -80.0};
  int detected = 0;
  for (int i = 0; i < 200; ++i) detected += det.Detect(pulse, rng).has_value();
  EXPECT_LT(detected, 5);
}

TEST(EnvelopeDetector, DetectionProbabilityMonotone) {
  EnvelopeDetector det;
  double prev = 0.0;
  for (double p = -80.0; p <= -30.0; p += 2.0) {
    const double prob = det.DetectionProbability(p);
    EXPECT_GE(prob, prev);
    prev = prob;
  }
  EXPECT_NEAR(det.DetectionProbability(det.config().threshold_dbm), 0.5, 1e-9);
}

TEST(EnvelopeDetector, RiseDelayApplied) {
  Rng rng(3);
  EnvelopeDetector det;
  const AirPulse pulse{1e-3, 500e-6, -30.0};
  const auto measured = det.Detect(pulse, rng);
  ASSERT_TRUE(measured.has_value());
  EXPECT_NEAR(measured->start_s, 1e-3 + det.config().rise_delay_s, 1e-9);
}

TEST(EnvelopeDetector, JitterGrowsNearThreshold) {
  Rng rng(4);
  EnvelopeDetector det;
  auto spread = [&](double power_dbm) {
    RunningStats stats;
    const AirPulse pulse{0.0, 500e-6, power_dbm};
    for (int i = 0; i < 500; ++i) {
      if (auto m = det.Detect(pulse, rng)) stats.Add(m->duration_s);
    }
    return stats.stddev();
  };
  EXPECT_GT(spread(-56.0), spread(-35.0) * 2.0);
}

TEST(EnvelopeDetector, DetectAllFiltersMissed) {
  Rng rng(5);
  EnvelopeDetector det;
  std::vector<AirPulse> pulses = {{0.0, 1e-3, -30.0},
                                  {2e-3, 1e-3, -90.0},
                                  {4e-3, 1e-3, -30.0}};
  const auto measured = det.DetectAll(pulses, rng);
  EXPECT_EQ(measured.size(), 2u);
}

// ------------------------------------------------------------ power model

TEST(PowerModel, WifiTotalNear30Uw) {
  const PowerBreakdownUw p = EstimatePower(TranslatorKind::kWifiPhase, 20e6);
  EXPECT_NEAR(p.total(), 34.0, 4.5);  // 19 + 12 + 3
  EXPECT_NEAR(p.clock, 19.0, 0.5);
  EXPECT_DOUBLE_EQ(p.rf_switch, 12.0);
}

TEST(PowerModel, ClockScalesWithShiftFrequency) {
  const auto p20 = EstimatePower(TranslatorKind::kWifiPhase, 20e6);
  const auto p10 = EstimatePower(TranslatorKind::kWifiPhase, 10e6);
  EXPECT_LT(p10.clock, p20.clock);
  EXPECT_GT(p10.clock, p20.clock / 2.5);
}

TEST(PowerModel, BluetoothLogicIsCheapest) {
  const auto wifi = EstimatePower(TranslatorKind::kWifiPhase, 20e6);
  const auto bt = EstimatePower(TranslatorKind::kBluetoothFsk, 20e6);
  EXPECT_LT(bt.control_logic, wifi.control_logic);
}

TEST(PowerModel, MicrowattRegime) {
  // Whatever the configuration, the tag stays in the tens-of-µW class —
  // 3+ orders below an active WiFi radio.
  for (auto kind : {TranslatorKind::kWifiPhase, TranslatorKind::kZigbeePhase,
                    TranslatorKind::kBluetoothFsk}) {
    const auto p = EstimatePower(kind, 20e6);
    EXPECT_GT(p.total(), 10.0);
    EXPECT_LT(p.total(), 50.0);
  }
}

}  // namespace
}  // namespace freerider::tag
