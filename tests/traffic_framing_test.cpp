// Tests for the "real traffic" framing layers of the non-WiFi radios:
// 802.15.4 MAC headers and BLE advertising payloads, including the
// full ride through their PHYs alongside a FreeRider tag.
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/rng.h"
#include "core/translator.h"
#include "core/xor_decoder.h"
#include "phy802154/frame.h"
#include "phy802154/mhr.h"
#include "phyble/advertising.h"
#include "phyble/frame.h"

namespace freerider {
namespace {

// ----------------------------------------------------------- 802.15.4

TEST(Mhr, DataFrameRoundTrip) {
  Rng rng(1);
  phy802154::MacHeader header;
  header.sequence = 42;
  header.dest_pan = 0xBEEF;
  header.dest_short = 0x0001;
  header.src_short = 0x0002;
  header.ack_request = true;
  const Bytes payload = RandomBytes(rng, 30);
  const Bytes frame = phy802154::BuildMacFrame(header, payload);
  EXPECT_EQ(frame.size(), 9u + payload.size());

  const auto parsed = phy802154::ParseMacFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.type, phy802154::MacFrameType::kData);
  EXPECT_EQ(parsed->header.sequence, 42);
  EXPECT_EQ(parsed->header.dest_pan, 0xBEEF);
  EXPECT_EQ(parsed->header.dest_short, 0x0001);
  EXPECT_EQ(parsed->header.src_short, 0x0002);
  EXPECT_TRUE(parsed->header.ack_request);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Mhr, AckFrameIsThreeBytes) {
  phy802154::MacHeader header;
  header.type = phy802154::MacFrameType::kAck;
  header.sequence = 7;
  const Bytes frame = phy802154::BuildMacFrame(header, {});
  EXPECT_EQ(frame.size(), 3u);
  const auto parsed = phy802154::ParseMacFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.type, phy802154::MacFrameType::kAck);
  EXPECT_EQ(parsed->header.sequence, 7);
}

TEST(Mhr, NoPanCompressionAddsTwoBytes) {
  phy802154::MacHeader header;
  header.pan_id_compression = false;
  const Bytes frame = phy802154::BuildMacFrame(header, Bytes(4, 0));
  EXPECT_EQ(frame.size(), 11u + 4u);
  const auto parsed = phy802154::ParseMacFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->header.pan_id_compression);
}

TEST(Mhr, ParseRejectsGarbage) {
  EXPECT_FALSE(phy802154::ParseMacFrame(Bytes{}).has_value());
  EXPECT_FALSE(phy802154::ParseMacFrame(Bytes(2, 0xFF)).has_value());
  // Long addressing (mode 3) unsupported -> reject.
  Bytes frame(12, 0);
  frame[1] = 0xCC;  // both addressing modes = 3
  frame[0] = 0x01;
  EXPECT_FALSE(phy802154::ParseMacFrame(frame).has_value());
}

TEST(Mhr, RidesThroughZigbeePhyWithTag) {
  // A real 802.15.4 data frame as the excitation, tag riding it.
  Rng rng(2);
  phy802154::MacHeader header;
  header.sequence = 9;
  const Bytes mac_frame =
      phy802154::BuildMacFrame(header, RandomBytes(rng, 40));
  const phy802154::TxFrame frame = phy802154::BuildFrame(mac_frame);

  core::TranslateConfig tcfg;
  tcfg.radio = core::RadioType::kZigbee;
  const BitVector tag_bits =
      RandomBits(rng, core::TagBitCapacity(frame.waveform.size(), tcfg));
  const IqBuffer bs = core::Translate(frame.waveform, tag_bits, tcfg);
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), bs.begin(), bs.end());
  const phy802154::RxResult rx = phy802154::ReceiveFrame(padded);
  ASSERT_TRUE(rx.detected);
  // Tag bits decode...
  const auto decoded =
      core::DecodeZigbee(frame.data_symbols, rx.data_symbols, tcfg.redundancy);
  EXPECT_EQ(BitVector(decoded.bits.begin(),
                      decoded.bits.begin() +
                          static_cast<std::ptrdiff_t>(tag_bits.size())),
            tag_bits);
}

// ------------------------------------------------------ BLE advertising

TEST(Advertising, BuildParseRoundTrip) {
  std::vector<phyble::AdStructure> structures;
  structures.push_back({phyble::AdType::kFlags, Bytes{0x06}});
  structures.push_back(
      {phyble::AdType::kCompleteLocalName, Bytes{'t', 'a', 'g'}});
  const Bytes payload = phyble::BuildAdvertisingPayload(structures);
  const auto parsed = phyble::ParseAdvertisingPayload(payload);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].type, phyble::AdType::kFlags);
  EXPECT_EQ((*parsed)[1].data, (Bytes{'t', 'a', 'g'}));
}

TEST(Advertising, BeaconPayloadParses) {
  const Bytes data = {0x15, 0x09};  // 23.25 C as 0x0915 centidegrees
  const Bytes payload = phyble::MakeBeaconPayload("thermo", 0x181A, data);
  const auto parsed = phyble::ParseAdvertisingPayload(payload);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1].type, phyble::AdType::kCompleteLocalName);
  EXPECT_EQ((*parsed)[2].type, phyble::AdType::kServiceData16);
  EXPECT_EQ((*parsed)[2].data[0], 0x1A);
  EXPECT_EQ((*parsed)[2].data[1], 0x18);
}

TEST(Advertising, TruncatedStructureRejected) {
  Bytes bad = {0x05, 0x09, 'a'};  // claims 5 bytes, has 2
  EXPECT_FALSE(phyble::ParseAdvertisingPayload(bad).has_value());
}

TEST(Advertising, ZeroLengthTerminates) {
  Bytes padded = {0x02, 0x01, 0x06, 0x00, 0xAA, 0xBB};
  const auto parsed = phyble::ParseAdvertisingPayload(padded);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(Advertising, RidesThroughBlePhyWithTag) {
  Rng rng(3);
  const Bytes beacon =
      phyble::MakeBeaconPayload("door-1", 0x181A, Bytes{0x01});
  const phyble::TxFrame frame = phyble::BuildFrame(beacon);

  core::TranslateConfig tcfg;
  tcfg.radio = core::RadioType::kBluetooth;
  const BitVector tag_bits =
      RandomBits(rng, core::TagBitCapacity(frame.waveform.size(), tcfg));
  const IqBuffer bs = core::Translate(frame.waveform, tag_bits, tcfg);
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), bs.begin(), bs.end());
  padded.insert(padded.end(), 100, Cplx{0.0, 0.0});
  const phyble::RxResult rx = phyble::ReceiveFrame(padded);
  ASSERT_TRUE(rx.detected);
  const auto decoded =
      core::DecodeBluetooth(frame.stream_bits, rx.stream_bits, tcfg.redundancy);
  EXPECT_EQ(BitVector(decoded.bits.begin(),
                      decoded.bits.begin() +
                          static_cast<std::ptrdiff_t>(tag_bits.size())),
            tag_bits);
  // And the intended client still reads the beacon (from receiver 1's
  // stream, i.e. the unmodified frame).
  const auto structures = phyble::ParseAdvertisingPayload(frame.payload);
  ASSERT_TRUE(structures.has_value());
  EXPECT_EQ(structures->size(), 3u);
}

}  // namespace
}  // namespace freerider
