// Reliable tag-data transport: ACK extension codec, selective-repeat
// queues, and coordinator receive state (src/transport/).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "mac/plm.h"
#include "mac/tag_mac.h"
#include "transport/ack.h"
#include "transport/arq.h"

using namespace freerider;
using transport::CoordinatorTagRx;
using transport::RxError;
using transport::RxErrorName;
using transport::SeqDistance;
using transport::TagAck;
using transport::TagTransport;
using transport::TransportConfig;

namespace {

TransportConfig Enabled() {
  TransportConfig config;
  config.enabled = true;
  return config;
}

}  // namespace

// ------------------------------------------------------ sequence math

TEST(SeqDistanceTest, WrapsMod256) {
  EXPECT_EQ(SeqDistance(0, 0), 0);
  EXPECT_EQ(SeqDistance(0, 1), 1);
  EXPECT_EQ(SeqDistance(250, 4), 10);   // across the wrap
  EXPECT_EQ(SeqDistance(4, 250), 246);  // the long way round
  EXPECT_EQ(SeqDistance(255, 0), 1);
}

// -------------------------------------------------------- ACK codec

TEST(AckCodecTest, RoundTripsEveryBlockCount) {
  for (std::size_t blocks = 0; blocks <= transport::kMaxAckBlocks; ++blocks) {
    transport::AckExtension ext;
    for (std::size_t i = 0; i < blocks; ++i) {
      ext.acks.push_back({static_cast<std::uint8_t>(i + 1),
                          static_cast<std::uint8_t>(37 * i),
                          static_cast<std::uint16_t>(0xA5A5u >> i)});
    }
    mac::RoundAnnouncement round;
    round.slots = 12;
    round.sequence = 200;
    const BitVector payload = transport::BuildAnnouncementExtended(round, ext);
    const auto parsed = transport::ParseAnnouncementExtended(payload);
    ASSERT_TRUE(parsed.has_value()) << blocks << " blocks";
    EXPECT_FALSE(parsed->ext_rejected);
    EXPECT_EQ(parsed->round.slots, round.slots);
    EXPECT_EQ(parsed->round.sequence, round.sequence);
    ASSERT_TRUE(parsed->ext.has_value());
    EXPECT_EQ(parsed->ext->acks, ext.acks);
  }
}

TEST(AckCodecTest, ExactRandomRoundTrips) {
  Rng rng(404);
  for (int iter = 0; iter < 200; ++iter) {
    transport::AckExtension ext;
    const std::size_t blocks = rng.NextBelow(transport::kMaxAckBlocks + 1);
    for (std::size_t i = 0; i < blocks; ++i) {
      ext.acks.push_back(
          {static_cast<std::uint8_t>(rng.NextBelow(256)),
           static_cast<std::uint8_t>(rng.NextBelow(256)),
           static_cast<std::uint16_t>(rng.NextBelow(65536))});
    }
    mac::RoundAnnouncement round;
    round.slots = 1 + rng.NextBelow(255);
    round.sequence = static_cast<std::uint8_t>(rng.NextBelow(256));
    const BitVector payload = transport::BuildAnnouncementExtended(round, ext);
    const auto parsed = transport::ParseAnnouncementExtended(payload);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->ext.has_value());
    EXPECT_EQ(parsed->ext->acks, ext.acks);
    EXPECT_EQ(parsed->round.slots, round.slots);
  }
}

TEST(AckCodecTest, LegacyPayloadParsesWithoutExtension) {
  mac::RoundAnnouncement round;
  round.slots = 8;
  round.sequence = 3;
  const BitVector legacy = mac::BuildAnnouncement(round);
  const auto parsed = transport::ParseAnnouncementExtended(legacy);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->round.slots, round.slots);
  EXPECT_FALSE(parsed->ext.has_value());
  EXPECT_FALSE(parsed->ext_rejected);
}

TEST(AckCodecTest, LegacyParserReadsThePrefixOfExtendedPayloads) {
  // A legacy 16-bit PLM receiver hears only the announcement prefix of
  // an extended message; the strict legacy parser must accept that
  // prefix and the prefix parser must accept the full payload.
  transport::AckExtension ext;
  ext.acks.push_back({1, 9, 0x0003});
  mac::RoundAnnouncement round;
  round.slots = 24;
  round.sequence = 77;
  const BitVector extended = transport::BuildAnnouncementExtended(round, ext);
  ASSERT_GT(extended.size(), 16u);

  const BitVector prefix(extended.begin(), extended.begin() + 16);
  const auto legacy = mac::ParseAnnouncement(prefix);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->slots, round.slots);
  EXPECT_EQ(legacy->sequence, round.sequence);

  const auto from_prefix = mac::ParseAnnouncementPrefix(extended);
  ASSERT_TRUE(from_prefix.has_value());
  EXPECT_EQ(from_prefix->slots, round.slots);
}

TEST(AckCodecTest, TruncatedExtensionsRejectPrefixSurvives) {
  transport::AckExtension ext;
  ext.acks.push_back({1, 4, 0});
  ext.acks.push_back({2, 9, 1});
  mac::RoundAnnouncement round;
  round.slots = 6;
  round.sequence = 1;
  const BitVector full = transport::BuildAnnouncementExtended(round, ext);
  // Every strict truncation between the prefix and the full payload
  // must keep the round usable and never yield a phantom extension.
  for (std::size_t n = 16; n < full.size(); ++n) {
    const BitVector cut(full.begin(), full.begin() + n);
    const auto parsed = transport::ParseAnnouncementExtended(cut);
    ASSERT_TRUE(parsed.has_value()) << "length " << n;
    EXPECT_EQ(parsed->round.slots, round.slots) << "length " << n;
    if (n > 16) {
      EXPECT_FALSE(parsed->ext.has_value()) << "length " << n;
      EXPECT_TRUE(parsed->ext_rejected) << "length " << n;
    }
  }
}

TEST(AckCodecTest, OversizedAndPaddedPayloadsReject) {
  transport::AckExtension ext;
  ext.acks.push_back({1, 0, 0});
  mac::RoundAnnouncement round;
  round.slots = 4;
  BitVector padded = transport::BuildAnnouncementExtended(round, ext);
  padded.push_back(0);  // one trailing bit: length field no longer true
  const auto parsed = transport::ParseAnnouncementExtended(padded);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ext_rejected);

  BitVector oversized(mac::kMaxExtendedPayloadBits + 1, 1);
  // Give it a plausible prefix so only the size bound can reject it.
  const BitVector prefix = mac::BuildAnnouncement(round);
  std::copy(prefix.begin(), prefix.end(), oversized.begin());
  const auto huge = transport::ParseAnnouncementExtended(oversized);
  ASSERT_TRUE(huge.has_value());
  EXPECT_TRUE(huge->ext_rejected);
}

TEST(AckCodecTest, CorruptedBitsNeverFabricateAcks) {
  transport::AckExtension ext;
  ext.acks.push_back({3, 200, 0x00FF});
  mac::RoundAnnouncement round;
  round.slots = 16;
  round.sequence = 9;
  const BitVector clean = transport::BuildAnnouncementExtended(round, ext);
  // Single-bit flips anywhere past the prefix: the CRC (or a header
  // check) must reject the extension — it must never parse into a
  // *different* ACK set, which could acknowledge a lost frame.
  for (std::size_t i = 16; i < clean.size(); ++i) {
    BitVector flipped = clean;
    flipped[i] ^= 1;
    const auto parsed = transport::ParseAnnouncementExtended(flipped);
    if (!parsed.has_value() || !parsed->ext.has_value()) continue;
    EXPECT_EQ(parsed->ext->acks, ext.acks) << "bit " << i;
  }
}

TEST(AckCodecTest, UnknownVersionRejectsCleanly) {
  transport::AckExtension ext;
  ext.acks.push_back({1, 1, 1});
  mac::RoundAnnouncement round;
  round.slots = 4;
  BitVector payload = transport::BuildAnnouncementExtended(round, ext);
  // Version field: 4 bits, LSB-first, right after the 16-bit prefix.
  // Rewrite version 1 -> 2 and fix up the CRC so only the version is
  // "wrong": the parser must skip it without desyncing the prefix.
  payload[16] = 0;
  payload[17] = 1;
  const std::size_t body_start = 16;
  const std::size_t crc_start = payload.size() - 8;
  const std::uint8_t crc = transport::CrcExtension(
      std::span<const Bit>(payload.data() + body_start,
                           crc_start - body_start));
  for (std::size_t i = 0; i < 8; ++i) {
    payload[crc_start + i] = (crc >> i) & 1;
  }
  const auto parsed = transport::ParseAnnouncementExtended(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->round.slots, round.slots);
  EXPECT_FALSE(parsed->ext.has_value());
  EXPECT_TRUE(parsed->ext_rejected);
}

// ------------------------------------------------- extended receiver

TEST(ExtendedReceiverTest, DeliversLoadedAndEmptyExtensionsAlike) {
  // A transport-enabled coordinator always sends the extension — with
  // zero blocks when it has nothing to acknowledge — so the extended
  // receiver's minimum frame is the 36-bit empty-extension payload.
  transport::AckExtension ext;
  ext.acks.push_back({2, 5, 0x0010});
  mac::RoundAnnouncement round;
  round.slots = 12;
  round.sequence = 60;
  for (const BitVector& payload :
       {transport::BuildAnnouncementExtended(round, ext),
        transport::BuildAnnouncementExtended(round, {})}) {
    const BitVector message = mac::BuildPlmMessage(payload);
    mac::PlmMessageReceiver receiver = mac::PlmMessageReceiver::ExtendedReceiver();
    std::optional<BitVector> delivered;
    for (Bit b : message) {
      if (auto out = receiver.PushBit(b)) delivered = std::move(out);
    }
    ASSERT_TRUE(delivered.has_value());
    EXPECT_EQ(*delivered, payload);
  }
}

TEST(ExtendedReceiverTest, LegacyReceiverHearsPrefixOfExtendedMessage) {
  transport::AckExtension ext;
  ext.acks.push_back({1, 250, 0xFFFF});
  mac::RoundAnnouncement round;
  round.slots = 20;
  round.sequence = 123;
  const BitVector message =
      mac::BuildPlmMessage(transport::BuildAnnouncementExtended(round, ext));
  mac::PlmMessageReceiver legacy(16);
  std::optional<BitVector> delivered;
  for (Bit b : message) {
    if (auto out = legacy.PushBit(b)) {
      delivered = std::move(out);
      break;  // a real tag acts on the first complete message
    }
  }
  ASSERT_TRUE(delivered.has_value());
  const auto parsed = mac::ParseAnnouncement(*delivered);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->slots, round.slots);
  EXPECT_EQ(parsed->sequence, round.sequence);
}

// ------------------------------------------------------ tag transport

TEST(TagTransportTest, BoundedQueueRejectsWhenFull) {
  TransportConfig config = Enabled();
  config.queue_capacity = 4;
  TagTransport tx(config);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(tx.Enqueue(0));
  EXPECT_FALSE(tx.Enqueue(0));
  EXPECT_EQ(tx.stats().offered, 4u);
  EXPECT_EQ(tx.stats().rejected_full, 1u);
  EXPECT_EQ(tx.pending(), 4u);
}

TEST(TagTransportTest, SendsFreshFramesInOrderWithinWindow) {
  TransportConfig config = Enabled();
  config.window = 3;
  TagTransport tx(config);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(tx.Enqueue(0));
  for (std::uint8_t expected : {0, 1, 2}) {
    const auto decision = tx.NextFrame(0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(decision->seq, expected);
    EXPECT_FALSE(decision->retransmission);
  }
  // Window exhausted, nothing ACKed, RTO not yet expired: silence.
  EXPECT_FALSE(tx.NextFrame(0).has_value());
}

TEST(TagTransportTest, CumulativeAckReleasesWindow) {
  TransportConfig config = Enabled();
  config.window = 2;
  TagTransport tx(config);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(tx.Enqueue(0));
  ASSERT_TRUE(tx.NextFrame(0).has_value());  // seq 0
  ASSERT_TRUE(tx.NextFrame(0).has_value());  // seq 1
  TagAck ack;
  ack.cumulative = 1;  // 0 and 1 received
  tx.OnAck(ack, 1);
  EXPECT_EQ(tx.stats().acked, 2u);
  EXPECT_EQ(tx.pending(), 2u);
  const auto next = tx.NextFrame(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->seq, 2);
}

TEST(TagTransportTest, NackTriggersSelectiveResendFirst) {
  TransportConfig config = Enabled();
  config.window = 8;
  TagTransport tx(config);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(tx.Enqueue(0));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(tx.NextFrame(0).has_value());
  TagAck ack;
  ack.cumulative = 0xFF;     // nothing cumulatively received
  ack.nack_bitmap = 0b001;   // seq 0 missing (coordinator saw 1 or 2)
  tx.OnAck(ack, 1);
  const auto resend = tx.NextFrame(1);
  ASSERT_TRUE(resend.has_value());
  EXPECT_EQ(resend->seq, 0);
  EXPECT_TRUE(resend->retransmission);
  EXPECT_EQ(tx.stats().retransmissions, 1u);
}

TEST(TagTransportTest, RepeatedNacksEscalateUpTheLadder) {
  TransportConfig config = Enabled();
  config.escalate_after_nacks = 2;
  config.max_escalation_steps = 2;
  TagTransport tx(config);
  ASSERT_TRUE(tx.Enqueue(0));
  ASSERT_TRUE(tx.NextFrame(0).has_value());
  TagAck nack;
  nack.cumulative = 0xFF;
  nack.nack_bitmap = 1;
  std::size_t max_steps = 0;
  for (std::size_t round = 1; round <= 8; ++round) {
    tx.OnAck(nack, round);
    const auto resend = tx.NextFrame(round);
    ASSERT_TRUE(resend.has_value());
    EXPECT_EQ(resend->seq, 0);
    max_steps = std::max(max_steps, resend->escalation_steps);
    EXPECT_LE(resend->escalation_steps, config.max_escalation_steps);
  }
  EXPECT_EQ(max_steps, config.max_escalation_steps);
  EXPECT_GT(tx.stats().escalations, 0u);
}

TEST(TagTransportTest, RtoResendsTailLossWithoutNack) {
  TransportConfig config = Enabled();
  config.rto_rounds = 3;
  TagTransport tx(config);
  ASSERT_TRUE(tx.Enqueue(0));
  ASSERT_TRUE(tx.NextFrame(0).has_value());
  EXPECT_FALSE(tx.NextFrame(1).has_value());
  EXPECT_FALSE(tx.NextFrame(2).has_value());
  const auto resend = tx.NextFrame(3);  // 3 rounds without feedback
  ASSERT_TRUE(resend.has_value());
  EXPECT_EQ(resend->seq, 0);
  EXPECT_TRUE(resend->retransmission);
}

TEST(TagTransportTest, GiveUpDropsAfterMaxTransmissions) {
  TransportConfig config = Enabled();
  config.max_transmissions = 3;
  config.rto_rounds = 1;
  TagTransport tx(config);
  ASSERT_TRUE(tx.Enqueue(0));
  std::size_t sent = 0;
  for (std::size_t round = 0; round < 10 && tx.HasPending(); ++round) {
    tx.OnRoundStart(round);
    if (tx.NextFrame(round).has_value()) ++sent;
  }
  EXPECT_EQ(sent, 3u);
  EXPECT_FALSE(tx.HasPending());
  EXPECT_EQ(tx.stats().expired, 1u);
}

TEST(TagTransportTest, GiveUpDropsAfterExpiryRounds) {
  TransportConfig config = Enabled();
  config.expiry_rounds = 5;
  config.rto_rounds = 100;  // never RTO: only age can kill it
  TagTransport tx(config);
  ASSERT_TRUE(tx.Enqueue(0));
  ASSERT_TRUE(tx.NextFrame(0).has_value());
  for (std::size_t round = 1; round <= 6; ++round) tx.OnRoundStart(round);
  EXPECT_FALSE(tx.HasPending());
  EXPECT_EQ(tx.stats().expired, 1u);
}

TEST(TagTransportTest, StaleAckFromThePastIsIgnored) {
  TransportConfig config = Enabled();
  TagTransport tx(config);
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(tx.Enqueue(0));
  ASSERT_TRUE(tx.NextFrame(0).has_value());
  TagAck stale;
  stale.cumulative = 200;  // far outside anything offered
  tx.OnAck(stale, 1);
  EXPECT_EQ(tx.pending(), 2u);
  EXPECT_EQ(tx.stats().acked, 0u);
}

// ----------------------------------------------- coordinator receive

TEST(CoordinatorRxTest, InOrderDeliveryAndAck) {
  CoordinatorTagRx rx(Enabled());
  EXPECT_EQ(rx.OnFrame(0, 0), (std::vector<std::uint8_t>{0}));
  EXPECT_EQ(rx.OnFrame(1, 0), (std::vector<std::uint8_t>{1}));
  const TagAck ack = rx.Ack(7);
  EXPECT_EQ(ack.tag_id, 7);
  EXPECT_EQ(ack.cumulative, 1);
  EXPECT_EQ(ack.nack_bitmap, 0);
}

TEST(CoordinatorRxTest, DuplicateRejectedNotRedelivered) {
  CoordinatorTagRx rx(Enabled());
  EXPECT_EQ(rx.OnFrame(0, 0).size(), 1u);
  EXPECT_TRUE(rx.OnFrame(0, 0).empty());
  EXPECT_EQ(rx.stats().duplicates, 1u);
  EXPECT_EQ(rx.stats().delivered, 1u);
}

TEST(CoordinatorRxTest, OutOfOrderBuffersAndFlushes) {
  CoordinatorTagRx rx(Enabled());
  EXPECT_TRUE(rx.OnFrame(2, 0).empty());  // hole at 0,1
  EXPECT_TRUE(rx.OnFrame(1, 0).empty());
  const TagAck ack = rx.Ack(1);
  EXPECT_EQ(ack.cumulative, 0xFF);        // nothing in order yet
  EXPECT_EQ(ack.nack_bitmap & 1, 1);      // seq 0 reported missing
  const auto flushed = rx.OnFrame(0, 1);
  EXPECT_EQ(flushed, (std::vector<std::uint8_t>{0, 1, 2}));
  EXPECT_EQ(rx.stats().out_of_order, 2u);
}

TEST(CoordinatorRxTest, HoleSkipUnblocksAfterConfiguredRounds) {
  TransportConfig config = Enabled();
  config.hole_skip_rounds = 3;
  CoordinatorTagRx rx(config);
  EXPECT_TRUE(rx.OnFrame(1, 0).empty());  // 0 missing, 1 buffered
  std::vector<std::uint8_t> skipped;
  std::vector<std::uint8_t> delivered;
  for (std::size_t round = 0; round < 10 && skipped.empty(); ++round) {
    delivered = rx.OnRoundEnd(round, skipped);
  }
  EXPECT_EQ(skipped, (std::vector<std::uint8_t>{0}));
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(rx.stats().holes_skipped, 1u);
  EXPECT_EQ(rx.next_expected(), 2);
}

TEST(CoordinatorRxTest, SequenceSpaceWrapsCleanly) {
  CoordinatorTagRx rx(Enabled());
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < 600; ++i) {  // > 2 wraps
    delivered += rx.OnFrame(static_cast<std::uint8_t>(i), i).size();
  }
  EXPECT_EQ(delivered, 600u);
  EXPECT_EQ(rx.stats().duplicates, 0u);
}

TEST(CoordinatorRxTest, FarFutureFrameOutsideWindowDropped) {
  TransportConfig config = Enabled();
  config.window = 8;
  CoordinatorTagRx rx(config);
  EXPECT_TRUE(rx.OnFrame(100, 0).empty());
  EXPECT_EQ(rx.stats().beyond_window, 1u);
  EXPECT_EQ(rx.next_expected(), 0);
}

// --------------------------- OOO bounds, eviction, resync semantics

TEST(CoordinatorRxTest, OooBufferIsBoundedByTheWindow) {
  TransportConfig config = Enabled();
  config.window = 8;
  CoordinatorTagRx rx(config);
  // Hole at 0: everything else inside the window buffers out of order.
  for (std::uint8_t seq = 1; seq < 8; ++seq) {
    EXPECT_TRUE(rx.OnFrame(seq, 0).empty());
  }
  EXPECT_EQ(rx.BufferedOoo(), 7u);
  // Beyond the window nothing is accepted — the reassembly memory can
  // never exceed window - 1 frames no matter what arrives.
  for (std::uint8_t seq = 8; seq < 40; ++seq) {
    EXPECT_TRUE(rx.OnFrame(seq, 0).empty());
    EXPECT_LE(rx.BufferedOoo(), config.window - 1) << "seq " << int{seq};
  }
  EXPECT_EQ(rx.BufferedOoo(), 7u);
  EXPECT_EQ(rx.stats().beyond_window, 32u);
}

TEST(CoordinatorRxTest, EvictOooFreesTheBufferAndCounts) {
  CoordinatorTagRx rx(Enabled());
  rx.OnFrame(1, 0);
  rx.OnFrame(3, 0);
  rx.OnFrame(4, 0);
  ASSERT_EQ(rx.BufferedOoo(), 3u);
  rx.EvictOoo();
  EXPECT_EQ(rx.BufferedOoo(), 0u);
  EXPECT_EQ(rx.stats().ooo_evicted, 3u);
  // The stream is intact: retransmissions of the evicted frames are
  // fresh arrivals, not duplicates, and deliver in order.
  std::vector<std::uint8_t> app;
  for (std::uint8_t seq = 0; seq < 5; ++seq) {
    for (std::uint8_t d : rx.OnFrame(seq, 1)) app.push_back(d);
  }
  EXPECT_EQ(app, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(rx.stats().duplicates, 0u);
}

TEST(CoordinatorRxTest, ResyncKeepsTheAnchorWhileTheStreamIsContinuous) {
  CoordinatorTagRx rx(Enabled());
  for (std::uint8_t seq = 0; seq < 5; ++seq) rx.OnFrame(seq, 0);
  ASSERT_EQ(rx.next_expected(), 5);
  rx.BeginResync();
  // First frame heard after the silence is *inside* the window of the
  // old delivery point: the tag kept its backlog, so re-anchoring
  // would flush sequences 5 and 6 undelivered. The anchor must hold.
  EXPECT_TRUE(rx.OnFrame(7, 1).empty());
  EXPECT_EQ(rx.next_expected(), 5);
  EXPECT_EQ(rx.stats().resyncs, 0u);
  std::vector<std::uint8_t> app;
  for (std::uint8_t d : rx.OnFrame(5, 1)) app.push_back(d);
  for (std::uint8_t d : rx.OnFrame(6, 1)) app.push_back(d);
  EXPECT_EQ(app, (std::vector<std::uint8_t>{5, 6, 7}));
}

TEST(CoordinatorRxTest, ResyncReanchorsWhenTheStreamWentStale) {
  TransportConfig config = Enabled();
  config.window = 16;
  CoordinatorTagRx rx(config);
  for (std::uint8_t seq = 0; seq < 5; ++seq) rx.OnFrame(seq, 0);
  rx.BeginResync();
  // The tag gave up its backlog during the silence and moved far past
  // the window: serial comparison against the stale anchor is
  // meaningless, so the stream re-anchors on what was heard.
  const auto delivered = rx.OnFrame(40, 1);
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{40}));
  EXPECT_EQ(rx.next_expected(), 41);
  EXPECT_EQ(rx.stats().resyncs, 1u);
}

TEST(CoordinatorRxTest, ResyncConsumesItselfAfterOneFrame) {
  CoordinatorTagRx rx(Enabled());
  for (std::uint8_t seq = 0; seq < 3; ++seq) rx.OnFrame(seq, 0);
  rx.BeginResync();
  rx.OnFrame(3, 1);  // continuous: anchor holds, resync consumed
  // A later far-future frame must be rejected normally, not treated as
  // another resync opportunity.
  EXPECT_TRUE(rx.OnFrame(100, 2).empty());
  EXPECT_EQ(rx.stats().beyond_window, 1u);
  EXPECT_EQ(rx.stats().resyncs, 0u);
}

// ----------------------------- replay guard and the RxError taxonomy

// The across-the-wrap forward alias: after 300 in-order deliveries the
// delivery point sits at 44 and the window covers 45..59 — sequences
// delivered 255 positions ago on the *previous* lap. A replayed copy
// of one of them is in-window by serial arithmetic; only the
// position-stamped guard can tell it from fresh data.
TEST(CoordinatorRxTest, WrapAliasReplayRejectedByPositionGuard) {
  CoordinatorTagRx rx(Enabled());
  for (std::size_t i = 0; i < 300; ++i) {
    ASSERT_EQ(rx.OnFrame(static_cast<std::uint8_t>(i), i).size(), 1u);
  }
  ASSERT_EQ(rx.next_expected(), 44);
  // Non-mutating classifier agrees up front...
  EXPECT_EQ(rx.Classify(45), RxError::kReplayAlias);
  // ...and the receive path refuses the replay.
  EXPECT_TRUE(rx.OnFrame(45, 300).empty());
  EXPECT_EQ(rx.last_error(), RxError::kReplayAlias);
  EXPECT_EQ(rx.stats().replay_rejected, 1u);
  // The poisoned sequence was not buffered: delivering 44 flushes only
  // 44, not a stale 45 from last lap.
  EXPECT_EQ(rx.OnFrame(44, 300), (std::vector<std::uint8_t>{44}));
}

// Regression documentation for the pre-guard behaviour: with the guard
// off the aliased replay is buffered as a legitimate out-of-order
// arrival and flushed as fresh data — last lap's payload delivered a
// second time. This is the bug the replay window closes.
TEST(CoordinatorRxTest, WrapAliasAcceptedWhenGuardDisabled) {
  TransportConfig config = Enabled();
  config.replay_guard = false;
  CoordinatorTagRx rx(config);
  for (std::size_t i = 0; i < 300; ++i) {
    ASSERT_EQ(rx.OnFrame(static_cast<std::uint8_t>(i), i).size(), 1u);
  }
  EXPECT_TRUE(rx.OnFrame(45, 300).empty());  // buffered, not rejected
  EXPECT_EQ(rx.stats().replay_rejected, 0u);
  EXPECT_EQ(rx.OnFrame(44, 300), (std::vector<std::uint8_t>{44, 45}));
}

TEST(CoordinatorRxTest, DeepStaleClassifiedAsReplayNotRetransmit) {
  CoordinatorTagRx rx(Enabled());
  for (std::size_t i = 0; i < 100; ++i) rx.OnFrame(static_cast<std::uint8_t>(i), i);
  ASSERT_EQ(rx.next_expected(), 100);
  // 90 behind: far deeper than any honest retransmission can trail
  // (replay_stale_behind = 64) — misbehavior evidence, own counter.
  EXPECT_TRUE(rx.OnFrame(10, 100).empty());
  EXPECT_EQ(rx.last_error(), RxError::kStaleReplay);
  EXPECT_EQ(rx.stats().stale_rejected, 1u);
  // 5 behind: a plausible retransmit, a benign duplicate only. (Stale
  // replays count among duplicates too — stale_rejected is the split.)
  EXPECT_TRUE(rx.OnFrame(95, 100).empty());
  EXPECT_EQ(rx.last_error(), RxError::kDuplicate);
  EXPECT_EQ(rx.stats().duplicates, 2u);
  EXPECT_EQ(rx.stats().stale_rejected, 1u);
}

// BeginResync re-anchors the stream and must also void the replay
// memory: the old positions are meaningless after a re-anchor and the
// tag may legally resend sequences from before the silence.
TEST(CoordinatorRxTest, ResyncReanchorClearsReplayMemory) {
  CoordinatorTagRx rx(Enabled());
  for (std::uint8_t seq = 0; seq < 10; ++seq) rx.OnFrame(seq, 0);
  rx.BeginResync();
  // Re-anchor *backwards* onto a sequence delivered 5 positions ago —
  // exactly what the guard would refuse mid-stream.
  EXPECT_EQ(rx.OnFrame(5, 20), (std::vector<std::uint8_t>{5}));
  EXPECT_EQ(rx.stats().resyncs, 1u);
  EXPECT_EQ(rx.stats().replay_rejected, 0u);
  EXPECT_EQ(rx.OnFrame(6, 20), (std::vector<std::uint8_t>{6}));
}

TEST(RxErrorTest, NamesCoverTheTaxonomy) {
  const RxError all[] = {RxError::kNone,       RxError::kDuplicate,
                         RxError::kStaleReplay, RxError::kReplayAlias,
                         RxError::kBeyondWindow, RxError::kDuplicateOoo};
  std::set<std::string> names;
  for (const RxError e : all) {
    ASSERT_NE(RxErrorName(e), nullptr);
    names.insert(RxErrorName(e));
  }
  EXPECT_EQ(names.size(), 6u);  // distinct, greppable labels
  EXPECT_STREQ(RxErrorName(RxError::kReplayAlias), "replay_alias");
}

// Classify() is the embargo path's oracle: for every sequence in the
// space it must predict exactly what OnFrame would decide, without
// touching the receive state.
TEST(CoordinatorRxTest, ClassifyMatchesOnFrameAcrossTheWholeSpace) {
  const auto sweep = [](const CoordinatorTagRx& rx, const char* state) {
    const std::uint8_t anchor = rx.next_expected();
    for (int s = 0; s < 256; ++s) {
      const auto seq = static_cast<std::uint8_t>(s);
      const RxError predicted = rx.Classify(seq);
      CoordinatorTagRx trial = rx;  // state copy: probe without damage
      trial.OnFrame(seq, 400);
      EXPECT_EQ(predicted, trial.last_error()) << state << " seq " << s;
    }
    EXPECT_EQ(rx.next_expected(), anchor);  // probing mutated nothing
  };
  // Pre-wrap, with an out-of-order arrival parked in the window:
  // exercises kNone / kDuplicate / kDuplicateOoo / kBeyondWindow.
  CoordinatorTagRx fresh(Enabled());
  for (std::size_t i = 0; i < 100; ++i) {
    fresh.OnFrame(static_cast<std::uint8_t>(i), i);
  }
  fresh.OnFrame(102, 100);
  ASSERT_EQ(fresh.last_error(), RxError::kNone);  // parked, sanctioned
  sweep(fresh, "fresh");
  // Post-wrap: every in-window successor was delivered on the previous
  // lap, so the alias arm (kReplayAlias) and the stale split both live.
  CoordinatorTagRx wrapped(Enabled());
  for (std::size_t i = 0; i < 300; ++i) {
    wrapped.OnFrame(static_cast<std::uint8_t>(i), i);
  }
  sweep(wrapped, "wrapped");
}

TEST(CoordinatorTransportTest, AckRotationCoversEveryTag) {
  TransportConfig config = Enabled();
  config.ack_blocks_per_round = 2;
  transport::CoordinatorTransport coordinator(5, config);
  std::set<std::uint8_t> seen;
  for (int round = 0; round < 3; ++round) {
    const transport::AckExtension ext = coordinator.BuildExtension();
    EXPECT_LE(ext.acks.size(), 2u);
    for (const TagAck& ack : ext.acks) seen.insert(ack.tag_id);
  }
  // 5 tags, 2 blocks per round: 3 rounds cover everyone (1-based ids).
  EXPECT_EQ(seen, (std::set<std::uint8_t>{1, 2, 3, 4, 5}));
}

// ----------------------------------- end-to-end property (mini fuzz)

TEST(TransportPropertyTest, RandomLossNeverDuplicatesNorReorders) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    TransportConfig config = Enabled();
    config.max_transmissions = 1000000;
    config.expiry_rounds = 1000000;
    config.hole_skip_rounds = 1000000;
    TagTransport tx(config);
    CoordinatorTagRx rx(config);
    const double loss = 0.05 + 0.5 * rng.NextDouble();
    const double ack_loss = 0.3 * rng.NextDouble();
    std::vector<std::uint8_t> app;
    std::size_t offered = 0;
    for (std::size_t round = 0; round < 400; ++round) {
      tx.OnRoundStart(round);
      if (round < 300 && round % 2 == 0 && tx.Enqueue(round)) ++offered;
      if (const auto d = tx.NextFrame(round)) {
        if (rng.NextDouble() >= loss) {
          for (std::uint8_t seq : rx.OnFrame(d->seq, round)) {
            app.push_back(seq);
          }
        }
      }
      std::vector<std::uint8_t> skipped;
      for (std::uint8_t seq : rx.OnRoundEnd(round, skipped)) {
        app.push_back(seq);
      }
      ASSERT_TRUE(skipped.empty());
      if (rng.NextDouble() >= ack_loss) tx.OnAck(rx.Ack(1), round);
    }
    // No duplicates, no reordering: the app stream is exactly 0..n-1.
    for (std::size_t i = 0; i < app.size(); ++i) {
      ASSERT_EQ(app[i], static_cast<std::uint8_t>(i))
          << "trial " << trial << " position " << i;
    }
    EXPECT_EQ(app.size() + tx.pending(), offered) << "trial " << trial;
    EXPECT_EQ(rx.stats().delivered, app.size());
  }
}

// Sequence-wraparound audit: the 8-bit counter must wrap at least
// twice (> 512 distinct frames) under loss on both sides of the loop,
// and the delivered stream must still be exactly in order with no
// duplicate and no skip — every serial-number comparison in OnAck,
// OnFrame and the NACK replay is exercised across the wrap.
TEST(TransportPropertyTest, CounterWrapsTwiceUnderLossWithoutCorruption) {
  Rng rng(271828);
  for (int trial = 0; trial < 8; ++trial) {
    TransportConfig config = Enabled();
    config.max_transmissions = 1000000;
    config.expiry_rounds = 1000000;
    config.hole_skip_rounds = 1000000;
    TagTransport tx(config);
    CoordinatorTagRx rx(config);
    const double loss = 0.05 + 0.35 * rng.NextDouble();
    const double ack_loss = 0.3 * rng.NextDouble();
    std::size_t offered = 0;
    std::size_t delivered = 0;
    std::uint8_t expected_next = 0;
    const std::size_t offer_rounds = 1500;
    for (std::size_t round = 0; round < offer_rounds + 400; ++round) {
      tx.OnRoundStart(round);
      if (round < offer_rounds && tx.Enqueue(round)) ++offered;
      if (const auto d = tx.NextFrame(round)) {
        if (rng.NextDouble() >= loss) {
          for (std::uint8_t seq : rx.OnFrame(d->seq, round)) {
            ASSERT_EQ(seq, expected_next)
                << "trial " << trial << " round " << round;
            ++expected_next;  // wraps mod 256 exactly like the wire
            ++delivered;
          }
        }
      }
      std::vector<std::uint8_t> skipped;
      ASSERT_TRUE(rx.OnRoundEnd(round, skipped).empty());
      ASSERT_TRUE(skipped.empty());
      if (rng.NextDouble() >= ack_loss) tx.OnAck(rx.Ack(1), round);
    }
    EXPECT_GT(offered, 512u) << "trial " << trial;  // >= 2 full wraps
    EXPECT_EQ(delivered + tx.pending(), offered) << "trial " << trial;
    EXPECT_GT(delivered, 512u) << "trial " << trial;
    EXPECT_EQ(rx.stats().delivered, delivered) << "trial " << trial;
    EXPECT_EQ(rx.stats().holes_skipped, 0u);
  }
}
