// Compilation guard for the umbrella header: `#include "freerider.h"`
// must pull in the entire public API without conflicts.
#include "freerider.h"

#include <gtest/gtest.h>

namespace freerider {
namespace {

TEST(Umbrella, VersionAndBasicSymbolsVisible) {
  EXPECT_GE(kVersionMajor, 1);
  // One symbol per layer proves the includes resolved.
  EXPECT_EQ(core::DefaultRedundancy(core::RadioType::kWifi), 4u);
  EXPECT_EQ(phy80211::kFftSize, 64u);
  EXPECT_EQ(phy802154::kChipsPerSymbol, 32u);
  EXPECT_NEAR(phyble::kModulationIndex, 0.5, 1e-12);
  EXPECT_EQ(phy80211b::kChipsPerSymbol, 11u);
  EXPECT_NEAR(tag::kSidebandAmplitude, 2.0 / kPi, 1e-12);
  EXPECT_GT(mac::PlmBitRateBps(), 0.0);
  EXPECT_GT(channel::NoiseFloorDbm(20e6, 4.0), -100.0);
}

TEST(Umbrella, EndToEndSmokeThroughUmbrellaOnly) {
  // The quickstart flow, written against freerider.h alone.
  Rng rng(99);
  const phy80211::TxFrame frame =
      phy80211::BuildFrame(RandomBytes(rng, 300), {});
  core::TranslateConfig cfg;
  const BitVector tag_bits =
      RandomBits(rng, core::TagBitCapacity(frame.waveform.size(), cfg));
  const IqBuffer bs = core::Translate(frame.waveform, tag_bits, cfg);
  IqBuffer padded(100, Cplx{0.0, 0.0});
  padded.insert(padded.end(), bs.begin(), bs.end());
  const phy80211::RxResult rx = phy80211::ReceiveFrame(padded);
  ASSERT_TRUE(rx.signal_ok);
  const core::TagDecodeResult decoded = core::DecodeWifi(
      frame.data_bits, rx.data_bits,
      phy80211::ParamsFor(rx.rate).data_bits_per_symbol, cfg.redundancy);
  EXPECT_EQ(decoded.bits, tag_bits);
}

}  // namespace
}  // namespace freerider
