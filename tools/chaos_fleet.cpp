// Worker-kill chaos harness for the distributed sweep runtime
// (DESIGN.md §12): the executable proof that a campaign's output does
// not depend on which workers die, hang, or corrupt frames mid-run.
//
// The probe campaign is the registry's "chaos_probe" body (short
// Framed-Slotted-Aloha campaigns on counter-derived per-task streams),
// reduced to a canonical hex-float digest in grid order. The harness
//
//   1. runs the campaign in-process (--workers 0) for the baseline
//      digest, then
//   2. replays it through a worker fleet under a matrix of
//      FREERIDER_CHAOS schedules — SIGKILLs, SIGSTOPs (detected only
//      by heartbeat expiry), bit-flipped result frames, and a mix —
//      with a short lease timeout so hang detection happens in
//      seconds, and
//   3. fails (exit 1) unless every scenario reproduces the baseline
//      digest byte for byte, satisfies the accounting invariant
//      ok + restored + quarantined + drained == total, and shows the
//      fault actually fired (deaths/respawns for kills and stops,
//      corrupt frames for flips).
//
//   chaos_fleet [--workers N] [--points P] [--trials T] [--rounds R]
//               [--seed S] [--lease-s X] [--scenario NAME]
//
// --scenario runs a single named scenario (default: all).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "runtime/dist/worker.h"
#include "sim/dist_bodies.h"

using namespace freerider;

namespace {

struct Scenario {
  const char* name;
  const char* chaos;  ///< FREERIDER_CHAOS schedule.
  bool expect_deaths = false;   ///< SIGKILL/SIGSTOP in the schedule.
  bool expect_corrupt = false;  ///< Bit flip in the schedule.
};

/// The kill matrix. Worker indices are first-generation (respawns get
/// fresh indices), so every directive fires exactly once per run.
const Scenario kScenarios[] = {
    {"none", "", false, false},
    {"kill_one", "kill@0:1", true, false},
    {"kill_two", "kill@0:1,kill@1:2", true, false},
    {"stop_hang", "stop@0:1", true, false},
    {"flip_frame", "flip@0:1", false, true},
    {"mixed", "kill@0:1,stop@1:1,flip@2:2", true, true},
};

bool AccountingOk(const runtime::RobustSweepReport& r) {
  return r.tasks_ok + r.tasks_restored + r.tasks_quarantined +
             r.tasks_drained ==
         r.tasks_total;
}

}  // namespace

int main(int argc, char** argv) {
  sim::RegisterDistBodies();
  if (const int rc = runtime::dist::HandleWorkerMode(argc, argv); rc >= 0) {
    return rc;
  }

  std::size_t workers = 4;
  std::size_t points = 6;
  std::size_t trials = 2;
  std::size_t rounds = 300;
  std::uint64_t seed = 20260808;
  double lease_s = 2.0;
  std::string only;
  bool args_ok = true;
  cli::ConsumeSize(argc, argv, "--workers", &workers, &args_ok);
  cli::ConsumeSize(argc, argv, "--points", &points, &args_ok);
  cli::ConsumeSize(argc, argv, "--trials", &trials, &args_ok);
  cli::ConsumeSize(argc, argv, "--rounds", &rounds, &args_ok);
  cli::ConsumeU64(argc, argv, "--seed", &seed, &args_ok);
  std::string lease_str;
  if (cli::ConsumeValue(argc, argv, "--lease-s", &lease_str)) {
    lease_s = std::strtod(lease_str.c_str(), nullptr);
    if (lease_s <= 0.0) args_ok = false;
  }
  cli::ConsumeValue(argc, argv, "--scenario", &only);
  if (!args_ok) return cli::kUsageError;
  if (const int rc = cli::RejectUnknownArgs(
          argc, argv,
          "chaos_fleet [--workers N] [--points P] [--trials T] [--rounds R]"
          " [--seed S] [--lease-s X] [--scenario NAME]")) {
    return rc;
  }
  if (workers == 0 || points == 0 || trials == 0 || rounds == 0) {
    std::fprintf(stderr, "error: --workers/--points/--trials/--rounds must "
                         "be positive\n");
    return cli::kUsageError;
  }

  const runtime::SweepGrid grid{points, trials};
  std::printf("=== chaos_fleet: %zu workers, %zux%zu grid, %zu-round probes, "
              "lease %.1fs ===\n\n",
              workers, points, trials, rounds, lease_s);

  // Baseline: the same campaign, in-process. Every fleet run must
  // reproduce this digest byte for byte.
  std::string baseline;
  {
    runtime::dist::DistOptions dist;
    dist.workers = 0;
    const runtime::dist::DistReport report = sim::ChaosProbeDistributed(
        seed, rounds, grid, runtime::RobustSweepOptions{}, dist, &baseline);
    if (!AccountingOk(report.robust) || report.robust.cancelled) {
      std::fprintf(stderr, "FAIL: in-process baseline did not complete\n");
      return 1;
    }
  }
  std::printf("baseline digest: %zu tasks, %zu bytes\n\n", grid.tasks(),
              baseline.size());

  TablePrinter table({"scenario", "digest", "accounting", "deaths", "respawns",
                      "corrupt", "verdict"});
  bool all_ok = true;
  for (const Scenario& s : kScenarios) {
    if (!only.empty() && only != s.name) continue;
    ::setenv("FREERIDER_CHAOS", s.chaos, 1);
    runtime::dist::DistOptions dist;
    dist.workers = workers;
    dist.lease_timeout_s = lease_s;
    dist.speculate_after_s = 4.0 * lease_s;
    std::string digest;
    const runtime::dist::DistReport report = sim::ChaosProbeDistributed(
        seed, rounds, grid, runtime::RobustSweepOptions{}, dist, &digest);
    ::unsetenv("FREERIDER_CHAOS");

    const std::size_t deaths = report.worker_deaths + report.lease_expiries;
    const bool digest_ok = digest == baseline;
    const bool accounting = AccountingOk(report.robust);
    // A scheduled fault that never fired means the harness tested
    // nothing: fail loudly rather than report a hollow pass. (The
    // fleet must actually have run for these expectations to apply.)
    const bool fault_fired =
        (!s.expect_deaths || deaths + report.respawns > 0) &&
        (!s.expect_corrupt || report.corrupt_frames > 0);
    const bool ok = digest_ok && accounting && !report.robust.cancelled &&
                    report.distributed && fault_fired;
    all_ok = all_ok && ok;
    table.AddRow({s.name, digest_ok ? "match" : "MISMATCH",
                  accounting ? "ok" : "BROKEN", std::to_string(deaths),
                  std::to_string(report.respawns),
                  std::to_string(report.corrupt_frames),
                  ok ? "pass" : "FAIL"});
    if (!digest_ok) {
      std::fprintf(stderr, "scenario %s digest mismatch:\n--- baseline\n%s"
                           "--- %s\n%s",
                   s.name, baseline.c_str(), s.name, digest.c_str());
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("%s\n", all_ok ? "chaos_fleet: PASS (all scenarios reproduced "
                               "the baseline digest)"
                             : "chaos_fleet: FAIL");
  return all_ok ? 0 : 1;
}
