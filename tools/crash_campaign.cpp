// Crash-injection harness for the preemption-safe campaign runtime.
//
// Proves the checkpoint/resume contract the hard way: fork a campaign,
// SIGKILL it at a randomized task count (FREERIDER_CRASH_AFTER_N_TASKS
// — raised from inside the worker the instant the N-th task commits),
// resume from the surviving checkpoint, kill again, and after a chain
// of kills let the final resume run to completion. The recovered
// output must be byte-identical to an uninterrupted single-threaded
// baseline — at --threads 1 *and* 8, because task results are pure
// functions of (seed, point, trial).
//
// Coverage per run (all deterministic, driven by the repo Rng):
//   3 campaign modes (fig-style link sweep, chaos-soak grid, multitag
//   MAC grid) x 3 harness seeds x 2 thread counts, 3 chained kills
//   each = 54 SIGKILLs, plus:
//     * every 3rd trial truncates the checkpoint tail before resuming
//       (the salvage path must shrug off a torn file);
//     * a quarantine self-check: a deterministically-poisoned task is
//       retried, quarantined, recorded in the checkpoint, and the
//       campaign still completes with the poison reported.
//
// Every campaign runs in a fork()ed child (the parent never touches an
// Executor, so each child builds a fresh thread pool); children write
// their canonical output via the atomic file writer and _exit.
//
//   crash_campaign [--out-dir DIR] [--kills N] [--quick]
//
// Exit code 0 = every resume converged bit-identically; 1 = any
// divergence, unexpected child status, or failed self-check.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "mac/slotted_aloha.h"
#include "runtime/checkpoint.h"
#include "runtime/executor.h"
#include "runtime/recovery.h"
#include "sim/soak.h"
#include "sim/sweep.h"

using namespace freerider;

namespace {

// ------------------------------------------------------- campaigns
//
// Each campaign produces one canonical output string (hex-float, so
// byte comparison is bit comparison) and reports its grid size so the
// harness can pick kill points inside it.

struct CampaignResult {
  std::string output;
  runtime::RobustSweepReport report;
};

CampaignResult RunFigCampaign(const runtime::RobustSweepOptions& robust) {
  const std::vector<double> distances = {1.0, 2.0, 4.0, 6.0,
                                         8.0, 10.0, 14.0, 18.0};
  runtime::RobustSweepReport report;
  const auto points = sim::DistanceSweepRobust(
      core::RadioType::kWifi, channel::LosDeployment(1.0), distances,
      /*packets=*/2, /*seed=*/424242, "crash_fig", robust, &report);
  std::string out = "campaign fig\n";
  for (const auto& p : points) {
    char line[256];
    std::snprintf(line, sizeof(line), "d=%a thr=%a ber=%a prr=%a n=%zu\n",
                  p.tag_to_rx_m, p.stats.tag_throughput_bps, p.stats.tag_ber,
                  p.stats.packet_reception_rate, p.stats.redundancy_used);
    out += line;
  }
  return {std::move(out), std::move(report)};
}

CampaignResult RunSoakCampaign(const runtime::RobustSweepOptions& robust) {
  const std::uint64_t seeds[] = {101ull, 202ull, 303ull};
  const std::size_t num_seeds = 3;
  std::vector<sim::SoakConfig> soaks(num_seeds);
  for (std::size_t i = 0; i < num_seeds; ++i) {
    soaks[i].seed = seeds[i];
    soaks[i].num_tags = 3;
    soaks[i].rounds = 60;
    soaks[i].drain_rounds = 60;
    soaks[i].offer_every = 4;
    soaks[i].transport.max_transmissions = 64;
    soaks[i].transport.expiry_rounds = 1 << 20;
    soaks[i].transport.hole_skip_rounds = 1 << 20;
    sim::SoakSegment dirty;
    dirty.start_round = 20;
    dirty.impairments.dropout.enabled = true;
    dirty.impairments.dropout.dropout_probability = 0.10;
    dirty.impairments.dropout.min_keep_fraction = 0.3;
    dirty.impairments.dropout.max_keep_fraction = 0.9;
    soaks[i].schedule = {dirty};
  }
  std::vector<sim::SoakResult> results(num_seeds);
  runtime::RobustSweepOptions options = robust;
  options.campaign = runtime::CampaignId("crash_soak", 1);
  runtime::RecoveryRunner runner(runtime::DefaultExecutor(), options);
  runtime::RobustSweepReport report = runner.Run(
      {num_seeds, 1},
      [&](std::size_t p, std::size_t) {
        results[p] = sim::RunSoak(soaks[p]);
        runtime::RobustTaskResult out;
        out.payload = sim::SerializeSoakResult(results[p]);
        return out;
      },
      [&](std::size_t p, std::size_t, const std::string& payload) {
        return sim::DeserializeSoakResult(payload, &results[p]);
      });
  std::string out = "campaign soak\n";
  for (std::size_t i = 0; i < num_seeds; ++i) {
    out += "seed " + std::to_string(seeds[i]) + " passed=" +
           (results[i].passed ? "1" : "0") + "\n";
    out += results[i].digest;
  }
  return {std::move(out), std::move(report)};
}

CampaignResult RunMultitagCampaign(const runtime::RobustSweepOptions& robust) {
  const std::size_t tag_counts[] = {4, 8, 12, 16};
  const std::size_t points = 4;
  const std::size_t reps = 5;
  Rng rng(99);
  std::vector<std::uint64_t> seeds(points * reps);
  for (auto& s : seeds) s = rng.NextU64();
  std::vector<double> fairness(points * reps);
  const mac::CampaignConfig config;
  runtime::RobustSweepOptions options = robust;
  options.campaign = runtime::CampaignId("crash_multitag", 99);
  runtime::RecoveryRunner runner(runtime::DefaultExecutor(), options);
  runtime::RobustSweepReport report = runner.Run(
      {points, reps},
      [&](std::size_t p, std::size_t rep) {
        mac::FramedSlottedAlohaSimulator sim(config);
        Rng campaign_rng(seeds[p * reps + rep]);
        fairness[p * reps + rep] =
            sim.RunCampaign(tag_counts[p], 15, campaign_rng).jain_fairness;
        runtime::PayloadWriter w;
        w.F64(fairness[p * reps + rep]);
        runtime::RobustTaskResult out;
        out.payload = w.Take();
        return out;
      },
      [&](std::size_t p, std::size_t rep, const std::string& payload) {
        runtime::PayloadReader r(payload);
        double v = 0.0;
        if (!r.F64(&v) || !r.AtEnd()) return false;
        fairness[p * reps + rep] = v;
        return true;
      });
  std::string out = "campaign multitag\n";
  for (std::size_t i = 0; i < points * reps; ++i) {
    char line[64];
    std::snprintf(line, sizeof(line), "f[%zu]=%a\n", i, fairness[i]);
    out += line;
  }
  return {std::move(out), std::move(report)};
}

struct Mode {
  const char* name;
  std::size_t tasks;
  CampaignResult (*run)(const runtime::RobustSweepOptions&);
};

const Mode kModes[] = {
    {"fig", 8, RunFigCampaign},
    {"soak", 3, RunSoakCampaign},
    {"multitag", 20, RunMultitagCampaign},
};

// ----------------------------------------------------- child driver

/// Run one campaign in a fork()ed child: configure threads and the
/// crash hook, execute, write the canonical output atomically, _exit.
/// Returns the child's wait status.
int RunChild(const Mode& mode, std::size_t threads, std::size_t crash_after,
             bool resume, const std::string& ckpt_path,
             const std::string& out_path, bool expect_accounting_ok = true) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    if (crash_after > 0) {
      setenv("FREERIDER_CRASH_AFTER_N_TASKS",
             std::to_string(crash_after).c_str(), 1);
    } else {
      unsetenv("FREERIDER_CRASH_AFTER_N_TASKS");
    }
    runtime::SetDefaultThreads(threads);
    runtime::RobustSweepOptions robust;
    robust.checkpoint_path = ckpt_path;
    robust.checkpoint_every = 1;  // snapshot on every completion
    robust.resume = resume;
    const CampaignResult result = mode.run(robust);
    const bool accounting_ok =
        result.report.tasks_ok + result.report.tasks_restored +
            result.report.tasks_quarantined + result.report.tasks_drained ==
        result.report.tasks_total;
    if (!runtime::WriteFileAtomic(out_path, result.output) ||
        (expect_accounting_ok && !accounting_ok)) {
      _exit(3);
    }
    _exit(result.report.cancelled ? 2 : 0);
  }
  int status = 0;
  while (waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      std::perror("waitpid");
      std::exit(1);
    }
  }
  return status;
}

bool KilledBySigkill(int status) {
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

bool ExitedClean(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

std::string Slurp(const std::string& path) {
  std::string bytes;
  if (!runtime::ReadFileBytes(path, &bytes)) return {};
  return bytes;
}

/// Chop a few bytes off the checkpoint tail — the torn-write the
/// decoder must salvage.
void TruncateCheckpoint(const std::string& path, Rng& rng) {
  std::string bytes;
  if (!runtime::ReadFileBytes(path, &bytes) || bytes.size() < 2) return;
  const std::size_t max_cut = bytes.size() < 65 ? bytes.size() - 1 : 64;
  const std::size_t cut = 1 + rng.NextBelow(max_cut);
  bytes.resize(bytes.size() - cut);
  runtime::WriteFileAtomic(path, bytes);
}

// ------------------------------------------- quarantine self-check

/// A campaign with one deterministically-poisoned task: it must be
/// retried, quarantined, recorded, and the run must still complete
/// with honest accounting. Runs in a child (it builds an Executor).
bool QuarantineSelfCheck(const std::string& dir) {
  std::fflush(stdout);
  std::fflush(stderr);
  const std::string ckpt = dir + "/quarantine.ckpt";
  const pid_t pid = fork();
  if (pid == 0) {
    runtime::SetDefaultThreads(2);
    runtime::RobustSweepOptions options;
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 1;
    options.campaign = runtime::CampaignId("quarantine_check", 7);
    options.max_retries = 2;
    options.quarantine = true;
    runtime::RecoveryRunner runner(runtime::DefaultExecutor(), options);
    const runtime::RobustSweepReport report = runner.Run(
        {6, 1},
        [&](std::size_t p, std::size_t) -> runtime::RobustTaskResult {
          if (p == 3) throw std::runtime_error("poisoned task");
          runtime::PayloadWriter w;
          w.U64(p * p);
          return {true, w.Take()};
        },
        [](std::size_t, std::size_t, const std::string&) { return true; });
    const bool ok =
        !report.cancelled && report.tasks_quarantined == 1 &&
        report.quarantined == std::vector<std::size_t>{3} &&
        report.tasks_ok == 5 && report.task_retries == 2 &&
        report.tasks_ok + report.tasks_restored + report.tasks_quarantined +
                report.tasks_drained ==
            report.tasks_total;
    // The quarantine must also survive in the checkpoint itself.
    std::string bytes;
    bool persisted = false;
    if (runtime::ReadFileBytes(ckpt, &bytes)) {
      const runtime::CheckpointDecodeResult decoded =
          runtime::DecodeCheckpoint(bytes);
      for (const runtime::TaskRecord& r : decoded.records) {
        persisted |= r.index == 3 &&
                     r.state == runtime::TaskState::kQuarantined;
      }
    }
    _exit(ok && persisted ? 0 : 1);
  }
  int status = 0;
  while (waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return false;
  }
  return ExitedClean(status);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::size_t kills_per_trial = 3;
  bool args_ok = true;
  cli::ConsumeValue(argc, argv, "--out-dir", &out_dir);
  cli::ConsumeSize(argc, argv, "--kills", &kills_per_trial, &args_ok);
  if (cli::ConsumeFlag(argc, argv, "--quick")) kills_per_trial = 1;
  if (!args_ok) return cli::kUsageError;
  if (const int rc = cli::RejectUnknownArgs(
          argc, argv, "crash_campaign [--out-dir DIR] [--kills N] "
                      "[--quick]")) {
    return rc;
  }

  const std::uint64_t harness_seeds[] = {1, 2, 3};
  const std::size_t thread_counts[] = {1, 8};
  std::size_t total_kills = 0;
  std::size_t truncations = 0;
  std::size_t failures = 0;
  std::size_t trial_index = 0;

  for (const Mode& mode : kModes) {
    // Uninterrupted single-threaded baseline: the byte-compare
    // reference for every resumed run at every thread count.
    const std::string baseline_path =
        out_dir + "/crash_" + mode.name + "_baseline.txt";
    const int base_status = RunChild(mode, 1, 0, false, /*ckpt=*/"",
                                     baseline_path);
    if (!ExitedClean(base_status)) {
      std::fprintf(stderr, "FAIL: %s baseline did not complete\n", mode.name);
      return 1;
    }
    const std::string baseline = Slurp(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "FAIL: %s baseline output empty\n", mode.name);
      return 1;
    }

    for (const std::uint64_t seed : harness_seeds) {
      for (const std::size_t threads : thread_counts) {
        ++trial_index;
        Rng rng(runtime::CampaignId(mode.name, seed) ^ threads);
        const std::string tag = std::string(mode.name) + "_s" +
                                std::to_string(seed) + "_t" +
                                std::to_string(threads);
        const std::string ckpt = out_dir + "/crash_" + tag + ".ckpt";
        const std::string out_path = out_dir + "/crash_" + tag + ".txt";
        std::remove(ckpt.c_str());

        // Chain of randomized kills, each resuming the last's wreck.
        // The kill point is drawn from the *pending* task count (the
        // parent counts settled records in the checkpoint), so every
        // kill actually fires mid-campaign instead of landing after
        // the child already finished.
        bool resumed_once = false;
        for (std::size_t k = 0; k < kills_per_trial; ++k) {
          std::size_t settled = 0;
          std::string ckpt_bytes;
          if (resumed_once && runtime::ReadFileBytes(ckpt, &ckpt_bytes)) {
            settled =
                runtime::DecodeCheckpoint(ckpt_bytes).records.size();
          }
          if (settled >= mode.tasks) {
            // Previous kills let the campaign finish; restart the
            // chain from nothing so this kill still fires.
            std::remove(ckpt.c_str());
            settled = 0;
            resumed_once = false;
          }
          const std::size_t pending = mode.tasks - settled;
          const std::size_t crash_after = 1 + rng.NextBelow(pending);
          const int status = RunChild(mode, threads, crash_after,
                                      resumed_once, ckpt, out_path);
          ++total_kills;
          if (!KilledBySigkill(status)) {
            std::fprintf(stderr,
                         "FAIL: %s kill#%zu (after %zu of %zu pending) "
                         "child status %d — expected SIGKILL\n",
                         tag.c_str(), k + 1, crash_after, pending, status);
            ++failures;
          }
          resumed_once = true;
          // Every third trial also tears the checkpoint tail so the
          // resume has to salvage, not just read.
          if (trial_index % 3 == 0 && k == 0) {
            TruncateCheckpoint(ckpt, rng);
            ++truncations;
          }
        }

        // Final resume: must complete and converge byte-identically.
        const int status =
            RunChild(mode, threads, 0, true, ckpt, out_path);
        if (!ExitedClean(status)) {
          std::fprintf(stderr, "FAIL: %s final resume status %d\n",
                       tag.c_str(), status);
          ++failures;
          continue;
        }
        const std::string recovered = Slurp(out_path);
        if (recovered != baseline) {
          std::fprintf(stderr,
                       "FAIL: %s recovered output diverged from baseline "
                       "(%zu vs %zu bytes)\n",
                       tag.c_str(), recovered.size(), baseline.size());
          ++failures;
        } else {
          std::printf("ok: %s converged after %zu kill(s)\n", tag.c_str(),
                      kills_per_trial);
        }
      }
    }
  }

  const bool quarantine_ok = QuarantineSelfCheck(out_dir);
  if (!quarantine_ok) {
    std::fprintf(stderr, "FAIL: quarantine self-check\n");
  }

  std::printf(
      "crash_campaign: %zu SIGKILLs across %zu trials (%zu torn "
      "checkpoints), %zu failure(s), quarantine %s\n",
      total_kills, trial_index, truncations, failures,
      quarantine_ok ? "ok" : "FAILED");
  return (failures == 0 && quarantine_ok) ? 0 : 1;
}
