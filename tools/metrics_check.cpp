// Declarative threshold gate over METRICS_<slug>.json artifacts.
//
// CI jobs byte-diff METRICS files for determinism; this tool adds the
// *semantic* gate: a plain-text threshold table, one assertion per
// line, checked against the merged metric values. Keeping the
// thresholds in data (tools/thresholds/*.thresholds) instead of shell
// arithmetic means the gated quantities and their bounds are reviewed
// in one place and the CI step is a single invocation.
//
//   metrics_check --metrics METRICS_x.json --thresholds FILE [--verbose]
//
// Threshold grammar (one check per line; '#' starts a comment):
//
//   <selector> <op> <number>
//
// where <op> is one of  >=  <=  >  <  ==  !=  and <selector> is a
// metric name, optionally suffixed for histograms:
//
//   stress.delivered.on >= 2000          # counter total / gauge value
//   stress.delivery_permille.on:min >= 950   # histogram min
//   latency:max <= 4096                  # histogram max
//   latency:count == 3                   # histogram sample count
//   latency:mean <= 100.5                # histogram sum/count
//
// A selector that names no metric in the file fails the run (a gate
// that silently stops gating is the worst kind of green).
// Exit: 0 all checks pass, 1 any check fails, 2 usage/parse error.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"

using namespace freerider;

namespace {

struct MetricValues {
  /// Addressable fields: "" (counter/gauge value), "count", "sum",
  /// "min", "max", "mean".
  std::map<std::string, double> fields;
};

/// Parse the deterministic MetricsToJson document. Not a general JSON
/// parser — it reads exactly the grammar obs::MetricsToJson emits
/// (sorted names, fixed key order per kind), and rejects anything else.
bool ParseMetricsJson(const std::string& text,
                      std::map<std::string, MetricValues>* out,
                      std::string* error) {
  const auto field_after = [&](std::size_t from, const char* key,
                               double* value, std::size_t* end) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = text.find(needle, from);
    if (at == std::string::npos) return false;
    char* parse_end = nullptr;
    *value = std::strtod(text.c_str() + at + needle.size(), &parse_end);
    if (parse_end == text.c_str() + at + needle.size()) return false;
    *end = static_cast<std::size_t>(parse_end - text.c_str());
    return true;
  };

  std::size_t pos = text.find("\"values\":[");
  if (pos == std::string::npos) {
    *error = "no \"values\" array (is this a METRICS_*.json?)";
    return false;
  }
  for (;;) {
    const std::size_t name_at = text.find("{\"name\":\"", pos);
    if (name_at == std::string::npos) break;
    const std::size_t name_begin = name_at + std::strlen("{\"name\":\"");
    const std::size_t name_end = text.find('"', name_begin);
    if (name_end == std::string::npos) {
      *error = "unterminated metric name";
      return false;
    }
    const std::string name = text.substr(name_begin, name_end - name_begin);
    const std::size_t entry_end = text.find("}", name_end);
    const std::size_t kind_at = text.find("\"kind\":\"", name_end);
    if (kind_at == std::string::npos || kind_at > entry_end) {
      *error = "metric '" + name + "' has no kind";
      return false;
    }
    const std::size_t kind_begin = kind_at + std::strlen("\"kind\":\"");
    const std::size_t kind_end = text.find('"', kind_begin);
    const std::string kind = text.substr(kind_begin, kind_end - kind_begin);

    MetricValues values;
    std::size_t after = kind_end;
    double v = 0.0;
    if (kind == "counter" || kind == "gauge") {
      if (!field_after(kind_end, "value", &v, &after)) {
        *error = "metric '" + name + "' has no value";
        return false;
      }
      values.fields[""] = v;
    } else if (kind == "histogram") {
      for (const char* key : {"count", "sum", "min", "max"}) {
        if (!field_after(after, key, &v, &after)) {
          *error = "metric '" + name + "' missing histogram field " + key;
          return false;
        }
        values.fields[key] = v;
      }
      const double count = values.fields["count"];
      values.fields["mean"] = count > 0 ? values.fields["sum"] / count : 0.0;
    } else {
      *error = "metric '" + name + "' has unknown kind '" + kind + "'";
      return false;
    }
    (*out)[name] = std::move(values);
    pos = after;
  }
  if (out->empty()) {
    *error = "no metrics parsed";
    return false;
  }
  return true;
}

struct Check {
  std::string selector;  ///< name or name:field
  std::string op;
  double bound = 0.0;
  std::size_t line = 0;
};

bool ParseThresholds(const std::string& path, std::vector<Check>* out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    Check check;
    std::string bound;
    if (!(fields >> check.selector)) continue;  // blank / comment-only
    if (!(fields >> check.op >> bound)) {
      *error = path + ":" + std::to_string(lineno) +
               ": expected '<selector> <op> <number>'";
      return false;
    }
    std::string extra;
    if (fields >> extra) {
      *error = path + ":" + std::to_string(lineno) + ": trailing '" + extra +
               "'";
      return false;
    }
    if (check.op != ">=" && check.op != "<=" && check.op != ">" &&
        check.op != "<" && check.op != "==" && check.op != "!=") {
      *error = path + ":" + std::to_string(lineno) + ": unknown op '" +
               check.op + "'";
      return false;
    }
    char* end = nullptr;
    check.bound = std::strtod(bound.c_str(), &end);
    if (end == bound.c_str() || *end != '\0') {
      *error = path + ":" + std::to_string(lineno) + ": bad number '" +
               bound + "'";
      return false;
    }
    check.line = lineno;
    out->push_back(std::move(check));
  }
  if (out->empty()) {
    *error = path + ": no checks (empty gate)";
    return false;
  }
  return true;
}

bool Compare(double value, const std::string& op, double bound) {
  if (op == ">=") return value >= bound;
  if (op == "<=") return value <= bound;
  if (op == ">") return value > bound;
  if (op == "<") return value < bound;
  if (op == "==") return value == bound;
  return value != bound;  // !=
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string thresholds_path;
  cli::ConsumeValue(argc, argv, "--metrics", &metrics_path);
  cli::ConsumeValue(argc, argv, "--thresholds", &thresholds_path);
  const bool verbose = cli::ConsumeFlag(argc, argv, "--verbose");
  if (const int rc = cli::RejectUnknownArgs(
          argc, argv,
          "metrics_check --metrics METRICS_x.json --thresholds FILE"
          " [--verbose]")) {
    return rc;
  }
  if (metrics_path.empty() || thresholds_path.empty()) {
    std::fprintf(stderr, "error: --metrics and --thresholds are required\n");
    return cli::kUsageError;
  }

  std::ifstream in(metrics_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", metrics_path.c_str());
    return cli::kUsageError;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::map<std::string, MetricValues> metrics;
  std::string error;
  if (!ParseMetricsJson(buffer.str(), &metrics, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", metrics_path.c_str(),
                 error.c_str());
    return cli::kUsageError;
  }
  std::vector<Check> checks;
  if (!ParseThresholds(thresholds_path, &checks, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return cli::kUsageError;
  }

  TablePrinter table({"check", "value", "verdict"});
  std::size_t failures = 0;
  for (const Check& check : checks) {
    std::string name = check.selector;
    std::string field;
    const std::size_t colon = name.rfind(':');
    if (colon != std::string::npos) {
      field = name.substr(colon + 1);
      name.resize(colon);
    }
    const std::string label = check.selector + " " + check.op + " " +
                              std::to_string(check.bound);
    const auto metric = metrics.find(name);
    if (metric == metrics.end()) {
      ++failures;
      table.AddRow({label, "(no such metric)", "FAIL"});
      continue;
    }
    const auto value = metric->second.fields.find(field);
    if (value == metric->second.fields.end()) {
      ++failures;
      table.AddRow({label, "(no field '" + field + "')", "FAIL"});
      continue;
    }
    const bool ok = Compare(value->second, check.op, check.bound);
    if (!ok) ++failures;
    if (!ok || verbose) {
      char value_buf[64];
      std::snprintf(value_buf, sizeof value_buf, "%g", value->second);
      table.AddRow({label, value_buf, ok ? "pass" : "FAIL"});
    }
  }
  if (failures > 0 || verbose) std::printf("%s", table.ToString().c_str());
  std::printf("metrics_check: %zu checks on %s, %zu failed -> %s\n",
              checks.size(), metrics_path.c_str(), failures,
              failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}
