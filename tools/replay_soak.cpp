// Re-run a chaos-soak replay record and verify it reproduces.
//
// A soak failure is only a finding if it reproduces, so the harness
// (sim/soak.h) writes self-contained JSON records — config, impairment
// schedule, seed, and the outcome digest of the original run. This CLI
// re-executes a record and compares digests byte-for-byte:
//
//   replay_soak record.json            # re-run, verify digest
//   replay_soak --print record.json    # also dump the digest
//
// Exit codes: 0 = reproduced bit-for-bit, 1 = digest mismatch
// (non-determinism — itself a bug), 2 = unreadable/malformed record.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli.h"
#include "sim/soak.h"

using namespace freerider;

int main(int argc, char** argv) {
  constexpr const char* kUsage = "replay_soak [--print] <record.json>";
  const bool print = cli::ConsumeFlag(argc, argv, "--print");
  // Exactly one positional (the record path) may remain; any unknown
  // flag or extra operand is a usage error, not a silent default.
  if (argc >= 2 && argv[1][0] == '-') {
    std::fprintf(stderr, "error: unknown argument '%s'\n", argv[1]);
    std::fprintf(stderr, "usage: %s\n", kUsage);
    return cli::kUsageError;
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s\n", kUsage);
    return cli::kUsageError;
  }
  const char* path = argv[1];

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "replay_soak: cannot read %s\n", path);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::string parse_error;
  const auto replay = sim::ParseSoakReplay(buffer.str(), &parse_error);
  if (!replay.has_value()) {
    std::fprintf(stderr, "replay_soak: %s is not a valid replay record: %s\n",
                 path, parse_error.c_str());
    return 2;
  }

  std::printf("replaying seed=%llu tags=%zu rounds=%zu+%zu segments=%zu\n",
              static_cast<unsigned long long>(replay->config.seed),
              replay->config.num_tags, replay->config.rounds,
              replay->config.drain_rounds, replay->config.schedule.size());
  const sim::SoakResult result = sim::RunSoak(replay->config);
  if (print) {
    std::printf("--- digest ---\n%s--------------\n", result.digest.c_str());
  }
  std::printf("replay: passed=%s violations=%zu\n",
              result.passed ? "yes" : "no", result.violations.size());

  if (replay->expect_digest.empty()) {
    std::printf("record carries no digest; nothing to verify\n");
    return 0;
  }
  if (result.digest == replay->expect_digest) {
    std::printf("digest match: the record reproduces bit-for-bit\n");
    return 0;
  }
  std::printf("DIGEST MISMATCH: replay diverged from the record\n");
  return 1;
}
