// Standalone worker-fleet server for the distributed sweep runtime
// (DESIGN.md §12).
//
// By default a coordinator execs /proc/self/exe, so the bench serves
// its own campaign; FREERIDER_WORKER_BIN=<path-to-sweep_worker> points
// the fleet at this binary instead. That exercises the cross-binary
// contract the registry exists for: the worker rebuilds the task body
// from the (name, params, grid) triple in the kStart frame, and a
// body this binary does not register fails the handshake — the
// coordinator then degrades to in-process execution rather than
// computing garbage.
//
//   sweep_worker --dist-serve=RFD,WFD,IDX   # serve over pipe fds
//   sweep_worker --list-bodies              # print registered bodies
#include <cstdio>

#include "common/cli.h"
#include "runtime/dist/registry.h"
#include "runtime/dist/worker.h"
#include "sim/dist_bodies.h"

using namespace freerider;

int main(int argc, char** argv) {
  sim::RegisterDistBodies();
  if (const int rc = runtime::dist::HandleWorkerMode(argc, argv); rc >= 0) {
    return rc;
  }
  const bool list = cli::ConsumeFlag(argc, argv, "--list-bodies");
  if (const int rc = cli::RejectUnknownArgs(
          argc, argv, "sweep_worker --dist-serve=RFD,WFD,IDX | --list-bodies")) {
    return rc;
  }
  if (list) {
    for (const std::string& name : runtime::dist::RegisteredDistBodies()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  std::fprintf(stderr,
               "sweep_worker is a fleet server: a coordinator execs it with "
               "--dist-serve=RFD,WFD,IDX\n(set FREERIDER_WORKER_BIN to this "
               "binary's path and pass --workers N to a bench).\n");
  return cli::kUsageError;
}
