// Inspect, filter and round-trip flight-recorder trace files.
//
// Campaign benches export their flight recordings as TRACE_<slug>.bin
// (obs binary codec, see src/obs/trace.h). This CLI decodes one,
// applies the optional query filters, and re-emits it:
//
//   trace_dump TRACE_x.bin                         # JSONL to stdout
//   trace_dump --kind frame_tx --tag 3 TRACE_x.bin # filtered JSONL
//   trace_dump --from-round 100 --to-round 200 TRACE_x.bin
//   trace_dump --bin out.bin TRACE_x.bin           # re-encode (binary)
//   trace_dump --summary TRACE_x.bin               # per-ring counts
//
// `trace_dump --bin out.bin in.bin` with no filters is the round-trip
// check CI leans on: out.bin must equal in.bin byte-for-byte, because
// decode restores the rings exactly (including drop counts). A torn or
// corrupted file decodes to its longest valid prefix; the dropped-byte
// count goes to stderr and the exit code stays 0 — salvage is the
// feature, not an error. A file whose first header is unreadable is an
// error (exit 2).
//
// Exit codes: 0 = decoded (possibly salvaged), 2 = unreadable input /
// usage error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli.h"
#include "obs/trace.h"

using namespace freerider;

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "trace_dump [--kind NAME] [--tag N] [--from-round N] [--to-round N] "
      "[--summary] [--bin PATH] <trace.bin>";

  obs::TraceQuery query;
  std::string kind_name;
  std::size_t tag = 0;
  std::size_t from_round = 0;
  std::size_t to_round = 0;
  std::string bin_out;
  bool args_ok = true;
  const bool have_kind = cli::ConsumeValue(argc, argv, "--kind", &kind_name);
  const bool have_tag = cli::ConsumeSize(argc, argv, "--tag", &tag, &args_ok);
  const bool have_from =
      cli::ConsumeSize(argc, argv, "--from-round", &from_round, &args_ok);
  const bool have_to =
      cli::ConsumeSize(argc, argv, "--to-round", &to_round, &args_ok);
  const bool summary = cli::ConsumeFlag(argc, argv, "--summary");
  cli::ConsumeValue(argc, argv, "--bin", &bin_out);
  if (!args_ok) return cli::kUsageError;
  if (argc >= 2 && argv[1][0] == '-') {
    std::fprintf(stderr, "error: unknown argument '%s'\n", argv[1]);
    std::fprintf(stderr, "usage: %s\n", kUsage);
    return cli::kUsageError;
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s\n", kUsage);
    return cli::kUsageError;
  }
  if (have_kind) {
    query.kind = obs::EventKindFromName(kind_name);
    if (query.kind < 0) {
      std::fprintf(stderr, "trace_dump: unknown event kind '%s'\n",
                   kind_name.c_str());
      return cli::kUsageError;
    }
  }
  if (have_tag) query.tag = static_cast<int>(tag);
  if (have_from) query.from_round = static_cast<std::uint32_t>(from_round);
  if (have_to) query.to_round = static_cast<std::uint32_t>(to_round);

  const char* path = argv[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_dump: cannot read %s\n", path);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  const obs::TraceDecodeResult decoded = obs::DecodeTraces(bytes);
  if (!decoded.ok) {
    std::fprintf(stderr, "trace_dump: %s: %s\n", path,
                 decoded.error.c_str());
    return 2;
  }
  if (decoded.salvaged) {
    std::fprintf(stderr,
                 "trace_dump: %s: salvaged — %zu trailing byte(s) dropped\n",
                 path, decoded.dropped_bytes);
  }

  if (!bin_out.empty()) {
    std::ofstream out(bin_out, std::ios::binary);
    const std::string encoded = obs::SerializeTraces(decoded.traces);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    if (!out) {
      std::fprintf(stderr, "trace_dump: cannot write %s\n", bin_out.c_str());
      return 2;
    }
  }

  if (summary) {
    for (const obs::NamedTrace& t : decoded.traces) {
      std::size_t matched = 0;
      for (const obs::TraceEvent& e : t.ring.Events()) {
        if (Matches(query, e)) ++matched;
      }
      std::printf("%s: events=%zu recorded=%llu dropped=%llu matched=%zu\n",
                  t.name.c_str(), t.ring.size(),
                  static_cast<unsigned long long>(t.ring.recorded()),
                  static_cast<unsigned long long>(t.ring.dropped()), matched);
    }
  } else if (bin_out.empty()) {
    const std::string jsonl = obs::TracesToJsonl(decoded.traces, query);
    std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
  }
  return 0;
}
